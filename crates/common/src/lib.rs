#![deny(missing_docs)]

//! Shared machine model for the Clockhands reproduction.
//!
//! This crate holds everything that is common to the three instruction set
//! architectures evaluated in the paper (RISC-V-like "RISC", STRAIGHT, and
//! Clockhands) and to the tools built on top of them:
//!
//! * [`op`] — operation classes and functional-unit kinds (the categories of
//!   Fig. 15 of the paper) together with their execution latencies,
//! * [`inst`] — the [`inst::DynInst`] dynamic-instruction record that
//!   functional emulators produce and the timing simulator / trace analyses
//!   consume,
//! * [`config`] — the machine configurations of Table 2 (4- to 16-fetch),
//! * [`mem`] — a sparse 64-bit byte-addressed memory used by the emulators,
//! * [`stats`] — event counters shared by the simulator and the energy model.
//!
//! # Examples
//!
//! ```
//! use ch_common::config::{MachineConfig, WidthClass};
//! use ch_common::IsaKind;
//!
//! let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
//! assert_eq!(cfg.front_width, 8);
//! // Rename-free ISAs have a two-cycle-shorter front end (5 vs 7 cycles).
//! assert_eq!(cfg.front_latency, 5);
//! ```

pub mod config;
pub mod error;
pub mod exec;
pub mod inst;
pub mod json;
pub mod mem;
pub mod op;
pub mod stats;

pub use config::{MachineConfig, WidthClass};
pub use error::{HarnessError, Stage};
pub use inst::{CtrlInfo, CtrlKind, DynInst, MemAccess};
pub use mem::Memory;
pub use op::{FuKind, OpClass};
pub use stats::{BusyClock, Counters, ExperimentTiming, StallBreakdown, StallReason};

/// Which of the three evaluated instruction set architectures a program,
/// trace, or machine configuration belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IsaKind {
    /// Conventional RISC (a RISC-V-like register-name ISA; needs renaming).
    Riscv,
    /// STRAIGHT: operands by inter-instruction distance, one ring buffer.
    Straight,
    /// Clockhands: operands by (hand, distance), four ring buffers.
    Clockhands,
}

impl IsaKind {
    /// All three ISAs in the order the paper's figures list them (R, S, C).
    pub const ALL: [IsaKind; 3] = [IsaKind::Riscv, IsaKind::Straight, IsaKind::Clockhands];

    /// Single-letter tag used in the paper's figures ("R", "S", "C").
    pub fn tag(self) -> &'static str {
        match self {
            IsaKind::Riscv => "R",
            IsaKind::Straight => "S",
            IsaKind::Clockhands => "C",
        }
    }

    /// Whether the ISA requires a register-renaming stage in hardware.
    ///
    /// Only the conventional RISC does; STRAIGHT and Clockhands resolve
    /// operands with register-pointer arithmetic (Section 5.1 of the paper).
    pub fn needs_rename(self) -> bool {
        matches!(self, IsaKind::Riscv)
    }

    /// Canonical lowercase identifier used in config keys and on the
    /// sweep-service wire (`riscv` / `straight` / `clockhands`).
    pub fn name(self) -> &'static str {
        match self {
            IsaKind::Riscv => "riscv",
            IsaKind::Straight => "straight",
            IsaKind::Clockhands => "clockhands",
        }
    }

    /// Parses an ISA identifier, accepting the canonical [`name`]
    /// (case-insensitively) plus the common aliases used in tables and
    /// on the CLI: `risc-v`/`rv`/`r`, `st`/`s`, and `ch`/`c`.
    ///
    /// [`name`]: IsaKind::name
    pub fn from_name(s: &str) -> Option<IsaKind> {
        match s.to_ascii_lowercase().as_str() {
            "riscv" | "risc-v" | "rv" | "r" => Some(IsaKind::Riscv),
            "straight" | "st" | "s" => Some(IsaKind::Straight),
            "clockhands" | "ch" | "c" => Some(IsaKind::Clockhands),
            _ => None,
        }
    }
}

impl std::fmt::Display for IsaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            IsaKind::Riscv => "RISC-V",
            IsaKind::Straight => "STRAIGHT",
            IsaKind::Clockhands => "Clockhands",
        };
        f.write_str(name)
    }
}

/// Which binary instruction encoding a program was laid out with.
///
/// Every ISA has a fixed-width 32-bit format and a compressed
/// variable-width (16/32-bit) variant in the RVC style; the choice
/// affects byte PCs, code size, and fetch bandwidth but never the
/// committed instruction stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EncodingVariant {
    /// Fixed-width 32-bit instructions: every PC is `base + 4 * index`.
    #[default]
    Fixed,
    /// Variable-width 16/32-bit instructions (à la RVC / multi-width).
    Compressed,
}

impl EncodingVariant {
    /// Both variants, fixed first (the abstract-PC-compatible one).
    pub const ALL: [EncodingVariant; 2] = [EncodingVariant::Fixed, EncodingVariant::Compressed];

    /// Canonical lowercase identifier used in config keys and on the
    /// sweep-service wire (`fixed` / `compressed`).
    pub fn name(self) -> &'static str {
        match self {
            EncodingVariant::Fixed => "fixed",
            EncodingVariant::Compressed => "compressed",
        }
    }

    /// Parses an encoding identifier, accepting the canonical [`name`]
    /// (case-insensitively) plus the short aliases `f`/`32` and
    /// `c`/`rvc`/`16`.
    ///
    /// [`name`]: EncodingVariant::name
    pub fn from_name(s: &str) -> Option<EncodingVariant> {
        match s.to_ascii_lowercase().as_str() {
            "fixed" | "f" | "32" => Some(EncodingVariant::Fixed),
            "compressed" | "c" | "rvc" | "16" => Some(EncodingVariant::Compressed),
            _ => None,
        }
    }
}

impl std::fmt::Display for EncodingVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_tags_match_paper_figures() {
        assert_eq!(IsaKind::Riscv.tag(), "R");
        assert_eq!(IsaKind::Straight.tag(), "S");
        assert_eq!(IsaKind::Clockhands.tag(), "C");
    }

    #[test]
    fn only_risc_needs_rename() {
        assert!(IsaKind::Riscv.needs_rename());
        assert!(!IsaKind::Straight.needs_rename());
        assert!(!IsaKind::Clockhands.needs_rename());
    }

    #[test]
    fn display_names() {
        assert_eq!(IsaKind::Clockhands.to_string(), "Clockhands");
        assert_eq!(IsaKind::Straight.to_string(), "STRAIGHT");
        assert_eq!(IsaKind::Riscv.to_string(), "RISC-V");
    }

    #[test]
    fn encoding_variant_names_roundtrip() {
        for v in EncodingVariant::ALL {
            assert_eq!(EncodingVariant::from_name(v.name()), Some(v));
        }
        assert_eq!(
            EncodingVariant::from_name("RVC"),
            Some(EncodingVariant::Compressed)
        );
        assert_eq!(
            EncodingVariant::from_name("f"),
            Some(EncodingVariant::Fixed)
        );
        assert_eq!(EncodingVariant::from_name("huffman"), None);
        assert_eq!(EncodingVariant::default(), EncodingVariant::Fixed);
        assert_eq!(EncodingVariant::Compressed.to_string(), "compressed");
    }
}
