//! Shared harness-level error type.
//!
//! The figure pipeline runs every workload through a compile → validate →
//! execute chain per ISA; the fuzzing harness runs generated programs
//! through the same chain and then compares the three results. Both need
//! to report *which* program, on *which* ISA, failed at *which* stage —
//! a bare `unwrap()` loses all of that. [`HarnessError`] carries that
//! context so a failure reads e.g.
//! `coremark/test [clockhands] failed at execute: limit reached`.

use std::fmt;

/// Which stage of the compile → validate → execute → compare chain failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Kern source failed to compile for a backend.
    Compile,
    /// The compiled program failed static validation.
    Validate,
    /// The functional interpreter returned an error.
    Execute,
    /// Two ISAs (or interpreter vs. simulator) disagreed on an observable.
    Mismatch,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Compile => "compile",
            Stage::Validate => "validate",
            Stage::Execute => "execute",
            Stage::Mismatch => "mismatch",
        })
    }
}

/// An error from running a program through the harness, carrying enough
/// context to name the failing workload/scale/ISA without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessError {
    /// What was being run, e.g. `"coremark/test"` or `"fuzz case 17"`.
    pub context: String,
    /// The ISA tag (`"riscv"`, `"straight"`, `"clockhands"`) if the
    /// failure is specific to one backend; `None` for cross-ISA failures.
    pub isa: Option<&'static str>,
    /// Which stage of the chain failed.
    pub stage: Stage,
    /// The underlying error message.
    pub detail: String,
}

impl HarnessError {
    /// Build an error for `context` failing at `stage` with `detail`.
    pub fn new(context: impl Into<String>, stage: Stage, detail: impl Into<String>) -> Self {
        Self {
            context: context.into(),
            isa: None,
            stage,
            detail: detail.into(),
        }
    }

    /// Attach the ISA tag the failure occurred on.
    #[must_use]
    pub fn on_isa(mut self, isa: &'static str) -> Self {
        self.isa = Some(isa);
        self
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.isa {
            Some(isa) => {
                write!(
                    f,
                    "{} [{}] failed at {}: {}",
                    self.context, isa, self.stage, self.detail
                )
            }
            None => write!(
                f,
                "{} failed at {}: {}",
                self.context, self.stage, self.detail
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_piece() {
        let e = HarnessError::new("coremark/test", Stage::Execute, "limit reached")
            .on_isa("clockhands");
        assert_eq!(
            e.to_string(),
            "coremark/test [clockhands] failed at execute: limit reached"
        );
        let e = HarnessError::new("fuzz case 3", Stage::Mismatch, "checksum 1 != 2");
        assert_eq!(
            e.to_string(),
            "fuzz case 3 failed at mismatch: checksum 1 != 2"
        );
    }
}
