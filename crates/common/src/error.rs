//! Shared harness-level error and diagnostic types.
//!
//! The figure pipeline runs every workload through a compile → validate →
//! execute chain per ISA; the fuzzing harness runs generated programs
//! through the same chain and then compares the three results. Both need
//! to report *which* program, on *which* ISA, failed at *which* stage —
//! a bare `unwrap()` loses all of that. [`HarnessError`] carries that
//! context so a failure reads e.g.
//! `coremark/test [clockhands] failed at execute: limit reached`.
//!
//! Static tooling shares two more types: [`AsmError`] is the malformed
//! operand/line error all three assemblers report, and [`Diagnostic`] is
//! the structured finding the `ch-verify` dataflow verifier emits
//! (severity + stable code + instruction/operand location), so assembler
//! and verifier output name source locations consistently.

use std::fmt;

/// Which stage of the compile → validate → execute → compare chain failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Kern source failed to compile for a backend.
    Compile,
    /// The compiled program failed static validation.
    Validate,
    /// The functional interpreter returned an error.
    Execute,
    /// Two ISAs (or interpreter vs. simulator) disagreed on an observable.
    Mismatch,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Compile => "compile",
            Stage::Validate => "validate",
            Stage::Execute => "execute",
            Stage::Mismatch => "mismatch",
        })
    }
}

/// An error from running a program through the harness, carrying enough
/// context to name the failing workload/scale/ISA without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessError {
    /// What was being run, e.g. `"coremark/test"` or `"fuzz case 17"`.
    pub context: String,
    /// The ISA tag (`"riscv"`, `"straight"`, `"clockhands"`) if the
    /// failure is specific to one backend; `None` for cross-ISA failures.
    pub isa: Option<&'static str>,
    /// Which stage of the chain failed.
    pub stage: Stage,
    /// The underlying error message.
    pub detail: String,
}

impl HarnessError {
    /// Build an error for `context` failing at `stage` with `detail`.
    pub fn new(context: impl Into<String>, stage: Stage, detail: impl Into<String>) -> Self {
        Self {
            context: context.into(),
            isa: None,
            stage,
            detail: detail.into(),
        }
    }

    /// Attach the ISA tag the failure occurred on.
    #[must_use]
    pub fn on_isa(mut self, isa: &'static str) -> Self {
        self.isa = Some(isa);
        self
    }
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.isa {
            Some(isa) => {
                write!(
                    f,
                    "{} [{}] failed at {}: {}",
                    self.context, isa, self.stage, self.detail
                )
            }
            None => write!(
                f,
                "{} failed at {}: {}",
                self.context, self.stage, self.detail
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

/// An assembly error with its 1-based source line.
///
/// All three assemblers (Clockhands, STRAIGHT, RISC) report malformed
/// operands through this one type so that error text is uniform across
/// ISAs: ``line 7: bad source operand `[0]` ``.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl AsmError {
    /// Builds an error for 1-based source line `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program provably violates a dataflow or convention rule.
    Error,
    /// Suspicious but harmless (dead relay, redundant edge fix, …).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        })
    }
}

/// One structured finding from static analysis.
///
/// `code` is a stable machine-checkable identifier (e.g. `E-UNINIT`);
/// golden tests assert on it rather than on prose. The display form is
/// `error[E-UNINIT] main@12 (u[3]): <message>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable diagnostic code, e.g. `E-UNINIT` or `W-DEAD-RELAY`.
    pub code: &'static str,
    /// Name of the function the finding is in.
    pub function: String,
    /// Instruction index the finding anchors to, if any.
    pub inst: Option<u32>,
    /// The offending operand rendered in ISA syntax (e.g. `u[3]`).
    pub operand: Option<String>,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.function)?;
        if let Some(i) = self.inst {
            write!(f, "@{i}")?;
        }
        if let Some(op) = &self.operand {
            write!(f, " ({op})")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl From<AsmError> for Diagnostic {
    fn from(e: AsmError) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code: "E-ASM",
            function: String::new(),
            inst: None,
            operand: None,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_piece() {
        let e = HarnessError::new("coremark/test", Stage::Execute, "limit reached")
            .on_isa("clockhands");
        assert_eq!(
            e.to_string(),
            "coremark/test [clockhands] failed at execute: limit reached"
        );
        let e = HarnessError::new("fuzz case 3", Stage::Mismatch, "checksum 1 != 2");
        assert_eq!(
            e.to_string(),
            "fuzz case 3 failed at mismatch: checksum 1 != 2"
        );
    }

    #[test]
    fn asm_error_names_the_line() {
        let e = AsmError::new(7, "bad source operand `[0]`");
        assert_eq!(e.to_string(), "line 7: bad source operand `[0]`");
    }

    #[test]
    fn diagnostic_display_carries_code_and_location() {
        let d = Diagnostic {
            severity: Severity::Error,
            code: "E-UNINIT",
            function: "main".to_string(),
            inst: Some(12),
            operand: Some("u[3]".to_string()),
            message: "reads a slot never written on this path".to_string(),
        };
        assert_eq!(
            d.to_string(),
            "error[E-UNINIT] main@12 (u[3]): reads a slot never written on this path"
        );
        let w = Diagnostic {
            severity: Severity::Warning,
            code: "W-DEAD-RELAY",
            function: "f0".to_string(),
            inst: None,
            operand: None,
            message: "2 dead relay mv(s)".to_string(),
        };
        assert_eq!(
            w.to_string(),
            "warning[W-DEAD-RELAY] f0: 2 dead relay mv(s)"
        );
    }

    #[test]
    fn asm_error_lifts_into_a_diagnostic() {
        let d: Diagnostic = AsmError::new(3, "bad operand").into();
        assert_eq!(d.code, "E-ASM");
        assert_eq!(d.message, "line 3: bad operand");
    }
}
