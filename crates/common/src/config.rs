//! Machine configurations — Table 2 of the paper.
//!
//! Five scales are modelled (4-, 6-, 8-, 12- and 16-fetch). The 6-fetch
//! model is derived from the Apple M1 parameters; the larger models enlarge
//! the ROB aggressively and the scheduler / load-store queue conservatively,
//! exactly as the paper describes.

use crate::op::FuKind;
use crate::IsaKind;

/// Front-end width class (Table 2 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WidthClass {
    /// 4-fetch model.
    W4,
    /// 6-fetch model (Apple-M1-derived).
    W6,
    /// 8-fetch model (headline energy comparison).
    W8,
    /// 12-fetch model.
    W12,
    /// 16-fetch futuristic up-scaled model.
    W16,
}

impl WidthClass {
    /// All five width classes in ascending order.
    pub const ALL: [WidthClass; 5] = [
        WidthClass::W4,
        WidthClass::W6,
        WidthClass::W8,
        WidthClass::W12,
        WidthClass::W16,
    ];

    /// Front-end width in instructions per cycle.
    pub fn width(self) -> u32 {
        match self {
            WidthClass::W4 => 4,
            WidthClass::W6 => 6,
            WidthClass::W8 => 8,
            WidthClass::W12 => 12,
            WidthClass::W16 => 16,
        }
    }

    /// Figure label ("4f".."16f").
    pub fn label(self) -> &'static str {
        match self {
            WidthClass::W4 => "4f",
            WidthClass::W6 => "6f",
            WidthClass::W8 => "8f",
            WidthClass::W12 => "12f",
            WidthClass::W16 => "16f",
        }
    }

    /// Parses a width identifier: the canonical [`label`] (`"8f"`),
    /// the bare width (`"8"`), or the enum-style `"w8"` —
    /// case-insensitively.
    ///
    /// [`label`]: WidthClass::label
    pub fn from_label(s: &str) -> Option<WidthClass> {
        let t = s.to_ascii_lowercase();
        let t = t.strip_prefix('w').unwrap_or(&t);
        let t = t.strip_suffix('f').unwrap_or(t);
        WidthClass::ALL
            .into_iter()
            .find(|w| t == w.width().to_string())
    }

    /// Reorder buffer capacity `R` (Table 2).
    pub fn rob(self) -> u32 {
        match self {
            WidthClass::W4 => 256,
            WidthClass::W6 => 640,
            WidthClass::W8 => 1024,
            WidthClass::W12 => 2048,
            WidthClass::W16 => 4096,
        }
    }

    /// Scheduler capacity `S` (Table 2).
    pub fn scheduler(self) -> u32 {
        match self {
            WidthClass::W4 => 128,
            WidthClass::W6 => 192,
            WidthClass::W8 => 256,
            WidthClass::W12 => 384,
            WidthClass::W16 => 512,
        }
    }

    /// Whether this is one of the two small models that use the halved
    /// back end (the `⌈½×→⌉` annotation in Table 2).
    fn halved_backend(self) -> bool {
        matches!(self, WidthClass::W4 | WidthClass::W6)
    }
}

impl std::fmt::Display for WidthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes.
    pub line: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / (self.line as u64 * self.assoc as u64)
    }
}

/// A complete machine configuration (one column of Table 2 for one ISA).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Which ISA the machine runs.
    pub isa: IsaKind,
    /// Width class the configuration was derived from.
    pub width_class: WidthClass,
    /// Fetch/decode/rename/dispatch width, instructions per cycle.
    pub front_width: u32,
    /// Fetch-group budget in bytes per cycle (`4 × front_width`: the
    /// fixed-width fetch bandwidth; compressed encodings pack more
    /// instructions into the same bytes, up to `front_width`).
    pub fetch_bytes: u32,
    /// Front-end depth in cycles: fetch(3)+decode(1)+[rename(2)+]dispatch(1).
    pub front_latency: u32,
    /// Maximum instructions issued to execution per cycle.
    pub issue_width: u32,
    /// Issue-to-execute latency (payload RAM read + register read).
    pub issue_latency: u32,
    /// Commit width (instructions retired per cycle).
    pub commit_width: u32,
    /// Reorder buffer capacity.
    pub rob: u32,
    /// Scheduler (issue queue) capacity.
    pub scheduler: u32,
    /// Load queue capacity (`S/2`).
    pub load_queue: u32,
    /// Store queue capacity (`3S/8`).
    pub store_queue: u32,
    /// Functional-unit counts, indexed by [`FuKind::index`].
    pub fu_counts: [u32; 7],
    /// Total physical registers (RISC: `R`; STRAIGHT/Clockhands: `128+R`).
    pub phys_regs: u32,
    /// Clockhands per-hand physical-register quotas `[t, u, v, s]`
    /// (Table 2: t×(32+48R/64), u×(32+9R/64), v×(32+5R/64), s×(32+2R/64)).
    pub hand_quotas: Option<[u32; 4]>,
    /// Maximum source reference distance (STRAIGHT: 127; Clockhands: 16).
    pub max_ref_distance: u32,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub mem_latency: u32,
    /// Stream-prefetcher distance (lines ahead).
    pub prefetch_distance: u32,
    /// Stream-prefetcher degree (lines per trigger).
    pub prefetch_degree: u32,
    /// Branch target buffer entries.
    pub btb_entries: u32,
    /// Branch target buffer associativity.
    pub btb_assoc: u32,
    /// Return address stack entries.
    pub ras_entries: u32,
    /// TAGE tagged components.
    pub tage_components: u32,
    /// TAGE maximum history length (bits).
    pub tage_history: u32,
    /// Store-set memory dependence predictor: producer table entries.
    pub storeset_producers: u32,
    /// Store-set memory dependence predictor: store-ID table entries.
    pub storeset_ids: u32,
}

impl MachineConfig {
    /// Builds the Table 2 configuration for `width` and `isa`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ch_common::config::{MachineConfig, WidthClass};
    /// use ch_common::IsaKind;
    ///
    /// let risc = MachineConfig::preset(WidthClass::W16, IsaKind::Riscv);
    /// let ch = MachineConfig::preset(WidthClass::W16, IsaKind::Clockhands);
    /// assert_eq!(risc.front_latency, 7);
    /// assert_eq!(ch.front_latency, 5);
    /// assert_eq!(ch.phys_regs, 128 + 4096);
    /// ```
    pub fn preset(width: WidthClass, isa: IsaKind) -> Self {
        let w = width.width();
        let r = width.rob();
        let s = width.scheduler();
        // Execution units (Table 2): Int×8, Float×4, Load×3, Store×2,
        // iMul×2, iDiv×1, fDiv×1 — halved (rounded up) for the two small
        // models per the ⌈½×→⌉ annotation.
        let full: [u32; 7] = [8, 4, 3, 2, 2, 1, 1];
        let fu_counts = if width.halved_backend() {
            let mut h = full;
            for v in &mut h {
                *v = v.div_ceil(2);
            }
            h
        } else {
            full
        };
        let issue_width = if width.halved_backend() || width == WidthClass::W8 {
            8
        } else {
            16
        };
        let phys_regs = match isa {
            IsaKind::Riscv => r,
            IsaKind::Straight | IsaKind::Clockhands => 128 + r,
        };
        let hand_quotas = match isa {
            IsaKind::Clockhands => Some([
                32 + 48 * r / 64, // t
                32 + 9 * r / 64,  // u
                32 + 5 * r / 64,  // v
                32 + 2 * r / 64,  // s
            ]),
            _ => None,
        };
        let max_ref_distance = match isa {
            IsaKind::Riscv => 0,
            IsaKind::Straight => 127,
            IsaKind::Clockhands => 16,
        };
        MachineConfig {
            isa,
            width_class: width,
            front_width: w,
            fetch_bytes: 4 * w,
            front_latency: if isa.needs_rename() { 7 } else { 5 },
            issue_width,
            issue_latency: 4,
            commit_width: w,
            rob: r,
            scheduler: s,
            load_queue: s / 2,
            store_queue: 3 * s / 8,
            fu_counts,
            phys_regs,
            hand_quotas,
            max_ref_distance,
            l1i: CacheConfig {
                size: 128 << 10,
                assoc: 8,
                line: 64,
                latency: 3,
            },
            l1d: CacheConfig {
                size: 128 << 10,
                assoc: 8,
                line: 64,
                latency: 3,
            },
            l2: CacheConfig {
                size: 8 << 20,
                assoc: 16,
                line: 64,
                latency: 12,
            },
            mem_latency: 80,
            prefetch_distance: 8,
            prefetch_degree: 2,
            btb_entries: 8192,
            btb_assoc: 4,
            ras_entries: 16,
            tage_components: 8,
            tage_history: 130,
            storeset_producers: 512,
            storeset_ids: 4096,
        }
    }

    /// Functional-unit count for one kind.
    pub fn fu_count(&self, kind: FuKind) -> u32 {
        self.fu_counts[kind.index()]
    }

    /// Number of logical registers the ISA exposes (Table 2).
    pub fn logical_regs(&self) -> u32 {
        match self.isa {
            IsaKind::Riscv => 31 + 32,
            IsaKind::Straight => 127,
            IsaKind::Clockhands => 15 + 16 * 3,
        }
    }

    /// Recovery-information (checkpoint) size in bits — Table 1.
    ///
    /// * RISC: one physical-register mapping per writable logical register.
    /// * STRAIGHT: one register pointer plus the 64-bit special SP.
    /// * Clockhands: four register pointers, nothing else.
    pub fn checkpoint_bits(&self) -> u32 {
        let prbits = 32 - (self.phys_regs - 1).leading_zeros();
        match self.isa {
            IsaKind::Riscv => 63 * prbits,
            IsaKind::Straight => prbits + 64,
            IsaKind::Clockhands => 4 * prbits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rob_and_scheduler_scaling() {
        assert_eq!(WidthClass::W4.rob(), 256);
        assert_eq!(WidthClass::W16.rob(), 4096);
        assert_eq!(WidthClass::W8.scheduler(), 256);
    }

    #[test]
    fn front_latency_differs_by_isa_only() {
        for w in WidthClass::ALL {
            assert_eq!(MachineConfig::preset(w, IsaKind::Riscv).front_latency, 7);
            assert_eq!(MachineConfig::preset(w, IsaKind::Straight).front_latency, 5);
            assert_eq!(
                MachineConfig::preset(w, IsaKind::Clockhands).front_latency,
                5
            );
        }
    }

    #[test]
    fn hand_quotas_partition_the_register_file() {
        for w in WidthClass::ALL {
            let cfg = MachineConfig::preset(w, IsaKind::Clockhands);
            let q = cfg.hand_quotas.unwrap();
            assert_eq!(q.iter().sum::<u32>(), cfg.phys_regs, "{w:?}");
        }
    }

    #[test]
    fn lsq_sizes_follow_scheduler() {
        let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Riscv);
        assert_eq!(cfg.load_queue, 128);
        assert_eq!(cfg.store_queue, 96);
    }

    #[test]
    fn checkpoint_bits_match_table1_shape() {
        // 8-fetch: RISC phys regs = 1024 (10 bits); ST/CH = 1152 (11 bits).
        let r = MachineConfig::preset(WidthClass::W8, IsaKind::Riscv);
        let s = MachineConfig::preset(WidthClass::W8, IsaKind::Straight);
        let c = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        assert_eq!(r.checkpoint_bits(), 63 * 10);
        assert_eq!(s.checkpoint_bits(), 11 + 64);
        assert_eq!(c.checkpoint_bits(), 44);
        assert!(r.checkpoint_bits() > 5 * s.checkpoint_bits());
        assert!(s.checkpoint_bits() > c.checkpoint_bits());
    }

    #[test]
    fn halved_backend_for_small_models() {
        let small = MachineConfig::preset(WidthClass::W4, IsaKind::Riscv);
        let big = MachineConfig::preset(WidthClass::W8, IsaKind::Riscv);
        assert_eq!(small.fu_count(FuKind::Int), 4);
        assert_eq!(big.fu_count(FuKind::Int), 8);
        assert_eq!(small.issue_width, 8);
        assert_eq!(
            MachineConfig::preset(WidthClass::W12, IsaKind::Riscv).issue_width,
            16
        );
    }

    #[test]
    fn cache_geometry() {
        let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        assert_eq!(cfg.l1d.sets(), 256);
        assert_eq!(cfg.l2.sets(), 8192);
    }

    #[test]
    fn logical_register_counts_match_table2() {
        assert_eq!(
            MachineConfig::preset(WidthClass::W4, IsaKind::Riscv).logical_regs(),
            63
        );
        assert_eq!(
            MachineConfig::preset(WidthClass::W4, IsaKind::Straight).logical_regs(),
            127
        );
        assert_eq!(
            MachineConfig::preset(WidthClass::W4, IsaKind::Clockhands).logical_regs(),
            63
        );
    }
}
