//! Minimal JSON value model, parser, and renderer.
//!
//! The workspace is offline (no serde), but the sweep service speaks a
//! JSONL wire protocol and the benchmark snapshots are JSON files, so
//! this module provides the small, dependency-free subset the repo
//! needs: a [`Json`] value tree, a strict recursive-descent
//! [`Json::parse`], and a deterministic [`Json::render`] (object keys
//! keep insertion order, so rendering is byte-stable — a property the
//! serving tests rely on).
//!
//! Integers are kept exact: a number without `.`/`e` parses to
//! [`Json::Int`], so `u64` simulation counters survive a round trip
//! bit-for-bit (up to `i64::MAX`, far above any counter the simulator
//! can produce within the interpreter instruction budget).
//!
//! # Examples
//!
//! ```
//! use ch_common::json::Json;
//!
//! let v = Json::parse(r#"{"type":"result","cached":true,"cycles":12345}"#).unwrap();
//! assert_eq!(v.get("type").and_then(Json::as_str), Some("result"));
//! assert_eq!(v.get("cycles").and_then(Json::as_u64), Some(12345));
//! assert_eq!(v.render(), r#"{"type":"result","cached":true,"cycles":12345}"#);
//! ```

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Object members keep their textual order (a `Vec`, not a map): the
/// renderer is therefore deterministic and `parse ∘ render` is the
/// identity on the wire formats this repo emits.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without a fraction or exponent (kept exact).
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in textual member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value from `s` (the entire string must be
    /// consumed, modulo trailing whitespace).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.at));
        }
        Ok(v)
    }

    /// Renders the value back to compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    /// Appends the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a member of an object by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative exact integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (accepts both number variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.at)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.at..].starts_with(b"\\u") {
                                    return Err("lone high surrogate".into());
                                }
                                self.at += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(c)
                                    .ok_or_else(|| "invalid \\u escape".to_string())?,
                            );
                            // hex4 leaves `at` on the next byte already.
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // byte boundaries are valid char boundaries).
                    let rest = &self.bytes[self.at..];
                    let step = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xf0 => 4,
                        b if b >= 0xe0 => 3,
                        _ => 2,
                    };
                    s.push_str(std::str::from_utf8(&rest[..step]).map_err(|e| e.to_string())?);
                    self.at += step;
                }
            }
        }
    }

    /// Reads four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.at..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.at = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut exact = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    exact = false;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|e| e.to_string())?;
        if exact {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_wire_shapes() {
        for line in [
            r#"{"type":"sim","id":3,"workload":"xz","timeout_ms":0}"#,
            r#"{"type":"result","cached":false,"wait_ms":1.5,"counters":{"cycles":9}}"#,
            r#"[1,-2,3.5,true,false,null,"s"]"#,
            r#"{"empty":{},"none":[]}"#,
        ] {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.render(), line, "stable round trip for {line}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = (1u64 << 53) + 1; // not representable in f64
        let v = Json::parse(&format!("{{\"n\":{big}}}")).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(big));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Obj(vec![(
            "m".into(),
            Json::Str("quote \" slash \\ newline \n tab \t unicode é".into()),
        )]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        // \u escapes (incl. a surrogate pair) parse to the right chars.
        let v = Json::parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn accessors_are_typed() {
        let v = Json::parse(r#"{"s":"x","n":4,"f":1.5,"b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
