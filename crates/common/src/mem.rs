//! Sparse byte-addressed memory for the functional emulators.
//!
//! Pages are allocated lazily, so a 64-bit address space costs only what is
//! touched. Reads of untouched memory return zero, which matches what the
//! emulated programs (whose data sections are zero-initialised) expect.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A sparse little-endian memory.
///
/// # Examples
///
/// ```
/// use ch_common::mem::Memory;
///
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x8000), 0); // untouched memory reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of 4 KiB pages that have been touched.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `size` bytes (1, 2, 4, or 8) little-endian, zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4, or 8.
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let mut v = 0u64;
        for i in 0..size as u64 {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not 1, 2, 4, or 8.
    pub fn write(&mut self, addr: u64, size: u8, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        for i in 0..size as u64 {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, 8, value);
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u64)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_sizes() {
        let mut m = Memory::new();
        for (size, val) in [
            (1u8, 0xab),
            (2, 0xabcd),
            (4, 0xabcd_ef01),
            (8, 0x0123_4567_89ab_cdef),
        ] {
            m.write(0x100, size, val);
            let mask = if size == 8 {
                u64::MAX
            } else {
                (1 << (8 * size)) - 1
            };
            assert_eq!(m.read(0x100, size), val & mask);
        }
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = (1 << PAGE_BITS) - 4; // straddles a page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn untouched_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read(0xdead_0000, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Memory::new();
        m.write_bytes(0x42, b"clockhands");
        assert_eq!(m.read_bytes(0x42, 10), b"clockhands");
    }

    #[test]
    #[should_panic(expected = "bad access size")]
    fn bad_size_panics() {
        let m = Memory::new();
        let _ = m.read(0, 3);
    }
}
