//! Event counters shared by the timing simulator and the energy model,
//! plus wall-time bookkeeping for the experiment drivers.
//!
//! The simulator increments [`Counters`] while it runs; the energy model
//! multiplies them by per-event energies (McPAT-style) to produce the
//! Fig. 14 stacks. [`Counters`] is a passive data structure, so its
//! fields are public.
//!
//! [`BusyClock`] and [`ExperimentTiming`] let a driver that fans
//! independent simulations out over worker threads report, per
//! experiment, the elapsed wall time, the total busy (CPU) time summed
//! over workers, and the effective speedup `busy / wall`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Thread-safe accumulator of busy (per-worker CPU) wall time.
///
/// Workers wrap each unit of work in [`BusyClock::time`]; the driver
/// compares [`BusyClock::total`] against elapsed wall time to report the
/// parallel speedup actually achieved.
#[derive(Debug, Default)]
pub struct BusyClock {
    nanos: AtomicU64,
}

impl BusyClock {
    /// A zeroed clock (usable in `static` position).
    pub const fn new() -> BusyClock {
        BusyClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Adds `d` to the accumulated busy time.
    pub fn add(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Runs `f`, charging its elapsed time to this clock.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(t0.elapsed());
        r
    }

    /// Total busy time accumulated so far.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// One experiment's timing summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentTiming {
    /// Elapsed wall time of the experiment.
    pub wall: Duration,
    /// Busy time summed over all workers during the experiment.
    pub busy: Duration,
}

impl ExperimentTiming {
    /// Effective parallel speedup: busy time over wall time.
    ///
    /// 1.0 means fully serial; `N` means `N` workers were kept busy the
    /// whole experiment. Returns 0.0 for a zero-length experiment.
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for ExperimentTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wall {:.2}s busy {:.2}s speedup {:.2}x",
            self.wall.as_secs_f64(),
            self.busy.as_secs_f64(),
            self.speedup()
        )
    }
}

/// Event counts accumulated over one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Instructions fetched (including refetches after squash).
    pub fetched: u64,
    /// Fetch groups (I-cache lookups).
    pub fetch_groups: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Instructions decoded.
    pub decoded: u64,
    /// Instructions passing the physical-register allocation stage.
    pub allocated: u64,
    /// RISC only: register map table read ports exercised.
    pub rmt_reads: u64,
    /// RISC only: register map table write ports exercised.
    pub rmt_writes: u64,
    /// RISC only: dependency-check-logic comparisons performed.
    pub dcl_comparisons: u64,
    /// RISC only: free-list pops/pushes.
    pub freelist_ops: u64,
    /// STRAIGHT/Clockhands: register-pointer updates (adds into the
    /// prefix-sum tree).
    pub rp_updates: u64,
    /// Checkpoints captured (branches entering the window).
    pub checkpoints: u64,
    /// Bits per checkpoint (configuration constant recorded for energy).
    pub checkpoint_bits: u64,
    /// Instructions dispatched into the ROB/scheduler.
    pub dispatched: u64,
    /// Scheduler wakeup broadcasts (one per completing producer).
    pub sched_wakeups: u64,
    /// Instructions issued to execution.
    pub issued: u64,
    /// Register-file read accesses.
    pub regfile_reads: u64,
    /// Register-file write accesses.
    pub regfile_writes: u64,
    /// Operations executed on integer units.
    pub int_ops: u64,
    /// Operations executed on floating-point units.
    pub fp_ops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Load-queue/store-queue associative searches.
    pub lsq_searches: u64,
    /// Store-to-load forwards.
    pub stl_forwards: u64,
    /// Memory-order violations detected (store-set training events).
    pub mem_order_violations: u64,
    /// D-cache accesses.
    pub dcache_accesses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// L2 accesses (demand + prefetch).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Conditional branches predicted.
    pub branch_preds: u64,
    /// Branch mispredictions (condition or target).
    pub branch_mispredicts: u64,
    /// Pipeline squashes (mispredict + memory-order recoveries).
    pub squashes: u64,
    /// ROB writes (dispatch) — tracked separately for the energy model.
    pub rob_writes: u64,
    /// ROB reads (commit).
    pub rob_reads: u64,
    /// Instructions committed.
    pub committed: u64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate (per predicted branch).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branch_preds == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branch_preds as f64
        }
    }

    /// Adds every field of `other` into `self` (for aggregating runs).
    pub fn merge(&mut self, other: &Counters) {
        let dst: &mut Counters = self;
        macro_rules! acc {
            ($($f:ident),* $(,)?) => { $( dst.$f += other.$f; )* };
        }
        acc!(
            cycles,
            fetched,
            fetch_groups,
            icache_misses,
            decoded,
            allocated,
            rmt_reads,
            rmt_writes,
            dcl_comparisons,
            freelist_ops,
            rp_updates,
            checkpoints,
            checkpoint_bits,
            dispatched,
            sched_wakeups,
            issued,
            regfile_reads,
            regfile_writes,
            int_ops,
            fp_ops,
            loads,
            stores,
            lsq_searches,
            stl_forwards,
            mem_order_violations,
            dcache_accesses,
            dcache_misses,
            l2_accesses,
            l2_misses,
            prefetches,
            branch_preds,
            branch_mispredicts,
            squashes,
            rob_writes,
            rob_reads,
            committed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(Counters::new().ipc(), 0.0);
        let c = Counters {
            cycles: 100,
            committed: 250,
            ..Counters::default()
        };
        assert!((c.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mispredict_rate() {
        let c = Counters {
            branch_preds: 1000,
            branch_mispredicts: 25,
            ..Counters::default()
        };
        assert!((c.mispredict_rate() - 0.025).abs() < 1e-12);
        assert_eq!(Counters::new().mispredict_rate(), 0.0);
    }

    #[test]
    fn busy_clock_accumulates_across_threads() {
        static CLOCK: BusyClock = BusyClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| CLOCK.add(Duration::from_millis(10)));
            }
        });
        assert_eq!(CLOCK.total(), Duration::from_millis(40));
    }

    #[test]
    fn timing_speedup() {
        let t = ExperimentTiming {
            wall: Duration::from_secs(2),
            busy: Duration::from_secs(6),
        };
        assert!((t.speedup() - 3.0).abs() < 1e-12);
        assert_eq!(t.to_string(), "wall 2.00s busy 6.00s speedup 3.00x");
        let zero = ExperimentTiming {
            wall: Duration::ZERO,
            busy: Duration::ZERO,
        };
        assert_eq!(zero.speedup(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters {
            cycles: 10,
            committed: 20,
            ..Counters::default()
        };
        let b = Counters {
            cycles: 5,
            committed: 7,
            loads: 3,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.committed, 27);
        assert_eq!(a.loads, 3);
    }
}
