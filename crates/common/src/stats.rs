//! Event counters shared by the timing simulator and the energy model,
//! plus wall-time bookkeeping for the experiment drivers.
//!
//! The simulator increments [`Counters`] while it runs; the energy model
//! multiplies them by per-event energies (McPAT-style) to produce the
//! Fig. 14 stacks. [`Counters`] is a passive data structure, so its
//! fields are public.
//!
//! [`StallBreakdown`] is the observability layer's top-down stall
//! account: every commit slot a simulation offers is either consumed by
//! a committed instruction or blamed on exactly one [`StallReason`], so
//! the lost-cycle mechanisms behind the paper's Figs. 13–14 (renamer
//! pressure on RISC, relay-`mv` dataflow on STRAIGHT, RP wrap stalls on
//! Clockhands) become directly measurable. The `figures stalls`
//! experiment renders it per `(workload, ISA, width)`.
//!
//! [`BusyClock`] and [`ExperimentTiming`] let a driver that fans
//! independent simulations out over worker threads report, per
//! experiment, the elapsed wall time, the total busy (CPU) time summed
//! over workers, and the effective speedup `busy / wall`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Thread-safe accumulator of busy (per-worker CPU) wall time.
///
/// Workers wrap each unit of work in [`BusyClock::time`]; the driver
/// compares [`BusyClock::total`] against elapsed wall time to report the
/// parallel speedup actually achieved.
#[derive(Debug, Default)]
pub struct BusyClock {
    nanos: AtomicU64,
}

impl BusyClock {
    /// A zeroed clock (usable in `static` position).
    pub const fn new() -> BusyClock {
        BusyClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Adds `d` to the accumulated busy time.
    pub fn add(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Runs `f`, charging its elapsed time to this clock.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(t0.elapsed());
        r
    }

    /// Total busy time accumulated so far.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }
}

/// One experiment's timing summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentTiming {
    /// Elapsed wall time of the experiment.
    pub wall: Duration,
    /// Busy time summed over all workers during the experiment.
    pub busy: Duration,
}

impl ExperimentTiming {
    /// Effective parallel speedup: busy time over wall time.
    ///
    /// 1.0 means fully serial; `N` means `N` workers were kept busy the
    /// whole experiment. Returns 0.0 for a zero-length experiment.
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for ExperimentTiming {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wall {:.2}s busy {:.2}s speedup {:.2}x",
            self.wall.as_secs_f64(),
            self.busy.as_secs_f64(),
            self.speedup()
        )
    }
}

/// Why a commit slot went unused — the single (hierarchical) cause the
/// simulator blames for each bubble at the retirement end of the pipe.
///
/// The timing core performs top-down-style accounting over **commit
/// slots**: every cycle offers `commit_width` slots, each committed
/// instruction consumes exactly one, and every slot that goes unused is
/// attributed to exactly one of these reasons — the binding constraint
/// of the instruction whose late arrival left the slot empty. The
/// attributed counts land in [`StallBreakdown`]; by construction
///
/// ```text
/// committed + StallBreakdown::attributed() == commit_width × cycles
/// ```
///
/// holds exactly (asserted by the `figures stalls` experiment and the
/// simulator test-suite). Blame is resolved **latest stage first**: a
/// cache miss on the instruction itself beats a slow producer, which
/// beats an execution-resource conflict, which beats whatever bound the
/// allocation stage. See DESIGN.md § "Pipeline model" for the stage each
/// reason maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// Fetch/decode could not deliver sooner: I-cache miss, taken-branch
    /// fetch-group break, front-end pipeline depth, or allocation
    /// bandwidth behind an older instruction.
    Frontend,
    /// The instruction is the first on the corrected path after a
    /// squash (branch misprediction or memory-order violation): the
    /// bubble is the recovery penalty, including the refilled front end.
    BranchRecovery,
    /// RISC only: the renamer's free list had no physical register — an
    /// older mapping had not yet committed and released one.
    AllocRename,
    /// STRAIGHT/Clockhands only: the register-pointer ring (or the
    /// destination hand's quota) wrapped into a live region, stalling
    /// RP-calculation until the blocking writer committed (the
    /// Section 5.1 wrap rule).
    AllocRp,
    /// The reorder buffer was full at allocation.
    RobFull,
    /// The scheduler (issue window) was full at allocation.
    SchedulerFull,
    /// The load queue or store queue was full at allocation.
    LsqFull,
    /// The data-cache hierarchy delayed the instruction: an L1/L2 miss,
    /// a wait on an in-flight store's data (forwarding), a memory-order
    /// violation penalty — or a wait on a *producer* that was itself
    /// memory-delayed (a load-to-use chain).
    Memory,
    /// Execution dataflow: waiting on a non-memory producer's result,
    /// a functional-unit conflict, or issue bandwidth.
    ExecDep,
}

impl StallReason {
    /// Every reason, in pipeline order (front end → commit).
    pub const ALL: [StallReason; 9] = [
        StallReason::Frontend,
        StallReason::BranchRecovery,
        StallReason::AllocRename,
        StallReason::AllocRp,
        StallReason::RobFull,
        StallReason::SchedulerFull,
        StallReason::LsqFull,
        StallReason::Memory,
        StallReason::ExecDep,
    ];

    /// Short kebab-case label used in tables and JSONL traces.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::Frontend => "frontend",
            StallReason::BranchRecovery => "branch-recovery",
            StallReason::AllocRename => "alloc-rename",
            StallReason::AllocRp => "alloc-rp",
            StallReason::RobFull => "rob-full",
            StallReason::SchedulerFull => "sched-full",
            StallReason::LsqFull => "lsq-full",
            StallReason::Memory => "memory",
            StallReason::ExecDep => "exec-dep",
        }
    }

    /// The inverse of [`label`](Self::label) (used when parsing the
    /// sweep-service wire format).
    pub fn from_label(s: &str) -> Option<StallReason> {
        StallReason::ALL.into_iter().find(|r| r.label() == s)
    }
}

/// Idle commit slots, attributed per [`StallReason`], for one simulation.
///
/// Lives inside [`Counters`]; the simulator adds the idle slots observed
/// in front of every committing instruction via [`StallBreakdown::add`]
/// and fills [`drain`](Self::drain) when the run finishes. The
/// conservation identity documented on [`StallReason`] ties these fields
/// to `cycles` and `committed`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Slots lost to [`StallReason::Frontend`].
    pub frontend: u64,
    /// Slots lost to [`StallReason::BranchRecovery`].
    pub branch_recovery: u64,
    /// Slots lost to [`StallReason::AllocRename`] (RISC only).
    pub alloc_rename: u64,
    /// Slots lost to [`StallReason::AllocRp`] (STRAIGHT/Clockhands only).
    pub alloc_rp: u64,
    /// Slots lost to [`StallReason::RobFull`].
    pub rob_full: u64,
    /// Slots lost to [`StallReason::SchedulerFull`].
    pub scheduler_full: u64,
    /// Slots lost to [`StallReason::LsqFull`].
    pub lsq_full: u64,
    /// Slots lost to [`StallReason::Memory`].
    pub memory: u64,
    /// Slots lost to [`StallReason::ExecDep`].
    pub exec_dep: u64,
    /// Remainder slots of the final cycle, after the last instruction
    /// committed (program end — always `< commit_width`).
    pub drain: u64,
}

impl StallBreakdown {
    /// Adds `slots` idle commit slots blamed on `reason`.
    pub fn add(&mut self, reason: StallReason, slots: u64) {
        *self.field_mut(reason) += slots;
    }

    /// The counter behind one reason (read access for tables).
    pub fn get(&self, reason: StallReason) -> u64 {
        match reason {
            StallReason::Frontend => self.frontend,
            StallReason::BranchRecovery => self.branch_recovery,
            StallReason::AllocRename => self.alloc_rename,
            StallReason::AllocRp => self.alloc_rp,
            StallReason::RobFull => self.rob_full,
            StallReason::SchedulerFull => self.scheduler_full,
            StallReason::LsqFull => self.lsq_full,
            StallReason::Memory => self.memory,
            StallReason::ExecDep => self.exec_dep,
        }
    }

    fn field_mut(&mut self, reason: StallReason) -> &mut u64 {
        match reason {
            StallReason::Frontend => &mut self.frontend,
            StallReason::BranchRecovery => &mut self.branch_recovery,
            StallReason::AllocRename => &mut self.alloc_rename,
            StallReason::AllocRp => &mut self.alloc_rp,
            StallReason::RobFull => &mut self.rob_full,
            StallReason::SchedulerFull => &mut self.scheduler_full,
            StallReason::LsqFull => &mut self.lsq_full,
            StallReason::Memory => &mut self.memory,
            StallReason::ExecDep => &mut self.exec_dep,
        }
    }

    /// Total idle slots attributed, including the end-of-run
    /// [`drain`](Self::drain) remainder.
    pub fn attributed(&self) -> u64 {
        StallReason::ALL.iter().map(|&r| self.get(r)).sum::<u64>() + self.drain
    }

    /// `(label, slots)` rows in pipeline order, ending with `"drain"` —
    /// the exact column order of the `figures stalls` table.
    pub fn rows(&self) -> [(&'static str, u64); 10] {
        let mut rows = [("", 0u64); 10];
        for (slot, &r) in rows.iter_mut().zip(StallReason::ALL.iter()) {
            *slot = (r.label(), self.get(r));
        }
        rows[9] = ("drain", self.drain);
        rows
    }

    /// Adds every field of `other` into `self`.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for &r in &StallReason::ALL {
            self.add(r, other.get(r));
        }
        self.drain += other.drain;
    }
}

/// Event counts accumulated over one simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Instructions fetched (including refetches after squash).
    pub fetched: u64,
    /// Fetch groups (I-cache lookups).
    pub fetch_groups: u64,
    /// Encoded bytes fetched (sum of committed instruction sizes,
    /// including refetches after squash) — the numerator of
    /// fetch-bandwidth utilization against `fetch_groups × fetch_bytes`.
    pub fetch_bytes: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// Instructions whose encoding straddled an I-cache line boundary
    /// (each costs a second I-cache line access; impossible under the
    /// aligned fixed-width layout).
    pub icache_straddles: u64,
    /// Instructions decoded.
    pub decoded: u64,
    /// Instructions passing the physical-register allocation stage.
    pub allocated: u64,
    /// RISC only: register map table read ports exercised.
    pub rmt_reads: u64,
    /// RISC only: register map table write ports exercised.
    pub rmt_writes: u64,
    /// RISC only: dependency-check-logic comparisons performed.
    pub dcl_comparisons: u64,
    /// RISC only: free-list pops/pushes.
    pub freelist_ops: u64,
    /// STRAIGHT/Clockhands: register-pointer updates (adds into the
    /// prefix-sum tree).
    pub rp_updates: u64,
    /// Checkpoints captured (branches entering the window).
    pub checkpoints: u64,
    /// Bits per checkpoint (configuration constant recorded for energy).
    pub checkpoint_bits: u64,
    /// Instructions dispatched into the ROB/scheduler.
    pub dispatched: u64,
    /// Scheduler wakeup broadcasts (one per completing producer).
    pub sched_wakeups: u64,
    /// Instructions issued to execution.
    pub issued: u64,
    /// Register-file read accesses.
    pub regfile_reads: u64,
    /// Register-file write accesses.
    pub regfile_writes: u64,
    /// Operations executed on integer units.
    pub int_ops: u64,
    /// Operations executed on floating-point units.
    pub fp_ops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Load-queue/store-queue associative searches.
    pub lsq_searches: u64,
    /// Store-to-load forwards.
    pub stl_forwards: u64,
    /// Memory-order violations detected (store-set training events).
    pub mem_order_violations: u64,
    /// D-cache accesses.
    pub dcache_accesses: u64,
    /// D-cache misses.
    pub dcache_misses: u64,
    /// L2 accesses (demand + prefetch).
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Conditional branches predicted.
    pub branch_preds: u64,
    /// Branch mispredictions (condition or target).
    pub branch_mispredicts: u64,
    /// Pipeline squashes (mispredict + memory-order recoveries).
    pub squashes: u64,
    /// ROB writes (dispatch) — tracked separately for the energy model.
    pub rob_writes: u64,
    /// ROB reads (commit).
    pub rob_reads: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Idle commit slots attributed per stall reason (top-down commit-slot
    /// accounting; see [`StallReason`] for the conservation identity).
    pub stalls: StallBreakdown,
}

/// Invokes `$m!` with the complete ordered list of scalar counter
/// fields — the single source of truth shared by [`Counters::merge`]
/// and the wire format ([`Counters::to_json`] /
/// [`Counters::from_json`]). Adding a field to [`Counters`] means
/// adding it here, and the wire format picks it up automatically.
macro_rules! counter_scalars {
    ($m:ident) => {
        $m!(
            cycles,
            fetched,
            fetch_groups,
            fetch_bytes,
            icache_misses,
            icache_straddles,
            decoded,
            allocated,
            rmt_reads,
            rmt_writes,
            dcl_comparisons,
            freelist_ops,
            rp_updates,
            checkpoints,
            checkpoint_bits,
            dispatched,
            sched_wakeups,
            issued,
            regfile_reads,
            regfile_writes,
            int_ops,
            fp_ops,
            loads,
            stores,
            lsq_searches,
            stl_forwards,
            mem_order_violations,
            dcache_accesses,
            dcache_misses,
            l2_accesses,
            l2_misses,
            prefetches,
            branch_preds,
            branch_mispredicts,
            squashes,
            rob_writes,
            rob_reads,
            committed
        )
    };
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate (per predicted branch).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branch_preds == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branch_preds as f64
        }
    }

    /// Checks the commit-slot conservation identity for a machine with
    /// the given commit width: every one of the `commit_width × cycles`
    /// slots is either a committed instruction or an attributed stall.
    ///
    /// # Examples
    ///
    /// ```
    /// use ch_common::stats::{Counters, StallReason};
    ///
    /// let mut c = Counters::new();
    /// c.cycles = 10;
    /// c.committed = 35;
    /// c.stalls.add(StallReason::Memory, 4);
    /// c.stalls.drain = 1;
    /// assert!(c.slots_conserved(4)); // 35 + 4 + 1 == 4 × 10
    /// ```
    pub fn slots_conserved(&self, commit_width: u32) -> bool {
        self.committed + self.stalls.attributed() == commit_width as u64 * self.cycles
    }

    /// Adds every field of `other` into `self` (for aggregating runs).
    pub fn merge(&mut self, other: &Counters) {
        let dst: &mut Counters = self;
        macro_rules! acc {
            ($($f:ident),* $(,)?) => { $( dst.$f += other.$f; )* };
        }
        counter_scalars!(acc);
        dst.stalls.merge(&other.stalls);
    }

    /// Every scalar counter as a `(name, value)` row, in declaration
    /// order — the exact field set and order of the wire format.
    pub fn wire_rows(&self) -> Vec<(&'static str, u64)> {
        macro_rules! rows {
            ($($f:ident),* $(,)?) => { vec![ $( (stringify!($f), self.$f), )* ] };
        }
        counter_scalars!(rows)
    }

    /// Sets one scalar counter by its wire name. Returns `false` for an
    /// unknown name (callers treat that as a protocol error).
    pub fn set_wire_field(&mut self, name: &str, v: u64) -> bool {
        macro_rules! setter {
            ($($f:ident),* $(,)?) => {
                match name {
                    $( stringify!($f) => { self.$f = v; true } )*
                    _ => false,
                }
            };
        }
        counter_scalars!(setter)
    }

    /// Renders the counters as one compact JSON object — the payload of
    /// a sweep-service `result` record and the inverse of
    /// [`from_json`](Self::from_json).
    ///
    /// Every scalar field is emitted (in declaration order) plus a
    /// `"stalls"` sub-object keyed by [`StallReason::label`] with the
    /// trailing `"drain"` row, so a round trip preserves the value
    /// exactly — including the commit-slot conservation identity.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push('{');
        for (name, v) in self.wire_rows() {
            let _ = std::fmt::Write::write_fmt(&mut s, format_args!("\"{name}\":{v},"));
        }
        s.push_str("\"stalls\":{");
        for (i, (label, v)) in self.stalls.rows().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = std::fmt::Write::write_fmt(&mut s, format_args!("\"{label}\":{v}"));
        }
        s.push_str("}}");
        s
    }

    /// Parses a [`to_json`](Self::to_json) object back into counters.
    ///
    /// Strict by design: every scalar field and every stall row must be
    /// present exactly once and nothing else may appear, so a schema
    /// drift between client and server fails loudly instead of silently
    /// zeroing a counter.
    pub fn from_json(v: &crate::json::Json) -> Result<Counters, String> {
        let members = v.as_obj().ok_or("counters: not a JSON object")?;
        let mut c = Counters::new();
        let mut seen = std::collections::HashSet::new();
        let mut stalls_seen = false;
        for (key, val) in members {
            if !seen.insert(key.as_str()) {
                return Err(format!("counters: duplicate field `{key}`"));
            }
            if key == "stalls" {
                stalls_seen = true;
                let rows = val.as_obj().ok_or("counters: stalls is not an object")?;
                let mut row_seen = std::collections::HashSet::new();
                for (label, slots) in rows {
                    if !row_seen.insert(label.as_str()) {
                        return Err(format!("counters: duplicate stall row `{label}`"));
                    }
                    let slots = slots
                        .as_u64()
                        .ok_or_else(|| format!("counters: stall `{label}` not a u64"))?;
                    if label == "drain" {
                        c.stalls.drain = slots;
                    } else {
                        let r = StallReason::from_label(label)
                            .ok_or_else(|| format!("counters: unknown stall row `{label}`"))?;
                        c.stalls.add(r, slots);
                    }
                }
                if row_seen.len() != StallReason::ALL.len() + 1 {
                    return Err(format!(
                        "counters: expected {} stall rows, got {}",
                        StallReason::ALL.len() + 1,
                        row_seen.len()
                    ));
                }
                continue;
            }
            let n = val
                .as_u64()
                .ok_or_else(|| format!("counters: field `{key}` not a u64"))?;
            if !c.set_wire_field(key, n) {
                return Err(format!("counters: unknown field `{key}`"));
            }
        }
        let expected = c.wire_rows().len();
        if seen.len() != expected + usize::from(stalls_seen) || !stalls_seen {
            return Err(format!(
                "counters: expected {} fields plus stalls, got {}",
                expected,
                seen.len()
            ));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(Counters::new().ipc(), 0.0);
        let c = Counters {
            cycles: 100,
            committed: 250,
            ..Counters::default()
        };
        assert!((c.ipc() - 2.5).abs() < 1e-12);
    }

    /// Counters with every wire field (and stall row) set to a distinct
    /// value, so a dropped or misnamed field cannot cancel out.
    fn distinct_counters() -> Counters {
        let mut c = Counters::new();
        for (i, (name, _)) in c.clone().wire_rows().iter().enumerate() {
            assert!(c.set_wire_field(name, 1000 + i as u64), "set {name}");
        }
        for (i, &r) in StallReason::ALL.iter().enumerate() {
            c.stalls.add(r, 2000 + i as u64);
        }
        c.stalls.drain = 3;
        c
    }

    #[test]
    fn wire_roundtrip_is_exact() {
        for c in [Counters::new(), distinct_counters()] {
            let json = c.to_json();
            let v = crate::json::Json::parse(&json).expect("wire json parses");
            let back = Counters::from_json(&v).expect("wire json decodes");
            assert_eq!(back, c);
            // Rendering is deterministic (byte-identity matters to the
            // sweep service's acceptance test).
            assert_eq!(back.to_json(), json);
        }
    }

    #[test]
    fn wire_decode_is_strict() {
        let c = distinct_counters();
        let good = c.to_json();
        // A missing scalar field, an unknown field, and a missing stall
        // row must all fail loudly.
        let missing = good.replacen("\"cycles\":1000,", "", 1);
        let unknown = good.replacen("\"cycles\":", "\"cyclez\":", 1);
        let missing_stall = good.replacen("\"memory\":2007,", "", 1);
        let not_u64 = good.replacen("\"cycles\":1000", "\"cycles\":-1", 1);
        for bad in [missing, unknown, missing_stall, not_u64] {
            let v = crate::json::Json::parse(&bad).expect("still valid json");
            assert!(Counters::from_json(&v).is_err(), "must reject: {bad}");
        }
    }

    #[test]
    fn stall_labels_roundtrip() {
        for r in StallReason::ALL {
            assert_eq!(StallReason::from_label(r.label()), Some(r));
        }
        assert_eq!(StallReason::from_label("drain"), None);
    }

    #[test]
    fn mispredict_rate() {
        let c = Counters {
            branch_preds: 1000,
            branch_mispredicts: 25,
            ..Counters::default()
        };
        assert!((c.mispredict_rate() - 0.025).abs() < 1e-12);
        assert_eq!(Counters::new().mispredict_rate(), 0.0);
    }

    #[test]
    fn busy_clock_accumulates_across_threads() {
        static CLOCK: BusyClock = BusyClock::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| CLOCK.add(Duration::from_millis(10)));
            }
        });
        assert_eq!(CLOCK.total(), Duration::from_millis(40));
    }

    #[test]
    fn timing_speedup() {
        let t = ExperimentTiming {
            wall: Duration::from_secs(2),
            busy: Duration::from_secs(6),
        };
        assert!((t.speedup() - 3.0).abs() < 1e-12);
        assert_eq!(t.to_string(), "wall 2.00s busy 6.00s speedup 3.00x");
        let zero = ExperimentTiming {
            wall: Duration::ZERO,
            busy: Duration::ZERO,
        };
        assert_eq!(zero.speedup(), 0.0);
    }

    #[test]
    fn stall_breakdown_add_get_rows() {
        let mut b = StallBreakdown::default();
        for (i, &r) in StallReason::ALL.iter().enumerate() {
            b.add(r, (i + 1) as u64);
            assert_eq!(b.get(r), (i + 1) as u64, "{}", r.label());
        }
        b.drain = 3;
        let expected: u64 = (1..=9).sum::<u64>() + 3;
        assert_eq!(b.attributed(), expected);
        let rows = b.rows();
        assert_eq!(rows[0], ("frontend", 1));
        assert_eq!(rows[9], ("drain", 3));
        // Rows cover every reason exactly once.
        assert_eq!(rows.iter().map(|&(_, v)| v).sum::<u64>(), expected);
    }

    #[test]
    fn stall_breakdown_merges_fieldwise() {
        let mut a = StallBreakdown {
            memory: 5,
            drain: 1,
            ..StallBreakdown::default()
        };
        let b = StallBreakdown {
            memory: 2,
            frontend: 7,
            ..StallBreakdown::default()
        };
        a.merge(&b);
        assert_eq!(a.memory, 7);
        assert_eq!(a.frontend, 7);
        assert_eq!(a.drain, 1);
    }

    #[test]
    fn slot_conservation_identity() {
        let mut c = Counters::new();
        c.cycles = 100;
        c.committed = 250;
        c.stalls.add(StallReason::ExecDep, 500);
        c.stalls.add(StallReason::RobFull, 49);
        c.stalls.drain = 1;
        assert!(c.slots_conserved(8));
        assert!(!c.slots_conserved(4));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters {
            cycles: 10,
            committed: 20,
            ..Counters::default()
        };
        let b = Counters {
            cycles: 5,
            committed: 7,
            loads: 3,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.committed, 27);
        assert_eq!(a.loads, 3);
    }
}
