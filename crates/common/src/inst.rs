//! The dynamic-instruction record exchanged between functional emulators,
//! the timing simulator, and the trace analyses.
//!
//! A functional emulator executes a program and yields one [`DynInst`] per
//! *committed* instruction, in program order. Register dataflow is resolved
//! to *producer sequence numbers*: each source carries the `seq` of the
//! dynamic instruction that produced the value. This makes the record
//! ISA-agnostic — the three ISAs differ in *which* instructions exist
//! (relay `mv`s, `nop`s, spills) and in destination tags, not in how the
//! record is shaped.

use crate::op::OpClass;

// Traces are shared across experiment worker threads (compile-time audit).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DynInst>()
};

/// Sentinel meaning "no producer": the source is a constant, the zero
/// register, or a value that existed before the trace began.
pub const NO_PRODUCER: u64 = u64::MAX;

/// Destination tag: where an instruction's result goes, in ISA terms.
///
/// Used for the Fig. 16 hand-usage breakdown and by the per-ISA physical
/// register allocation models in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DstTag {
    /// Conventional RISC: a logical register number.
    Reg(u8),
    /// STRAIGHT: the implicitly allocated next slot of the single ring.
    RingSlot,
    /// Clockhands: a write to hand `0..4` (t, u, v, s in compiler order).
    Hand(u8),
}

impl DstTag {
    /// The hand index for a Clockhands write, if this is one.
    pub fn hand(self) -> Option<u8> {
        match self {
            DstTag::Hand(h) => Some(h),
            _ => None,
        }
    }
}

/// Control-flow kind of a branch-class instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtrlKind {
    /// Direct call (pushes the return address stack).
    Call,
    /// Return (pops the return address stack); always register-indirect.
    Ret,
    /// Unconditional direct jump.
    Jump,
    /// Register-indirect jump or call that is not a return.
    IndirectJump,
    /// Conditional direct branch.
    Cond,
}

impl CtrlKind {
    /// Whether the target comes from a register (needs the BTB to predict).
    pub fn is_indirect(self) -> bool {
        matches!(self, CtrlKind::Ret | CtrlKind::IndirectJump)
    }
}

/// Resolved control-flow outcome of a branch-class instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtrlInfo {
    /// What kind of control transfer this is.
    pub kind: CtrlKind,
    /// Whether the branch was taken (always true except fall-through conds).
    pub taken: bool,
    /// The target address if taken.
    pub target: u64,
}

/// Resolved memory access of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4, or 8).
    pub size: u8,
}

/// One committed dynamic instruction.
///
/// # Examples
///
/// ```
/// use ch_common::inst::{DstTag, DynInst};
/// use ch_common::op::OpClass;
///
/// let add = DynInst::new(7, 0x1000, OpClass::IntAlu)
///     .with_srcs(&[3, 5])
///     .with_dst(DstTag::Hand(0));
/// assert_eq!(add.seq, 7);
/// assert_eq!(add.sources().collect::<Vec<_>>(), vec![3, 5]);
/// assert!(add.dst.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynInst {
    /// Commit-order sequence number (0-based, dense).
    pub seq: u64,
    /// Program counter of the static instruction.
    pub pc: u64,
    /// Encoded size of the static instruction in bytes (4 for the
    /// abstract fixed-width layout; 2 or 4 under a compressed encoding).
    pub size: u8,
    /// Operation class.
    pub class: OpClass,
    /// Producer `seq` for each register source; [`NO_PRODUCER`] when absent.
    pub srcs: [u64; 2],
    /// Destination tag, if the instruction writes a register.
    pub dst: Option<DstTag>,
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// Control-flow outcome, for branch-class instructions.
    pub ctrl: Option<CtrlInfo>,
}

impl DynInst {
    /// Creates a record with no sources, destination, memory, or control,
    /// at the abstract fixed-width size of 4 bytes.
    pub fn new(seq: u64, pc: u64, class: OpClass) -> Self {
        DynInst {
            seq,
            pc,
            size: 4,
            class,
            srcs: [NO_PRODUCER; 2],
            dst: None,
            mem: None,
            ctrl: None,
        }
    }

    /// Sets the encoded instruction size in bytes.
    pub fn with_size(mut self, size: u8) -> Self {
        self.size = size;
        self
    }

    /// Sets up to two register-source producers.
    ///
    /// # Panics
    ///
    /// Panics if more than two sources are supplied.
    pub fn with_srcs(mut self, producers: &[u64]) -> Self {
        assert!(producers.len() <= 2, "at most two register sources");
        for (slot, &p) in self.srcs.iter_mut().zip(producers) {
            *slot = p;
        }
        self
    }

    /// Sets the destination tag.
    pub fn with_dst(mut self, dst: DstTag) -> Self {
        self.dst = Some(dst);
        self
    }

    /// Sets the memory access.
    pub fn with_mem(mut self, addr: u64, size: u8) -> Self {
        self.mem = Some(MemAccess { addr, size });
        self
    }

    /// Sets the control-flow outcome.
    pub fn with_ctrl(mut self, kind: CtrlKind, taken: bool, target: u64) -> Self {
        self.ctrl = Some(CtrlInfo {
            kind,
            taken,
            target,
        });
        self
    }

    /// Iterates over the present producer sequence numbers.
    pub fn sources(&self) -> impl Iterator<Item = u64> + '_ {
        self.srcs.iter().copied().filter(|&s| s != NO_PRODUCER)
    }

    /// Whether this instruction redirects the fetch stream.
    pub fn redirects_fetch(&self) -> bool {
        self.ctrl.map(|c| c.taken).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_skip_sentinels() {
        let i = DynInst::new(0, 0, OpClass::IntAlu).with_srcs(&[42]);
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![42]);
        let none = DynInst::new(0, 0, OpClass::Nop);
        assert_eq!(none.sources().count(), 0);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn too_many_sources_panics() {
        let _ = DynInst::new(0, 0, OpClass::IntAlu).with_srcs(&[1, 2, 3]);
    }

    #[test]
    fn redirects_only_when_taken() {
        let taken = DynInst::new(0, 0, OpClass::CondBr).with_ctrl(CtrlKind::Cond, true, 0x40);
        let not = DynInst::new(1, 4, OpClass::CondBr).with_ctrl(CtrlKind::Cond, false, 0x40);
        let plain = DynInst::new(2, 8, OpClass::IntAlu);
        assert!(taken.redirects_fetch());
        assert!(!not.redirects_fetch());
        assert!(!plain.redirects_fetch());
    }

    #[test]
    fn ctrl_kind_indirection() {
        assert!(CtrlKind::Ret.is_indirect());
        assert!(CtrlKind::IndirectJump.is_indirect());
        assert!(!CtrlKind::Call.is_indirect());
        assert!(!CtrlKind::Cond.is_indirect());
    }

    #[test]
    fn dst_tag_hand_accessor() {
        assert_eq!(DstTag::Hand(2).hand(), Some(2));
        assert_eq!(DstTag::Reg(5).hand(), None);
        assert_eq!(DstTag::RingSlot.hand(), None);
    }
}
