//! Operation classes and functional-unit kinds.
//!
//! [`OpClass`] mirrors the instruction categories of Fig. 15 of the paper
//! ("Call+Ret, Jump, CondBr, Load, Store, ALU, Mul+Div, FLOPs, Move, NOP,
//! Others"); [`FuKind`] mirrors the execution units of Table 2
//! ("Int×8, Float×4, Load×3, Store×2, iMul×2, iDiv×1, fDiv×1").

/// Coarse operation class of an instruction.
///
/// Used for the Fig. 15 breakdown, for functional-unit routing in the timing
/// simulator, and for per-class energy accounting.
///
/// # Examples
///
/// ```
/// use ch_common::op::{FuKind, OpClass};
///
/// assert_eq!(OpClass::Load.fu_kind(), FuKind::Load);
/// assert!(OpClass::CondBr.is_branch());
/// assert!(!OpClass::IntAlu.is_branch());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpClass {
    /// Function call or return (JAL/JALR with link, `ret`).
    CallRet,
    /// Unconditional direct jump.
    Jump,
    /// Conditional branch.
    CondBr,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Simple integer ALU operation (add, logic, shift, compare, lui...).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Floating-point arithmetic (add/sub/mul/convert/compare).
    Fp,
    /// Floating-point divide / square root.
    FpDiv,
    /// Register-to-register move (the relay `mv` the paper counts).
    Move,
    /// No-operation (the convergence-point `nop` the paper counts).
    Nop,
    /// Anything else (fences, csr-ish system operations).
    Other,
}

impl OpClass {
    /// Every class, in the legend order of Fig. 15.
    pub const ALL: [OpClass; 13] = [
        OpClass::CallRet,
        OpClass::Jump,
        OpClass::CondBr,
        OpClass::Load,
        OpClass::Store,
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::Fp,
        OpClass::FpDiv,
        OpClass::Move,
        OpClass::Nop,
        OpClass::Other,
    ];

    /// Label used in the Fig. 15 legend.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::CallRet => "Call+Ret",
            OpClass::Jump => "Jump",
            OpClass::CondBr => "CondBr",
            OpClass::Load => "Load",
            OpClass::Store => "Store",
            OpClass::IntAlu => "ALU",
            OpClass::IntMul | OpClass::IntDiv => "Mul+Div",
            OpClass::Fp | OpClass::FpDiv => "FLOPs",
            OpClass::Move => "Move",
            OpClass::Nop => "NOP",
            OpClass::Other => "Others",
        }
    }

    /// Whether the class transfers control (ends a fetch group when taken).
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::CallRet | OpClass::Jump | OpClass::CondBr)
    }

    /// Whether the class accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// The functional unit the class executes on.
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::Load => FuKind::Load,
            OpClass::Store => FuKind::Store,
            OpClass::IntMul => FuKind::IntMul,
            OpClass::IntDiv => FuKind::IntDiv,
            OpClass::Fp => FuKind::Float,
            OpClass::FpDiv => FuKind::FpDiv,
            // Branches, moves, nops and misc ops go down the integer pipes.
            _ => FuKind::Int,
        }
    }

    /// Execution latency in cycles, excluding memory-hierarchy time for
    /// loads (the simulator adds cache latency on top of address generation).
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntMul => 3,
            OpClass::IntDiv => 12,
            OpClass::Fp => 4,
            OpClass::FpDiv => 12,
            OpClass::Load | OpClass::Store => 1, // address generation
            _ => 1,
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Functional-unit kind, per Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Simple integer ALU (also executes branches, moves, nops).
    Int,
    /// Floating-point pipe.
    Float,
    /// Load port.
    Load,
    /// Store port.
    Store,
    /// Integer multiplier.
    IntMul,
    /// Integer divider (unpipelined).
    IntDiv,
    /// Floating-point divider (unpipelined).
    FpDiv,
}

impl FuKind {
    /// All unit kinds.
    pub const ALL: [FuKind; 7] = [
        FuKind::Int,
        FuKind::Float,
        FuKind::Load,
        FuKind::Store,
        FuKind::IntMul,
        FuKind::IntDiv,
        FuKind::FpDiv,
    ];

    /// Whether the unit is pipelined (can accept a new op every cycle).
    pub fn pipelined(self) -> bool {
        !matches!(self, FuKind::IntDiv | FuKind::FpDiv)
    }

    /// Index into fixed-size per-unit arrays.
    pub fn index(self) -> usize {
        match self {
            FuKind::Int => 0,
            FuKind::Float => 1,
            FuKind::Load => 2,
            FuKind::Store => 3,
            FuKind::IntMul => 4,
            FuKind::IntDiv => 5,
            FuKind::FpDiv => 6,
        }
    }
}

impl std::fmt::Display for FuKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FuKind::Int => "Int",
            FuKind::Float => "Float",
            FuKind::Load => "Load",
            FuKind::Store => "Store",
            FuKind::IntMul => "iMul",
            FuKind::IntDiv => "iDiv",
            FuKind::FpDiv => "fDiv",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_routes_to_a_unit() {
        for c in OpClass::ALL {
            // index() must be a valid array index for all reachable units
            assert!(c.fu_kind().index() < FuKind::ALL.len());
        }
    }

    #[test]
    fn branch_classification() {
        assert!(OpClass::CallRet.is_branch());
        assert!(OpClass::Jump.is_branch());
        assert!(OpClass::CondBr.is_branch());
        for c in [OpClass::Load, OpClass::Store, OpClass::IntAlu, OpClass::Nop] {
            assert!(!c.is_branch());
        }
    }

    #[test]
    fn memory_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
    }

    #[test]
    fn latencies_are_positive() {
        for c in OpClass::ALL {
            assert!(c.exec_latency() >= 1, "{c:?} latency must be >= 1");
        }
    }

    #[test]
    fn dividers_are_unpipelined() {
        assert!(!FuKind::IntDiv.pipelined());
        assert!(!FuKind::FpDiv.pipelined());
        assert!(FuKind::Int.pipelined());
        assert!(FuKind::Load.pipelined());
    }

    #[test]
    fn fu_indices_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for f in FuKind::ALL {
            assert!(seen.insert(f.index()));
        }
    }

    #[test]
    fn fig15_labels_merge_muldiv_and_fp() {
        assert_eq!(OpClass::IntMul.label(), OpClass::IntDiv.label());
        assert_eq!(OpClass::Fp.label(), OpClass::FpDiv.label());
        assert_eq!(OpClass::Move.label(), "Move");
    }
}
