//! Mnemonic-level operation semantics shared by all three ISAs.
//!
//! Fig. 5 of the paper shows that RISC-V, STRAIGHT, and Clockhands share
//! `opcode`/`funct` fields and differ **only** in how register operands are
//! specified. We mirror that: the computational semantics live here once,
//! and each ISA crate wraps them with its own operand representation.
//!
//! Values are untyped 64-bit words; floating-point operations bit-cast
//! to/from `f64` (RV64G keeps FP in separate registers, but STRAIGHT and
//! Clockhands use a unified 64-bit file, so a unified value model is the
//! common denominator).

use crate::op::OpClass;

/// Two-source (or source+immediate) computational operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// 64-bit add.
    Add,
    /// 64-bit subtract.
    Sub,
    /// Shift left logical (amount masked to 6 bits).
    Sll,
    /// Set if signed less-than.
    Slt,
    /// Set if unsigned less-than.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// 32-bit add, sign-extended (RV64 `addw`).
    Addw,
    /// 32-bit subtract, sign-extended.
    Subw,
    /// 32-bit shift left, sign-extended.
    Sllw,
    /// 32-bit logical right shift, sign-extended.
    Srlw,
    /// 32-bit arithmetic right shift, sign-extended.
    Sraw,
    /// 64-bit multiply (low half).
    Mul,
    /// Signed divide (RISC-V semantics: x/0 = -1, overflow wraps).
    Div,
    /// Unsigned divide (x/0 = all ones).
    Divu,
    /// Signed remainder (x%0 = x).
    Rem,
    /// Unsigned remainder (x%0 = x).
    Remu,
    /// 32-bit multiply, sign-extended.
    Mulw,
    /// 32-bit signed divide, sign-extended.
    Divw,
    /// 32-bit signed remainder, sign-extended.
    Remw,
    /// Double-precision add (operands bit-cast to `f64`).
    Fadd,
    /// Double-precision subtract.
    Fsub,
    /// Double-precision multiply.
    Fmul,
    /// Double-precision divide.
    Fdiv,
    /// Double-precision minimum.
    Fmin,
    /// Double-precision maximum.
    Fmax,
    /// Set if FP equal.
    Feq,
    /// Set if FP less-than.
    Flt,
    /// Set if FP less-or-equal.
    Fle,
    /// Convert signed integer (first operand) to double.
    Fcvtdl,
    /// Convert double (first operand) to signed integer, truncating.
    Fcvtld,
    /// Move raw integer bits (first operand) into a floating-point value
    /// (RV64D `fmv.d.x`); the identity on the unified register files.
    Fmvdx,
}

impl AluOp {
    /// The [`OpClass`] this operation belongs to (FU routing + Fig. 15).
    pub fn class(self) -> OpClass {
        use AluOp::*;
        match self {
            Mul | Mulw => OpClass::IntMul,
            Div | Divu | Rem | Remu | Divw | Remw => OpClass::IntDiv,
            Fadd | Fsub | Fmul | Fmin | Fmax | Feq | Flt | Fle | Fcvtdl | Fcvtld | Fmvdx => {
                OpClass::Fp
            }
            Fdiv => OpClass::FpDiv,
            _ => OpClass::IntAlu,
        }
    }

    /// Whether the operation interprets its operands as floating point.
    pub fn is_fp(self) -> bool {
        matches!(self.class(), OpClass::Fp | OpClass::FpDiv)
    }

    /// Evaluates the operation on two 64-bit operands.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        use AluOp::*;
        let fa = f64::from_bits(a);
        let fb = f64::from_bits(b);
        match self {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Sll => a << (b & 63),
            Slt => ((a as i64) < (b as i64)) as u64,
            Sltu => (a < b) as u64,
            Xor => a ^ b,
            Srl => a >> (b & 63),
            Sra => ((a as i64) >> (b & 63)) as u64,
            Or => a | b,
            And => a & b,
            Addw => (a as i32).wrapping_add(b as i32) as i64 as u64,
            Subw => (a as i32).wrapping_sub(b as i32) as i64 as u64,
            Sllw => ((a as i32) << (b & 31)) as i64 as u64,
            Srlw => (((a as u32) >> (b & 31)) as i32) as i64 as u64,
            Sraw => ((a as i32) >> (b & 31)) as i64 as u64,
            Mul => a.wrapping_mul(b),
            Div => {
                let (x, y) = (a as i64, b as i64);
                if y == 0 {
                    u64::MAX
                } else {
                    x.wrapping_div(y) as u64
                }
            }
            Divu => a.checked_div(b).unwrap_or(u64::MAX),
            Rem => {
                let (x, y) = (a as i64, b as i64);
                if y == 0 {
                    a
                } else {
                    x.wrapping_rem(y) as u64
                }
            }
            Remu => a.checked_rem(b).unwrap_or(a),
            Mulw => (a as i32).wrapping_mul(b as i32) as i64 as u64,
            Divw => {
                let (x, y) = (a as i32, b as i32);
                if y == 0 {
                    u64::MAX
                } else {
                    x.wrapping_div(y) as i64 as u64
                }
            }
            Remw => {
                let (x, y) = (a as i32, b as i32);
                if y == 0 {
                    x as i64 as u64
                } else {
                    x.wrapping_rem(y) as i64 as u64
                }
            }
            Fadd => (fa + fb).to_bits(),
            Fsub => (fa - fb).to_bits(),
            Fmul => (fa * fb).to_bits(),
            Fdiv => (fa / fb).to_bits(),
            Fmin => fa.min(fb).to_bits(),
            Fmax => fa.max(fb).to_bits(),
            Feq => (fa == fb) as u64,
            Flt => (fa < fb) as u64,
            Fle => (fa <= fb) as u64,
            Fcvtdl => ((a as i64) as f64).to_bits(),
            Fcvtld => {
                if fa.is_nan() {
                    0
                } else {
                    (fa as i64) as u64
                }
            }
            Fmvdx => a,
        }
    }

    /// Assembler mnemonic (lower-case).
    pub fn mnemonic(self) -> &'static str {
        use AluOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
            Addw => "addw",
            Subw => "subw",
            Sllw => "sllw",
            Srlw => "srlw",
            Sraw => "sraw",
            Mul => "mul",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
            Mulw => "mulw",
            Divw => "divw",
            Remw => "remw",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fmin => "fmin",
            Fmax => "fmax",
            Feq => "feq",
            Flt => "flt",
            Fle => "fle",
            Fcvtdl => "fcvt.d.l",
            Fcvtld => "fcvt.l.d",
            Fmvdx => "fmv.d.x",
        }
    }
}

/// Memory access width and extension for loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load byte, sign-extend.
    Lb,
    /// Load half, sign-extend.
    Lh,
    /// Load word, sign-extend.
    Lw,
    /// Load double.
    Ld,
    /// Load byte, zero-extend.
    Lbu,
    /// Load half, zero-extend.
    Lhu,
    /// Load word, zero-extend.
    Lwu,
}

impl LoadOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }

    /// Applies sign/zero extension to a raw little-endian value.
    pub fn extend(self, raw: u64) -> u64 {
        match self {
            LoadOp::Lb => raw as u8 as i8 as i64 as u64,
            LoadOp::Lh => raw as u16 as i16 as i64 as u64,
            LoadOp::Lw => raw as u32 as i32 as i64 as u64,
            LoadOp::Ld | LoadOp::Lbu | LoadOp::Lhu | LoadOp::Lwu => raw,
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Ld => "ld",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
            LoadOp::Lwu => "lwu",
        }
    }
}

/// Memory access width for stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store half.
    Sh,
    /// Store word.
    Sw,
    /// Store double.
    Sd,
}

impl StoreOp {
    /// Access size in bytes.
    pub fn size(self) -> u8 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }

    /// Assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
            StoreOp::Sd => "sd",
        }
    }
}

/// Conditional-branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BrCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BrCond {
    /// Evaluates the condition on two operands.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i64) < (b as i64),
            BrCond::Ge => (a as i64) >= (b as i64),
            BrCond::Ltu => a < b,
            BrCond::Geu => a >= b,
        }
    }

    /// The logically negated condition.
    pub fn negate(self) -> BrCond {
        match self {
            BrCond::Eq => BrCond::Ne,
            BrCond::Ne => BrCond::Eq,
            BrCond::Lt => BrCond::Ge,
            BrCond::Ge => BrCond::Lt,
            BrCond::Ltu => BrCond::Geu,
            BrCond::Geu => BrCond::Ltu,
        }
    }

    /// Assembler mnemonic suffix (`beq`, `bne`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BrCond::Eq => "beq",
            BrCond::Ne => "bne",
            BrCond::Lt => "blt",
            BrCond::Ge => "bge",
            BrCond::Ltu => "bltu",
            BrCond::Geu => "bgeu",
        }
    }
}

/// The shared arithmetic-edge-case conformance table.
///
/// Every entry pins the documented RV64G-subset behaviour for an input
/// the hardware folklore gets wrong: division/remainder by zero,
/// `i64::MIN / -1` (and the 32-bit analogue), and shift amounts at or
/// past the operand width. [`AluOp::eval`] is the single implementation
/// all three interpreters call, and `ch-fuzz` additionally replays this
/// table through each interpreter's front door (assembled `li`/ALU
/// snippets), so none of the three can drift from these rows without a
/// test failing.
pub mod conformance {
    use super::AluOp;

    /// One pinned edge case: `op.eval(a, b)` must equal `expect`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Case {
        /// Operation under test.
        pub op: AluOp,
        /// First operand.
        pub a: u64,
        /// Second operand.
        pub b: u64,
        /// Required result.
        pub expect: u64,
        /// Why this row exists.
        pub why: &'static str,
    }

    const NEG1: u64 = u64::MAX;
    const I64_MIN: u64 = i64::MIN as u64;
    const I32_MIN_SX: u64 = i32::MIN as i64 as u64;

    /// The canonical table (RV64G M-extension + shift semantics).
    pub const TABLE: &[Case] = &[
        // --- division by zero: quotient is all ones, remainder is the dividend ---
        Case {
            op: AluOp::Div,
            a: 42,
            b: 0,
            expect: NEG1,
            why: "div by zero -> -1",
        },
        Case {
            op: AluOp::Div,
            a: NEG1,
            b: 0,
            expect: NEG1,
            why: "-1 div 0 -> -1",
        },
        Case {
            op: AluOp::Divu,
            a: 42,
            b: 0,
            expect: u64::MAX,
            why: "divu by zero -> 2^64-1",
        },
        Case {
            op: AluOp::Rem,
            a: 42,
            b: 0,
            expect: 42,
            why: "rem by zero -> dividend",
        },
        Case {
            op: AluOp::Rem,
            a: I64_MIN,
            b: 0,
            expect: I64_MIN,
            why: "rem by zero keeps sign",
        },
        Case {
            op: AluOp::Remu,
            a: 42,
            b: 0,
            expect: 42,
            why: "remu by zero -> dividend",
        },
        Case {
            op: AluOp::Divw,
            a: 7,
            b: 0,
            expect: NEG1,
            why: "divw by zero -> -1 (sign-extended)",
        },
        Case {
            op: AluOp::Remw,
            a: 0x8000_0007,
            b: 0,
            expect: 0xffff_ffff_8000_0007,
            why: "remw by zero -> sign-extended 32-bit dividend",
        },
        // --- signed overflow: MIN / -1 wraps to MIN, remainder is zero ---
        Case {
            op: AluOp::Div,
            a: I64_MIN,
            b: NEG1,
            expect: I64_MIN,
            why: "i64::MIN / -1 wraps",
        },
        Case {
            op: AluOp::Rem,
            a: I64_MIN,
            b: NEG1,
            expect: 0,
            why: "i64::MIN % -1 == 0",
        },
        Case {
            op: AluOp::Divw,
            a: I32_MIN_SX,
            b: NEG1,
            expect: I32_MIN_SX,
            why: "i32::MIN / -1 wraps (sign-extended)",
        },
        Case {
            op: AluOp::Remw,
            a: I32_MIN_SX,
            b: NEG1,
            expect: 0,
            why: "i32::MIN % -1 == 0",
        },
        // --- shift amounts are masked, not saturated: 64-bit ops use b & 63 ---
        Case {
            op: AluOp::Sll,
            a: 1,
            b: 64,
            expect: 1,
            why: "sll by 64 == sll by 0",
        },
        Case {
            op: AluOp::Sll,
            a: 1,
            b: 65,
            expect: 2,
            why: "sll by 65 == sll by 1",
        },
        Case {
            op: AluOp::Sll,
            a: 1,
            b: 63,
            expect: 1 << 63,
            why: "sll by 63 reaches the top bit",
        },
        Case {
            op: AluOp::Srl,
            a: I64_MIN,
            b: 64,
            expect: I64_MIN,
            why: "srl by 64 == srl by 0",
        },
        Case {
            op: AluOp::Srl,
            a: I64_MIN,
            b: 63,
            expect: 1,
            why: "srl by 63",
        },
        Case {
            op: AluOp::Sra,
            a: I64_MIN,
            b: 64,
            expect: I64_MIN,
            why: "sra by 64 == sra by 0",
        },
        Case {
            op: AluOp::Sra,
            a: I64_MIN,
            b: 63,
            expect: NEG1,
            why: "sra by 63 smears the sign",
        },
        // --- 32-bit shifts mask to b & 31 and sign-extend the 32-bit result ---
        Case {
            op: AluOp::Sllw,
            a: 1,
            b: 32,
            expect: 1,
            why: "sllw by 32 == sllw by 0",
        },
        Case {
            op: AluOp::Sllw,
            a: 1,
            b: 31,
            expect: I32_MIN_SX,
            why: "sllw by 31 sets bit 31, sign-extends",
        },
        Case {
            op: AluOp::Srlw,
            a: 0x8000_0000,
            b: 31,
            expect: 1,
            why: "srlw by 31",
        },
        Case {
            op: AluOp::Srlw,
            a: 0x8000_0000,
            b: 32,
            expect: I32_MIN_SX,
            why: "srlw by 32 == srlw by 0 (then sign-extend)",
        },
        Case {
            op: AluOp::Sraw,
            a: 0x8000_0000,
            b: 31,
            expect: NEG1,
            why: "sraw by 31 smears the 32-bit sign",
        },
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_table_matches_eval() {
        for case in conformance::TABLE {
            assert_eq!(
                case.op.eval(case.a, case.b),
                case.expect,
                "{:?}({:#x}, {:#x}): {}",
                case.op,
                case.a,
                case.b,
                case.why
            );
        }
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(AluOp::Add.eval(3, u64::MAX), 2);
        assert_eq!(AluOp::Sub.eval(3, 5), (-2i64) as u64);
        assert_eq!(AluOp::Slt.eval((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.eval((-1i64) as u64, 0), 0);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 2), (-2i64) as u64);
        assert_eq!(AluOp::Srl.eval(8, 2), 2);
    }

    #[test]
    fn word_ops_sign_extend() {
        assert_eq!(AluOp::Addw.eval(0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(AluOp::Subw.eval(0, 1), u64::MAX);
        assert_eq!(AluOp::Sraw.eval(0x8000_0000, 4), 0xffff_ffff_f800_0000);
    }

    #[test]
    fn riscv_division_by_zero_semantics() {
        assert_eq!(AluOp::Div.eval(42, 0), u64::MAX);
        assert_eq!(AluOp::Divu.eval(42, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(42, 0), 42);
        assert_eq!(AluOp::Remu.eval(42, 0), 42);
        assert_eq!(
            AluOp::Div.eval((i64::MIN) as u64, (-1i64) as u64),
            i64::MIN as u64
        );
    }

    #[test]
    fn fp_ops_roundtrip_through_bits() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(AluOp::Fadd.eval(a, b)), 3.75);
        assert_eq!(f64::from_bits(AluOp::Fmul.eval(a, b)), 3.375);
        assert_eq!(AluOp::Flt.eval(a, b), 1);
        assert_eq!(AluOp::Fle.eval(b, a), 0);
        assert_eq!(AluOp::Fcvtld.eval((-3.7f64).to_bits(), 0), (-3i64) as u64);
        assert_eq!(f64::from_bits(AluOp::Fcvtdl.eval((-3i64) as u64, 0)), -3.0);
    }

    #[test]
    fn fp_classification() {
        assert_eq!(AluOp::Fdiv.class(), OpClass::FpDiv);
        assert_eq!(AluOp::Fadd.class(), OpClass::Fp);
        assert_eq!(AluOp::Mul.class(), OpClass::IntMul);
        assert_eq!(AluOp::Div.class(), OpClass::IntDiv);
        assert_eq!(AluOp::Add.class(), OpClass::IntAlu);
        assert!(AluOp::Feq.is_fp());
        assert!(!AluOp::Xor.is_fp());
    }

    #[test]
    fn load_extension() {
        assert_eq!(LoadOp::Lb.extend(0x80), 0xffff_ffff_ffff_ff80);
        assert_eq!(LoadOp::Lbu.extend(0x80), 0x80);
        assert_eq!(LoadOp::Lw.extend(0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(LoadOp::Lwu.extend(0x8000_0000), 0x8000_0000);
        assert_eq!(LoadOp::Ld.size(), 8);
        assert_eq!(LoadOp::Lh.size(), 2);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Eq.eval(5, 5));
        assert!(BrCond::Ne.eval(5, 6));
        assert!(BrCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BrCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BrCond::Geu.eval((-1i64) as u64, 0));
        for c in [
            BrCond::Eq,
            BrCond::Ne,
            BrCond::Lt,
            BrCond::Ge,
            BrCond::Ltu,
            BrCond::Geu,
        ] {
            // negation is an involution and flips the outcome
            assert_eq!(c.negate().negate(), c);
            assert_ne!(c.eval(1, 2), c.negate().eval(1, 2));
        }
    }
}
