#![warn(missing_docs)]

//! # Clockhands — the rename-free ISA (MICRO 2023)
//!
//! This crate implements the paper's primary contribution: an instruction
//! set architecture whose register operands are specified as "the value
//! written to register group *h*, *k* writes ago". Because every group
//! (*hand*) is written in ring order, an out-of-order processor needs no
//! register renaming — four register pointers and a subtraction replace
//! the map table, free list, and dependency-check logic of conventional
//! RISC.
//!
//! ## Modules
//!
//! * [`hand`] — the four hands `t`, `u`, `v`, `s` and the ISA constants
//!   (H = 4 hands, D = 16 maximum reference distance).
//! * [`inst`] — the instruction set (an RV64G-subset with Clockhands
//!   operands, per Fig. 5 of the paper).
//! * [`encode`] — the 32-bit binary instruction format.
//! * [`asm`] — textual assembler / disassembler in the paper's syntax.
//! * [`program`] — program container and validation.
//! * [`state`] — the architectural hand file (logical shift registers).
//! * [`rp`] — the Register Pointer file: the microarchitectural
//!   allocation mechanism of Section 5.1, including the group prefix-sum
//!   allocation, the wrap-around stall rule, and the tiny recovery
//!   checkpoints of Table 1.
//! * [`interp`] — a functional interpreter that also emits dataflow-
//!   resolved dynamic traces for the timing simulator.
//!
//! ## Quick start
//!
//! ```
//! use clockhands::asm::assemble;
//! use clockhands::interp::Interpreter;
//!
//! // Sum 1..=10 with the loop bound kept in the v hand: the loop body
//! // writes only t, so the constant stays at v[0] forever — this is the
//! // property that lets Clockhands drop STRAIGHT's relay instructions.
//! let prog = assemble(
//!     "li v, 10
//!      li t, 0          # i
//!      li t, 0          # sum  (t[0]=sum, t[1]=i)
//!  .loop:
//!      addi t, t[1], 1  # i+1
//!      add  t, t[1], t[0]
//!      bne  t[1], v[0], .loop
//!      halt t[0]",
//! )?;
//! let mut cpu = Interpreter::new(prog)?;
//! assert_eq!(cpu.run(1_000)?.exit_value, 55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod asm;
pub mod encode;
pub mod hand;
pub mod inst;
pub mod interp;
pub mod program;
pub mod rp;
pub mod state;

pub use hand::{Hand, MAX_DISTANCE, NUM_HANDS};
pub use inst::{Inst, Src};
pub use interp::Interpreter;
pub use program::Program;
pub use rp::RingFile;
pub use state::HandFile;
