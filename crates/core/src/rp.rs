//! The Register Pointer (RP) file — the physical-register allocation
//! mechanism that replaces renaming (Section 5.1 of the paper).
//!
//! The physical register file has linear addresses but is statically
//! partitioned into one ring per hand. Each hand's RP records how many
//! writes that hand has received; the destination physical register of an
//! instruction is the slot its hand's RP points at, and a source
//! `hand[d]` resolves to `RP(hand) - 1 - d` (mod ring size) by simple
//! subtraction — no map table, no dependency-check logic.
//!
//! The same structure models STRAIGHT when constructed with a single ring
//! (`RingFile::new(&[128 + R], 127)`), which is how the baselines crate
//! reuses it.

/// A snapshot of the RPs, used for misprediction/exception recovery
/// (Section 5.2). Restoring it is the entire recovery of the allocation
/// stage — this is what makes the Table 1 checkpoint so small.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpSnapshot(Vec<u64>);

impl RpSnapshot {
    /// The write count recorded for ring `g`.
    pub fn writes(&self, g: usize) -> u64 {
        self.0[g]
    }
}

/// One fetch-group entry passed to [`RingFile::alloc_group`]:
/// `(dst_ring, sources)` where sources are `(ring, distance)` pairs.
pub type GroupRequest = (Option<usize>, Vec<(usize, u32)>);

/// Per-instruction allocation outcome produced by [`RingFile::alloc_group`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupAlloc {
    /// Physical destination register, if the instruction writes one.
    pub dst: Option<u32>,
    /// Physical source registers, in operand order.
    pub srcs: Vec<u32>,
}

/// A partitioned physical register file with one register pointer per ring.
///
/// # Examples
///
/// ```
/// use clockhands::rp::RingFile;
///
/// // Four hands with the paper's 8-fetch quotas (t, u, v, s).
/// let mut rp = RingFile::new(&[800, 176, 112, 64], 16);
/// let d0 = rp.alloc(0);            // first write to hand t
/// let d1 = rp.alloc(0);            // second write to hand t
/// assert_eq!(rp.src_phys(0, 0), d1); // t[0] resolves to the last write
/// assert_eq!(rp.src_phys(0, 1), d0); // t[1] to the one before
/// ```
#[derive(Debug, Clone)]
pub struct RingFile {
    quotas: Vec<u32>,
    bases: Vec<u32>,
    rps: Vec<u64>,
    max_dist: u32,
}

impl RingFile {
    /// Creates a ring file with the given per-ring quotas and maximum
    /// source reference distance.
    ///
    /// # Panics
    ///
    /// Panics if `quotas` is empty, any quota is not larger than
    /// `max_dist` (the ring could never satisfy the no-false-dependency
    /// rule), or `max_dist` is zero.
    pub fn new(quotas: &[u32], max_dist: u32) -> Self {
        assert!(!quotas.is_empty(), "at least one ring required");
        assert!(max_dist > 0, "max_dist must be positive");
        for &q in quotas {
            assert!(q > max_dist, "quota {q} must exceed max_dist {max_dist}");
        }
        let mut bases = Vec::with_capacity(quotas.len());
        let mut acc = 0u32;
        for &q in quotas {
            bases.push(acc);
            acc += q;
        }
        RingFile {
            quotas: quotas.to_vec(),
            bases,
            rps: vec![0; quotas.len()],
            max_dist,
        }
    }

    /// Number of rings (hands).
    pub fn rings(&self) -> usize {
        self.quotas.len()
    }

    /// Total physical registers across all rings.
    pub fn total_regs(&self) -> u32 {
        self.quotas.iter().sum()
    }

    /// The quota of ring `g`.
    pub fn quota(&self, g: usize) -> u32 {
        self.quotas[g]
    }

    /// Current write count of ring `g`.
    pub fn writes(&self, g: usize) -> u64 {
        self.rps[g]
    }

    fn phys_at(&self, g: usize, write_index: u64) -> u32 {
        self.bases[g] + (write_index % self.quotas[g] as u64) as u32
    }

    /// Physical register a new write to ring `g` would occupy.
    pub fn dest_phys(&self, g: usize) -> u32 {
        self.phys_at(g, self.rps[g])
    }

    /// Allocates the next register of ring `g`, returning its physical
    /// number and advancing the RP.
    pub fn alloc(&mut self, g: usize) -> u32 {
        let p = self.dest_phys(g);
        self.rps[g] += 1;
        p
    }

    /// Resolves source `g[dist]` to a physical register.
    ///
    /// # Panics
    ///
    /// Panics if `dist > max_dist` (an unencodable reference) or if the
    /// ring has not yet been written `dist + 1` times (a read of a value
    /// that never existed — emulators seed initial writes instead).
    pub fn src_phys(&self, g: usize, dist: u32) -> u32 {
        assert!(dist < self.max_dist, "distance {dist} unencodable");
        let w = self.rps[g];
        assert!(
            w > dist as u64,
            "ring {g} read before write (dist {dist}, writes {w})"
        );
        self.phys_at(g, w - 1 - dist as u64)
    }

    /// Whether a write to ring `g` may allocate without creating a false
    /// dependency, given the RP snapshot of the **oldest in-flight**
    /// instruction.
    ///
    /// The paper's rule: stall when a register within the maximum
    /// reference distance of the oldest in-flight RP is about to be
    /// reused. With `inflight = RP(g) - oldest(g)` allocations
    /// outstanding, the wrap overwrites a protected slot exactly when
    /// `inflight + max_dist >= quota`.
    pub fn can_alloc(&self, g: usize, oldest: &RpSnapshot) -> bool {
        let inflight = self.rps[g] - oldest.0[g];
        inflight + (self.max_dist as u64) < self.quotas[g] as u64
    }

    /// Captures the recovery checkpoint (all RPs).
    pub fn snapshot(&self) -> RpSnapshot {
        RpSnapshot(self.rps.clone())
    }

    /// Restores a checkpoint, rolling back every allocation made after it.
    pub fn restore(&mut self, snap: &RpSnapshot) {
        assert_eq!(snap.0.len(), self.rps.len(), "snapshot ring-count mismatch");
        self.rps.copy_from_slice(&snap.0);
    }

    /// Size of one checkpoint in bits: one physical-register-sized pointer
    /// per ring (Table 1: 4 × ~9 bits for Clockhands).
    pub fn checkpoint_bits(&self) -> u32 {
        let prbits = 32 - (self.total_regs() - 1).leading_zeros();
        self.rings() as u32 * prbits
    }

    /// Allocates a whole fetch group at once, the way the optimised
    /// RP-calculation stage does (Section 5.1): per-instruction physical
    /// numbers are derived from the group-start RPs plus a prefix count of
    /// preceding in-group writes to the same ring, then the RPs advance by
    /// the group totals. The result is identical to calling
    /// [`RingFile::alloc`]/[`RingFile::src_phys`] sequentially.
    ///
    /// Each element of `group` is `(dst_ring, sources)` where sources are
    /// `(ring, distance)` pairs.
    pub fn alloc_group(&mut self, group: &[GroupRequest]) -> Vec<GroupAlloc> {
        // Prefix counts P (the Brent–Kung tree computes these in O(log W)).
        let mut counts = vec![0u64; self.rings()];
        let mut out = Vec::with_capacity(group.len());
        for (dst, srcs) in group {
            let srcs_phys = srcs
                .iter()
                .map(|&(g, dist)| {
                    let w = self.rps[g] + counts[g];
                    assert!(w > dist as u64, "ring {g} read before write in group");
                    self.phys_at(g, w - 1 - dist as u64)
                })
                .collect();
            let dst_phys = dst.map(|g| {
                let p = self.phys_at(g, self.rps[g] + counts[g]);
                counts[g] += 1;
                p
            });
            out.push(GroupAlloc {
                dst: dst_phys,
                srcs: srcs_phys,
            });
        }
        for (g, c) in counts.iter().enumerate() {
            self.rps[g] += c;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RingFile {
        RingFile::new(&[48, 24, 24, 32], 16)
    }

    #[test]
    fn sequential_alloc_and_resolve() {
        let mut rp = small();
        let a = rp.alloc(0);
        let b = rp.alloc(0);
        let c = rp.alloc(1);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(c, 48); // ring 1 base
        assert_eq!(rp.src_phys(0, 0), b);
        assert_eq!(rp.src_phys(0, 1), a);
        assert_eq!(rp.src_phys(1, 0), c);
    }

    #[test]
    fn rings_are_disjoint() {
        let mut rp = small();
        let mut seen = std::collections::HashSet::new();
        for g in 0..4 {
            for _ in 0..rp.quota(g) {
                assert!(
                    seen.insert(rp.alloc(g)),
                    "physical register reused across rings"
                );
            }
        }
        assert_eq!(seen.len(), rp.total_regs() as usize);
    }

    #[test]
    fn wraparound_reuses_only_own_ring() {
        let mut rp = small();
        for _ in 0..48 {
            rp.alloc(0);
        }
        // 49th write to ring 0 wraps to its own base, not into ring 1.
        assert_eq!(rp.dest_phys(0), 0);
    }

    #[test]
    fn wrap_stall_rule() {
        let mut rp = small();
        let oldest = rp.snapshot(); // nothing committed yet
                                    // quota 48, max_dist 16: slots holding live values are the 16
                                    // behind the oldest in-flight RP plus the in-flight allocations,
                                    // so up to 32 in-flight allocations fit before a wrap would
                                    // overwrite a protected register.
        for i in 0..32 {
            assert!(rp.can_alloc(0, &oldest), "alloc {i} should be allowed");
            rp.alloc(0);
        }
        assert!(!rp.can_alloc(0, &oldest), "33rd in-flight alloc must stall");
        // Other rings are unaffected.
        assert!(rp.can_alloc(1, &oldest));
    }

    #[test]
    fn snapshot_restore_rolls_back() {
        let mut rp = small();
        rp.alloc(0);
        rp.alloc(3);
        let snap = rp.snapshot();
        let before = rp.dest_phys(0);
        rp.alloc(0);
        rp.alloc(0);
        rp.alloc(2);
        rp.restore(&snap);
        assert_eq!(rp.dest_phys(0), before);
        assert_eq!(rp.writes(2), 0);
    }

    #[test]
    fn group_alloc_matches_sequential() {
        let group: Vec<GroupRequest> = vec![
            (Some(0), vec![]),
            (Some(0), vec![(0, 0)]),
            (Some(1), vec![(0, 0), (0, 1)]),
            (None, vec![(1, 0), (0, 0)]),
            (Some(0), vec![(1, 0)]),
        ];
        let mut grp = small();
        let got = grp.alloc_group(&group);

        let mut seq = small();
        let mut want = Vec::new();
        for (dst, srcs) in &group {
            let srcs_phys: Vec<u32> = srcs.iter().map(|&(g, d)| seq.src_phys(g, d)).collect();
            let dst_phys = dst.map(|g| seq.alloc(g));
            want.push(GroupAlloc {
                dst: dst_phys,
                srcs: srcs_phys,
            });
        }
        assert_eq!(got, want);
        assert_eq!(grp.writes(0), seq.writes(0));
        assert_eq!(grp.writes(1), seq.writes(1));
    }

    #[test]
    fn straight_shape_single_ring() {
        let mut rp = RingFile::new(&[128 + 1024], 127);
        assert_eq!(rp.rings(), 1);
        for _ in 0..2000 {
            rp.alloc(0);
        }
        assert_eq!(rp.src_phys(0, 126), rp.phys_at_test(0, 2000 - 127));
        // Checkpoint is a single pointer (plus SP, modelled elsewhere).
        assert_eq!(rp.checkpoint_bits(), 11);
    }

    #[test]
    fn clockhands_checkpoint_bits_8f() {
        // 8-fetch quotas: 1152 total regs -> 11 bits × 4 rings = 44.
        let rp = RingFile::new(&[800, 176, 112, 64], 16);
        assert_eq!(rp.checkpoint_bits(), 44);
    }

    #[test]
    #[should_panic(expected = "quota")]
    fn quota_must_exceed_distance() {
        let _ = RingFile::new(&[16], 16);
    }

    #[test]
    #[should_panic(expected = "read before write")]
    fn read_before_write_panics() {
        let rp = small();
        let _ = rp.src_phys(0, 0);
    }

    impl RingFile {
        fn phys_at_test(&self, g: usize, w: u64) -> u32 {
            self.phys_at(g, w)
        }
    }
}
