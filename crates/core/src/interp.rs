//! Functional interpreter for Clockhands programs.
//!
//! Executes a validated [`Program`] against a [`HandFile`] and a sparse
//! [`Memory`], yielding one [`DynInst`] per committed instruction with the
//! register dataflow resolved to producer sequence numbers. The timing
//! simulator and the trace analyses consume that stream.

use crate::hand::Hand;
use crate::inst::{Inst, Src};
use crate::program::{Program, ProgramError};
use crate::state::{DistanceError, HandFile};
use ch_common::inst::{CtrlKind, DstTag, DynInst, NO_PRODUCER};
use ch_common::mem::Memory;

/// Default initial stack pointer (grows down; well clear of text/data).
pub const STACK_TOP: u64 = 0x8000_0000;

/// A runtime error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// A source reference exceeded the maximum distance.
    Distance(DistanceError),
    /// Execution ran past the end of the program without halting.
    PcOffEnd {
        /// The out-of-range instruction index.
        pc: u32,
    },
    /// The instruction limit was reached before the program halted.
    LimitReached,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::Distance(e) => write!(f, "{e}"),
            InterpError::PcOffEnd { pc } => write!(f, "execution ran off the end at index {pc}"),
            InterpError::LimitReached => f.write_str("instruction limit reached before halt"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<DistanceError> for InterpError {
    fn from(e: DistanceError) -> Self {
        InterpError::Distance(e)
    }
}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Value of the `halt` source operand.
    pub exit_value: u64,
    /// Number of instructions committed (the halt itself is not counted).
    pub committed: u64,
}

/// Functional Clockhands interpreter.
///
/// # Examples
///
/// ```
/// use clockhands::asm::assemble;
/// use clockhands::interp::Interpreter;
///
/// let prog = assemble(
///     "li t, 6
///      li t, 7
///      mul t, t[0], t[1]
///      halt t[0]",
/// )?;
/// let mut interp = Interpreter::new(prog)?;
/// let result = interp.run(1_000)?;
/// assert_eq!(result.exit_value, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    prog: Program,
    file: HandFile,
    mem: Memory,
    pc: u32,
    seq: u64,
    halted: Option<u64>,
    error: Option<InterpError>,
}

impl Interpreter {
    /// Creates an interpreter, validating the program and loading its data
    /// image. The stack pointer is seeded into the `s` hand so `s[0]`
    /// reads [`STACK_TOP`] at entry, per the calling convention.
    ///
    /// # Errors
    ///
    /// Returns the program's validation error, if any.
    pub fn new(prog: Program) -> Result<Self, ProgramError> {
        prog.validate()?;
        let mut mem = Memory::new();
        for (base, bytes) in &prog.data {
            mem.write_bytes(*base, bytes);
        }
        let mut file = HandFile::new();
        file.write(Hand::S, STACK_TOP, NO_PRODUCER);
        let pc = prog.entry;
        Ok(Interpreter {
            prog,
            file,
            mem,
            pc,
            seq: 0,
            halted: None,
            error: None,
        })
    }

    /// Seeds an architectural write (e.g. an argument) without emitting a
    /// trace record. The producer is recorded as "pre-existing".
    pub fn seed_write(&mut self, hand: Hand, value: u64) {
        self.file.write(hand, value, NO_PRODUCER);
    }

    /// Shared memory view.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// The architectural hand file (for inspection and debugging).
    pub fn hands(&self) -> &HandFile {
        &self.file
    }

    /// Mutable memory view (for preloading inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Exit value, once the program has halted.
    pub fn exit_value(&self) -> Option<u64> {
        self.halted
    }

    /// The error that stopped the iterator stream, if any.
    pub fn error(&self) -> Option<&InterpError> {
        self.error.as_ref()
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    fn read(&self, src: Src) -> Result<u64, DistanceError> {
        match src {
            Src::Hand(h, d) => self.file.read(h, d),
            Src::Zero => Ok(0),
        }
    }

    fn producer_of(&self, src: Src) -> Result<u64, DistanceError> {
        match src {
            Src::Hand(h, d) => self.file.producer(h, d),
            Src::Zero => Ok(NO_PRODUCER),
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(Some(rec))` for a committed instruction, `Ok(None)`
    /// once halted (the `halt` itself emits no record).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] on a distance violation or if control runs
    /// off the end of the program.
    pub fn step(&mut self) -> Result<Option<DynInst>, InterpError> {
        if self.halted.is_some() {
            return Ok(None);
        }
        if self.pc as usize >= self.prog.len() {
            return Err(InterpError::PcOffEnd { pc: self.pc });
        }
        let inst = self.prog.insts[self.pc as usize];
        let seq = self.seq;
        let pc_val = self.prog.pc_of(self.pc);
        let mut rec = DynInst::new(seq, pc_val, inst.class());

        // Resolve dataflow producers before any write of this instruction.
        let srcs = inst.srcs();
        let mut producers = [NO_PRODUCER; 2];
        for (i, s) in srcs.iter().take(2).enumerate() {
            producers[i] = self.producer_of(*s)?;
        }
        rec.srcs = producers;

        let mut next_pc = self.pc + 1;
        match inst {
            Inst::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let v = op.eval(self.read(src1)?, self.read(src2)?);
                self.file.write(dst, v, seq);
                rec.dst = Some(DstTag::Hand(dst.index() as u8));
            }
            Inst::AluImm { op, dst, src1, imm } => {
                let v = op.eval(self.read(src1)?, imm as i64 as u64);
                self.file.write(dst, v, seq);
                rec.dst = Some(DstTag::Hand(dst.index() as u8));
            }
            Inst::Li { dst, imm } => {
                self.file.write(dst, imm as u64, seq);
                rec.dst = Some(DstTag::Hand(dst.index() as u8));
            }
            Inst::Load {
                op,
                dst,
                base,
                offset,
            } => {
                let addr = self.read(base)?.wrapping_add(offset as i64 as u64);
                let v = op.extend(self.mem.read(addr, op.size()));
                self.file.write(dst, v, seq);
                rec.dst = Some(DstTag::Hand(dst.index() as u8));
                rec = rec.with_mem(addr, op.size());
            }
            Inst::Store {
                op,
                value,
                base,
                offset,
            } => {
                let addr = self.read(base)?.wrapping_add(offset as i64 as u64);
                let v = self.read(value)?;
                self.mem.write(addr, op.size(), v);
                rec = rec.with_mem(addr, op.size());
            }
            Inst::Branch {
                cond,
                src1,
                src2,
                target,
            } => {
                let taken = cond.eval(self.read(src1)?, self.read(src2)?);
                if taken {
                    next_pc = target;
                }
                rec = rec.with_ctrl(CtrlKind::Cond, taken, self.prog.pc_of(target));
            }
            Inst::Jump { target } => {
                next_pc = target;
                rec = rec.with_ctrl(CtrlKind::Jump, true, self.prog.pc_of(target));
            }
            Inst::Call { dst, target } => {
                let ret = self.prog.pc_of(self.pc + 1);
                self.file.write(dst, ret, seq);
                rec.dst = Some(DstTag::Hand(dst.index() as u8));
                next_pc = target;
                rec = rec.with_ctrl(CtrlKind::Call, true, self.prog.pc_of(target));
            }
            Inst::CallReg { dst, src } => {
                let ret = self.prog.pc_of(self.pc + 1);
                let target_pc = self.read(src)?;
                self.file.write(dst, ret, seq);
                rec.dst = Some(DstTag::Hand(dst.index() as u8));
                next_pc = self.index_of_pc(target_pc)?;
                rec = rec.with_ctrl(CtrlKind::Call, true, target_pc);
            }
            Inst::JumpReg { src } => {
                let target_pc = self.read(src)?;
                next_pc = self.index_of_pc(target_pc)?;
                rec = rec.with_ctrl(CtrlKind::Ret, true, target_pc);
            }
            Inst::Mv { dst, src } => {
                let v = self.read(src)?;
                self.file.write(dst, v, seq);
                rec.dst = Some(DstTag::Hand(dst.index() as u8));
            }
            Inst::Nop => {}
            Inst::Halt { src } => {
                self.halted = Some(self.read(src)?);
                return Ok(None);
            }
        }
        self.pc = next_pc;
        self.seq += 1;
        Ok(Some(rec))
    }

    fn index_of_pc(&self, pc_val: u64) -> Result<u32, InterpError> {
        let base = self.prog.pc_of(0);
        if pc_val < base || !(pc_val - base).is_multiple_of(4) {
            return Err(InterpError::PcOffEnd { pc: u32::MAX });
        }
        let idx = ((pc_val - base) / 4) as u32;
        if idx as usize >= self.prog.len() {
            return Err(InterpError::PcOffEnd { pc: idx });
        }
        Ok(idx)
    }

    /// Runs to completion (at most `limit` instructions), discarding the
    /// trace records.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::LimitReached`] if the program does not halt
    /// within `limit` instructions, or any error [`Interpreter::step`]
    /// raises.
    pub fn run(&mut self, limit: u64) -> Result<RunResult, InterpError> {
        for _ in 0..limit {
            if self.step()?.is_none() {
                break;
            }
        }
        // Uniform limit-boundary rule across all three ISA interpreters:
        // once the step budget is spent, the outcome depends only on
        // whether the machine has halted — not on which loop exit we took.
        match self.halted {
            Some(exit_value) => Ok(RunResult {
                exit_value,
                committed: self.seq,
            }),
            None => Err(InterpError::LimitReached),
        }
    }

    /// Runs to completion, collecting the full trace.
    ///
    /// # Errors
    ///
    /// As for [`Interpreter::run`].
    pub fn trace(&mut self, limit: u64) -> Result<(Vec<DynInst>, RunResult), InterpError> {
        let mut out = Vec::new();
        for _ in 0..limit {
            match self.step()? {
                Some(rec) => out.push(rec),
                None => break,
            }
        }
        match self.halted {
            Some(exit_value) => Ok((
                out,
                RunResult {
                    exit_value,
                    committed: self.seq,
                },
            )),
            None => Err(InterpError::LimitReached),
        }
    }
}

/// Streaming adapter: yields records until the program halts, errs, or the
/// limit is hit; errors are stashed on the interpreter
/// ([`Interpreter::error`]) for the caller to check afterwards.
impl Iterator for Interpreter {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        match self.step() {
            Ok(opt) => opt,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

// Experiment drivers run interpreters on worker threads (compile-time audit).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Interpreter>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use ch_common::op::OpClass;

    fn run_src(src: &str) -> RunResult {
        let prog = assemble(src).expect("assembles");
        Interpreter::new(prog)
            .expect("valid")
            .run(1_000_000)
            .expect("runs")
    }

    #[test]
    fn limit_boundary_is_uniform() {
        // Regression (cross-ISA fuzz finding): exhausting the step budget
        // on an already-halted machine must report Ok, and a fresh
        // zero-budget run must report LimitReached — the same rule the
        // STRAIGHT and RISC-V interpreters follow.
        let prog = assemble("li t, 7\nhalt t[0]").expect("assembles");
        let mut it = Interpreter::new(prog.clone()).expect("valid");
        assert!(matches!(it.run(0), Err(InterpError::LimitReached)));
        assert_eq!(it.run(100).expect("halts").exit_value, 7);
        // Re-running a halted machine, even with a zero budget, stays Ok.
        assert_eq!(it.run(0).expect("still halted").exit_value, 7);
        let mut it = Interpreter::new(prog).expect("valid");
        assert!(matches!(it.trace(1), Err(InterpError::LimitReached)));
        // Resuming after the budget ran out only replays what's left —
        // here just the (record-free) halt step.
        let (rest, res) = it.trace(100).expect("halts");
        assert_eq!(res.exit_value, 7);
        assert!(rest.is_empty());
    }

    #[test]
    fn paper_fig6_loop() {
        // The loop of Fig. 6: store 42 into p[0..10], counting iterations.
        let r = run_src(
            "li t, 4096       # p
             li t, 0          # i
             li v, 10         # N (loop constant, v hand)
             li v, 42         # value 42 (loop constant)
             mv u, t[1]       # running p in u
             j .entry
         .loop:
             sw v[0], 0(u[0])
             addi u, u[0], 4
             addi t, t[0], 1
         .entry:
             bne t[0], v[1], .loop
             halt t[0]",
        );
        assert_eq!(r.exit_value, 10);
    }

    #[test]
    fn loop_constant_stays_reachable() {
        // v is written once before the loop; hundreds of t writes later it
        // is still v[0] — the distance does not change (Section 3.3).
        let r = run_src(
            "li v, 7
             li t, 0
             li t, 0          # i
         .loop:
             addi t, t[0], 1
             blt t[0], v[0], .loop
             halt t[0]",
        );
        assert_eq!(r.exit_value, 7);
    }

    #[test]
    fn memory_roundtrip_and_exit() {
        let r = run_src(
            "li t, 8192
             li t, 12345
             sd t[0], 8(t[1])
             ld u, 8(t[1])
             halt u[0]",
        );
        assert_eq!(r.exit_value, 12345);
    }

    #[test]
    fn call_and_return_convention() {
        // Compute f(5) where f doubles its argument. Args via s hand:
        // caller writes arg then calls (s[0]=ret addr, s[1]=arg inside f).
        // This leaf function allocates no frame, so it skips the SP
        // restore and the return value sits at s[0] after the return.
        let r = run_src(
            "li s, 5          # first argument
             call s, .f
             halt s[0]        # return value
         .f:
             add t, s[1], s[1]
             mv s, t[0]       # return value written to s
             jr s[1]          # s[1] is now the return address
            ",
        );
        assert_eq!(r.exit_value, 10);
    }

    #[test]
    fn dataflow_producers_resolved() {
        let prog = assemble(
            "li t, 1
             li t, 2
             add t, t[0], t[1]
             halt t[0]",
        )
        .unwrap();
        let (trace, _) = Interpreter::new(prog).unwrap().trace(100).unwrap();
        assert_eq!(trace.len(), 3);
        let add = &trace[2];
        assert_eq!(add.class, OpClass::IntAlu);
        assert_eq!(add.srcs, [1, 0]); // t[0] made by seq 1, t[1] by seq 0
    }

    #[test]
    fn sp_is_seeded() {
        let r = run_src("halt s[0]");
        assert_eq!(r.exit_value, STACK_TOP);
    }

    #[test]
    fn limit_reached_reported() {
        let prog = assemble(".spin: j .spin").unwrap();
        let err = Interpreter::new(prog).unwrap().run(100).unwrap_err();
        assert_eq!(err, InterpError::LimitReached);
    }

    #[test]
    fn running_off_the_end_is_an_error() {
        let prog = assemble("li t, 1").unwrap();
        let err = Interpreter::new(prog).unwrap().run(10).unwrap_err();
        assert!(matches!(err, InterpError::PcOffEnd { .. }));
    }

    #[test]
    fn iterator_streams_until_halt() {
        let prog = assemble(
            "li t, 1
             li t, 2
             add t, t[0], t[1]
             halt t[0]",
        )
        .unwrap();
        let mut it = Interpreter::new(prog).unwrap();
        let n = it.by_ref().count();
        assert_eq!(n, 3);
        assert!(it.error().is_none());
        assert_eq!(it.exit_value(), Some(3));
    }
}
