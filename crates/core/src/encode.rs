//! 32-bit binary instruction encoding.
//!
//! Fig. 5 of the paper keeps `opcode`/`funct` identical to RISC-V and
//! replaces the three 5-bit register fields with hand/distance fields:
//! a 2-bit destination hand and two 6-bit sources (2-bit hand + 4-bit
//! distance), 14 operand bits in total against RISC's 15.
//!
//! Concrete layout used here (low bit first):
//!
//! ```text
//! [6:0]   opcode        [8:7]  dst-hand     [11:9] funct3
//! [17:12] src1 (hand<<4 | dist)
//! [23:18] src2 (hand<<4 | dist)            R-type: [31:24] funct8
//! I-type (no src2):       [31:18] imm14 (signed)
//! S/B-type (no dst-hand): [31:24]++[8:7] imm10 (signed)
//! J-type (call):          [31:9]  imm23 (signed, instruction words)
//! ```
//!
//! The `zero` register is encoded as `s[15]` (`0b11_1111`), which is why
//! the `s` hand has only 15 addressable registers (Section 4.5).

use crate::hand::Hand;
use crate::inst::{Inst, Src};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};

/// Major opcodes (7 bits), loosely mirroring RV64G groupings.
mod opc {
    pub const ALU: u32 = 0b011_0011; // R-type integer / FP (funct8 selects)
    pub const ALU_IMM: u32 = 0b001_0011;
    pub const LOAD: u32 = 0b000_0011;
    pub const STORE: u32 = 0b010_0011;
    pub const BRANCH: u32 = 0b110_0011;
    pub const JAL: u32 = 0b110_1111;
    pub const JALR: u32 = 0b110_0111;
    pub const LI: u32 = 0b011_0111;
    pub const SYS: u32 = 0b111_0011; // nop / halt / jr / mv
}

/// An encoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate does not fit its field.
    ImmRange {
        /// The value that did not fit.
        value: i64,
        /// Field width in bits.
        bits: u32,
    },
    /// A source distance is not encodable in 6 bits.
    BadSrc,
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::ImmRange { value, bits } => {
                write!(f, "immediate {value} does not fit in {bits} bits")
            }
            EncodeError::BadSrc => f.write_str("source distance not encodable"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// A decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn src_bits(src: Src) -> Result<u32, EncodeError> {
    match src {
        Src::Zero => Ok(0b11_1111),
        Src::Hand(h, d) => {
            if !src.is_encodable() {
                return Err(EncodeError::BadSrc);
            }
            Ok(((h.index() as u32) << 4) | d as u32)
        }
    }
}

fn src_from_bits(b: u32) -> Src {
    if b == 0b11_1111 {
        Src::Zero
    } else {
        Src::Hand(Hand::from_index((b >> 4) as usize), (b & 0xf) as u8)
    }
}

fn check_imm(value: i64, bits: u32) -> Result<u32, EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmRange { value, bits });
    }
    Ok((value as u64 as u32) & ((1u32 << bits) - 1))
}

fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn alu_funct(op: AluOp) -> (u32, u32) {
    // (funct3, funct8) — dense table; funct8 distinguishes FP/M ops.
    use AluOp::*;
    let idx = match op {
        Add => 0,
        Sub => 1,
        Sll => 2,
        Slt => 3,
        Sltu => 4,
        Xor => 5,
        Srl => 6,
        Sra => 7,
        Or => 8,
        And => 9,
        Addw => 10,
        Subw => 11,
        Sllw => 12,
        Srlw => 13,
        Sraw => 14,
        Mul => 15,
        Div => 16,
        Divu => 17,
        Rem => 18,
        Remu => 19,
        Mulw => 20,
        Divw => 21,
        Remw => 22,
        Fadd => 23,
        Fsub => 24,
        Fmul => 25,
        Fdiv => 26,
        Fmin => 27,
        Fmax => 28,
        Feq => 29,
        Flt => 30,
        Fle => 31,
        Fcvtdl => 32,
        Fcvtld => 33,
        Fmvdx => 34,
    };
    (idx & 7, idx >> 3)
}

fn alu_from_funct(funct3: u32, funct8: u32) -> Option<AluOp> {
    use AluOp::*;
    const TABLE: [AluOp; 35] = [
        Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And, Addw, Subw, Sllw, Srlw, Sraw, Mul, Div,
        Divu, Rem, Remu, Mulw, Divw, Remw, Fadd, Fsub, Fmul, Fdiv, Fmin, Fmax, Feq, Flt, Fle,
        Fcvtdl, Fcvtld, Fmvdx,
    ];
    TABLE.get(((funct8 << 3) | funct3) as usize).copied()
}

fn load_funct(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb => 0,
        LoadOp::Lh => 1,
        LoadOp::Lw => 2,
        LoadOp::Ld => 3,
        LoadOp::Lbu => 4,
        LoadOp::Lhu => 5,
        LoadOp::Lwu => 6,
    }
}

fn load_from_funct(f: u32) -> Option<LoadOp> {
    Some(match f {
        0 => LoadOp::Lb,
        1 => LoadOp::Lh,
        2 => LoadOp::Lw,
        3 => LoadOp::Ld,
        4 => LoadOp::Lbu,
        5 => LoadOp::Lhu,
        6 => LoadOp::Lwu,
        _ => return None,
    })
}

fn store_funct(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 0,
        StoreOp::Sh => 1,
        StoreOp::Sw => 2,
        StoreOp::Sd => 3,
    }
}

fn store_from_funct(f: u32) -> Option<StoreOp> {
    Some(match f {
        0 => StoreOp::Sb,
        1 => StoreOp::Sh,
        2 => StoreOp::Sw,
        3 => StoreOp::Sd,
        _ => return None,
    })
}

fn br_funct(c: BrCond) -> u32 {
    match c {
        BrCond::Eq => 0,
        BrCond::Ne => 1,
        BrCond::Lt => 2,
        BrCond::Ge => 3,
        BrCond::Ltu => 4,
        BrCond::Geu => 5,
    }
}

fn br_from_funct(f: u32) -> Option<BrCond> {
    Some(match f {
        0 => BrCond::Eq,
        1 => BrCond::Ne,
        2 => BrCond::Lt,
        3 => BrCond::Ge,
        4 => BrCond::Ltu,
        5 => BrCond::Geu,
        _ => return None,
    })
}

/// Encodes one instruction located at instruction index `at` (branch and
/// call targets are encoded PC-relative in instruction words).
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate or branch displacement does
/// not fit its field, or a source distance is unencodable.
pub fn encode(inst: &Inst, at: u32) -> Result<u32, EncodeError> {
    let r = |h: Hand| (h.index() as u32) << 7;
    Ok(match *inst {
        Inst::Alu {
            op,
            dst,
            src1,
            src2,
        } => {
            let (f3, f8) = alu_funct(op);
            opc::ALU
                | r(dst)
                | (f3 << 9)
                | (src_bits(src1)? << 12)
                | (src_bits(src2)? << 18)
                | (f8 << 24)
        }
        Inst::AluImm { op, dst, src1, imm } => {
            let (f3, f8) = alu_funct(op);
            debug_assert_eq!(f8, 0, "imm form only exists for base ALU ops");
            opc::ALU_IMM
                | r(dst)
                | (f3 << 9)
                | (src_bits(src1)? << 12)
                | (check_imm(imm as i64, 14)? << 18)
        }
        Inst::Li { dst, imm } => opc::LI | r(dst) | (check_imm(imm, 23)? << 9),
        Inst::Load {
            op,
            dst,
            base,
            offset,
        } => {
            opc::LOAD
                | r(dst)
                | (load_funct(op) << 9)
                | (src_bits(base)? << 12)
                | (check_imm(offset as i64, 14)? << 18)
        }
        Inst::Store {
            op,
            value,
            base,
            offset,
        } => {
            let imm = check_imm(offset as i64, 10)?;
            opc::STORE
                | ((imm & 3) << 7)
                | (store_funct(op) << 9)
                | (src_bits(base)? << 12)
                | (src_bits(value)? << 18)
                | ((imm >> 2) << 24)
        }
        Inst::Branch {
            cond,
            src1,
            src2,
            target,
        } => {
            let disp = target as i64 - at as i64;
            let imm = check_imm(disp, 10)?;
            opc::BRANCH
                | ((imm & 3) << 7)
                | (br_funct(cond) << 9)
                | (src_bits(src1)? << 12)
                | (src_bits(src2)? << 18)
                | ((imm >> 2) << 24)
        }
        Inst::Jump { target } => {
            // Bit 31 = 0 marks a plain jump; the displacement gets 22 bits.
            let disp = target as i64 - at as i64;
            opc::JAL | (0b11 << 7) | (check_imm(disp, 22)? << 9)
        }
        Inst::Call { dst, target } => {
            // Bit 31 = 1 marks a call (JAL with a dst-hand).
            let disp = target as i64 - at as i64;
            opc::JAL | r(dst) | (check_imm(disp, 22)? << 9) | (1 << 31)
        }
        // Subop field (bits 9..) is 0 for CallReg and Mv.
        Inst::CallReg { dst, src } => opc::JALR | r(dst) | (src_bits(src)? << 12),
        Inst::JumpReg { src } => opc::JALR | (1 << 9) | (src_bits(src)? << 12),
        Inst::Mv { dst, src } => opc::SYS | r(dst) | (src_bits(src)? << 12),
        Inst::Nop => opc::SYS | (1 << 9),
        Inst::Halt { src } => opc::SYS | (2 << 9) | (src_bits(src)? << 12),
    })
}

/// Decodes one instruction word located at instruction index `at`.
///
/// # Errors
///
/// Returns [`DecodeError`] for unknown opcodes or funct values.
pub fn decode(word: u32, at: u32) -> Result<Inst, DecodeError> {
    let opcode = word & 0x7f;
    let dst = Hand::from_index(((word >> 7) & 3) as usize);
    let f3 = (word >> 9) & 7;
    let src1 = src_from_bits((word >> 12) & 0x3f);
    let src2 = src_from_bits((word >> 18) & 0x3f);
    let bad = || DecodeError { word };
    Ok(match opcode {
        opc::ALU => {
            let op = alu_from_funct(f3, (word >> 24) & 0xff).ok_or_else(bad)?;
            Inst::Alu {
                op,
                dst,
                src1,
                src2,
            }
        }
        opc::ALU_IMM => {
            let op = alu_from_funct(f3, 0).ok_or_else(bad)?;
            Inst::AluImm {
                op,
                dst,
                src1,
                imm: sext(word >> 18, 14),
            }
        }
        opc::LI => Inst::Li {
            dst,
            imm: sext((word >> 9) & 0x7f_ffff, 23) as i64,
        },
        opc::LOAD => {
            let op = load_from_funct(f3).ok_or_else(bad)?;
            Inst::Load {
                op,
                dst,
                base: src1,
                offset: sext(word >> 18, 14),
            }
        }
        opc::STORE => {
            let op = store_from_funct(f3).ok_or_else(bad)?;
            let imm = ((word >> 24) << 2) | ((word >> 7) & 3);
            Inst::Store {
                op,
                value: src2,
                base: src1,
                offset: sext(imm, 10),
            }
        }
        opc::BRANCH => {
            let cond = br_from_funct(f3).ok_or_else(bad)?;
            let imm = ((word >> 24) << 2) | ((word >> 7) & 3);
            let target = (at as i64 + sext(imm, 10) as i64) as u32;
            Inst::Branch {
                cond,
                src1,
                src2,
                target,
            }
        }
        opc::JAL => {
            let disp = sext((word >> 9) & 0x3f_ffff, 22);
            if word >> 31 == 1 {
                Inst::Call {
                    dst,
                    target: (at as i64 + disp as i64) as u32,
                }
            } else {
                Inst::Jump {
                    target: (at as i64 + disp as i64) as u32,
                }
            }
        }
        opc::JALR => match f3 {
            0 => Inst::CallReg { dst, src: src1 },
            1 => Inst::JumpReg { src: src1 },
            _ => return Err(bad()),
        },
        opc::SYS => match f3 {
            0 => Inst::Mv { dst, src: src1 },
            1 => Inst::Nop,
            2 => Inst::Halt { src: src1 },
            _ => return Err(bad()),
        },
        _ => return Err(bad()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst, at: u32) {
        let w = encode(&inst, at).expect("encodes");
        let back = decode(w, at).expect("decodes");
        assert_eq!(inst, back, "word {w:#010x}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let t0 = Src::Hand(Hand::T, 0);
        let v3 = Src::Hand(Hand::V, 3);
        roundtrip(
            Inst::Alu {
                op: AluOp::Add,
                dst: Hand::T,
                src1: t0,
                src2: v3,
            },
            10,
        );
        roundtrip(
            Inst::Alu {
                op: AluOp::Fdiv,
                dst: Hand::U,
                src1: v3,
                src2: t0,
            },
            10,
        );
        roundtrip(
            Inst::AluImm {
                op: AluOp::Add,
                dst: Hand::T,
                src1: t0,
                imm: -1024,
            },
            0,
        );
        roundtrip(
            Inst::Li {
                dst: Hand::V,
                imm: -40000,
            },
            0,
        );
        roundtrip(
            Inst::Load {
                op: LoadOp::Lwu,
                dst: Hand::T,
                base: v3,
                offset: 8000,
            },
            0,
        );
        roundtrip(
            Inst::Store {
                op: StoreOp::Sd,
                value: t0,
                base: Src::Hand(Hand::S, 2),
                offset: -256,
            },
            0,
        );
        roundtrip(
            Inst::Branch {
                cond: BrCond::Geu,
                src1: t0,
                src2: Src::Zero,
                target: 8,
            },
            100,
        );
        roundtrip(Inst::Jump { target: 400 }, 100);
        roundtrip(
            Inst::Call {
                dst: Hand::S,
                target: 2,
            },
            5000,
        );
        roundtrip(
            Inst::CallReg {
                dst: Hand::S,
                src: t0,
            },
            0,
        );
        roundtrip(
            Inst::JumpReg {
                src: Src::Hand(Hand::S, 0),
            },
            0,
        );
        roundtrip(
            Inst::Mv {
                dst: Hand::U,
                src: Src::Hand(Hand::T, 15),
            },
            0,
        );
        roundtrip(Inst::Nop, 0);
        roundtrip(Inst::Halt { src: Src::Zero }, 0);
    }

    #[test]
    fn zero_register_is_s15_encoding() {
        let w = encode(
            &Inst::Mv {
                dst: Hand::T,
                src: Src::Zero,
            },
            0,
        )
        .unwrap();
        assert_eq!((w >> 12) & 0x3f, 0b11_1111);
        // And s[15] itself is rejected.
        let bad = Inst::Mv {
            dst: Hand::T,
            src: Src::Hand(Hand::S, 15),
        };
        assert_eq!(encode(&bad, 0), Err(EncodeError::BadSrc));
    }

    #[test]
    fn distance_boundary_at_exactly_sixteen() {
        // d = 15 is the last encodable distance for t/u/v and must survive
        // the 4-bit field round-trip untruncated (a &0xf bug would fold
        // d = 16 onto d = 0 silently; BadSrc is the required behaviour).
        for h in [Hand::T, Hand::U, Hand::V] {
            roundtrip(
                Inst::Mv {
                    dst: Hand::T,
                    src: Src::Hand(h, 15),
                },
                0,
            );
        }
        roundtrip(
            Inst::Mv {
                dst: Hand::T,
                src: Src::Hand(Hand::S, 14),
            },
            0,
        );
        // Exactly MAX_DISTANCE is out of range on every hand.
        for h in [Hand::T, Hand::U, Hand::V, Hand::S] {
            let bad = Inst::Mv {
                dst: Hand::T,
                src: Src::Hand(h, 16),
            };
            assert_eq!(encode(&bad, 0), Err(EncodeError::BadSrc), "{h:?}[16]");
        }
    }

    #[test]
    fn imm_range_enforced() {
        let too_big = Inst::AluImm {
            op: AluOp::Add,
            dst: Hand::T,
            src1: Src::Zero,
            imm: 1 << 14,
        };
        assert!(matches!(
            encode(&too_big, 0),
            Err(EncodeError::ImmRange { bits: 14, .. })
        ));
        let far = Inst::Branch {
            cond: BrCond::Eq,
            src1: Src::Zero,
            src2: Src::Zero,
            target: 100_000,
        };
        assert!(matches!(
            encode(&far, 0),
            Err(EncodeError::ImmRange { bits: 10, .. })
        ));
    }

    #[test]
    fn unknown_opcode_fails_to_decode() {
        assert!(decode(0x7f, 0).is_err());
    }

    #[test]
    fn operand_fields_total_14_bits() {
        // dst 2 + src1 6 + src2 6 = 14 < RISC's 15 (Section 4.1).
        assert_eq!(2 + 6 + 6, 14);
    }
}
