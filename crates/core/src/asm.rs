//! Textual assembler and disassembler for Clockhands.
//!
//! The syntax follows the paper's listings (Fig. 1(d), Fig. 6):
//!
//! ```text
//! .loop:
//!     sw    v[0], 0(t[1])
//!     addi  t, t[1], 4
//!     addi  t, t[1], 1
//!     bne   t[0], v[1], .loop
//! ```
//!
//! Destinations are hand names (`t`, `u`, `v`, `s`); sources are
//! `hand[distance]` or `zero`; `#` starts a comment; labels end with `:`.
//! A `.data <addr> <u64>...` directive seeds the initial memory image.

use crate::hand::{Hand, MAX_DISTANCE};
use crate::inst::{Inst, Src};
use crate::program::Program;
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use std::collections::BTreeMap;

pub use ch_common::error::AsmError;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError::new(line, message))
}

fn parse_src(tok: &str, line: usize) -> Result<Src, AsmError> {
    if tok == "zero" {
        return Ok(Src::Zero);
    }
    let (hand, rest) = tok.split_at(1);
    let hand = match Hand::parse(hand) {
        Some(h) => h,
        None => return err(line, format!("unknown source operand `{tok}`")),
    };
    let rest = rest.trim();
    if !rest.starts_with('[') || !rest.ends_with(']') {
        return err(
            line,
            format!("source `{tok}` must look like {hand}[k] or zero"),
        );
    }
    let d: u8 = match rest[1..rest.len() - 1].parse() {
        Ok(d) => d,
        Err(_) => return err(line, format!("bad distance in `{tok}`")),
    };
    // Reject unencodable distances here instead of at encode/run time:
    // a hand reaches back at most `Hand::max_src_distance` values, and
    // s[15] is the encoding reserved for the zero register (write `zero`
    // instead).
    if d > hand.max_src_distance() {
        if hand == Hand::S && d == MAX_DISTANCE - 1 {
            return err(
                line,
                format!("`{tok}` is the reserved zero-register encoding; write `zero`"),
            );
        }
        return err(
            line,
            format!(
                "distance {d} in `{tok}` out of range (max {})",
                hand.max_src_distance()
            ),
        );
    }
    Ok(Src::Hand(hand, d))
}

fn parse_dst(tok: &str, line: usize) -> Result<Hand, AsmError> {
    match Hand::parse(tok) {
        Some(h) => Ok(h),
        None => err(line, format!("unknown destination hand `{tok}`")),
    }
}

fn parse_imm<T: TryFrom<i64>>(tok: &str, line: usize) -> Result<T, AsmError> {
    let v = if let Some(hex) = tok.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| ())
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v).map_err(|_| ())
    } else {
        tok.parse::<i64>().map_err(|_| ())
    };
    match v.ok().and_then(|v| T::try_from(v).ok()) {
        Some(v) => Ok(v),
        None => err(line, format!("bad immediate `{tok}`")),
    }
}

/// Splits `off(base)` into (offset, base src).
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i32, Src), AsmError> {
    let open = match tok.find('(') {
        Some(i) => i,
        None => return err(line, format!("expected off(base), got `{tok}`")),
    };
    if !tok.ends_with(')') {
        return err(line, format!("expected off(base), got `{tok}`"));
    }
    let off: i32 = if tok[..open].is_empty() {
        0
    } else {
        parse_imm(&tok[..open], line)?
    };
    let base = parse_src(&tok[open + 1..tok.len() - 1], line)?;
    Ok((off, base))
}

fn alu_op(m: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match m {
        "add" => Add,
        "sub" => Sub,
        "sll" => Sll,
        "slt" => Slt,
        "sltu" => Sltu,
        "xor" => Xor,
        "srl" => Srl,
        "sra" => Sra,
        "or" => Or,
        "and" => And,
        "addw" => Addw,
        "subw" => Subw,
        "sllw" => Sllw,
        "srlw" => Srlw,
        "sraw" => Sraw,
        "mul" => Mul,
        "div" => Div,
        "divu" => Divu,
        "rem" => Rem,
        "remu" => Remu,
        "mulw" => Mulw,
        "divw" => Divw,
        "remw" => Remw,
        "fadd" => Fadd,
        "fsub" => Fsub,
        "fmul" => Fmul,
        "fdiv" => Fdiv,
        "fmin" => Fmin,
        "fmax" => Fmax,
        "feq" => Feq,
        "flt" => Flt,
        "fle" => Fle,
        "fcvt.d.l" => Fcvtdl,
        "fcvt.l.d" => Fcvtld,
        "fmv.d.x" => Fmvdx,
        _ => return None,
    })
}

fn alu_imm_op(m: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match m {
        "addi" => Add,
        "slti" => Slt,
        "sltiu" => Sltu,
        "xori" => Xor,
        "ori" => Or,
        "andi" => And,
        "slli" => Sll,
        "srli" => Srl,
        "srai" => Sra,
        "addiw" => Addw,
        "slliw" => Sllw,
        "srliw" => Srlw,
        "sraiw" => Sraw,
        _ => return None,
    })
}

fn load_op(m: &str) -> Option<LoadOp> {
    Some(match m {
        "lb" => LoadOp::Lb,
        "lh" => LoadOp::Lh,
        "lw" => LoadOp::Lw,
        "ld" => LoadOp::Ld,
        "lbu" => LoadOp::Lbu,
        "lhu" => LoadOp::Lhu,
        "lwu" => LoadOp::Lwu,
        _ => return None,
    })
}

fn store_op(m: &str) -> Option<StoreOp> {
    Some(match m {
        "sb" => StoreOp::Sb,
        "sh" => StoreOp::Sh,
        "sw" => StoreOp::Sw,
        "sd" => StoreOp::Sd,
        _ => return None,
    })
}

fn br_cond(m: &str) -> Option<BrCond> {
    Some(match m {
        "beq" => BrCond::Eq,
        "bne" => BrCond::Ne,
        "blt" => BrCond::Lt,
        "bge" => BrCond::Ge,
        "bltu" => BrCond::Ltu,
        "bgeu" => BrCond::Geu,
        _ => return None,
    })
}

enum PendingTarget {
    None,
    Label(String),
}

/// Assembles Clockhands source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics or operands, and undefined labels.
///
/// # Examples
///
/// ```
/// use clockhands::asm::assemble;
///
/// let p = assemble("li t, 42\nhalt t[0]")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), clockhands::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut prog = Program::new();
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending: Vec<(usize, usize, String)> = Vec::new(); // (inst idx, line, label)

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Leading labels, possibly several, possibly followed by an inst.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels
                .insert(label.to_string(), prog.insts.len() as u32)
                .is_some()
            {
                return err(line, format!("duplicate label `{label}`"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        // Directives.
        if let Some(rest) = text.strip_prefix(".data") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.is_empty() {
                return err(line, ".data needs an address");
            }
            let addr: i64 = parse_imm(toks[0], line)?;
            let mut bytes = Vec::new();
            for t in &toks[1..] {
                let v: i64 = parse_imm(t, line)?;
                bytes.extend_from_slice(&(v as u64).to_le_bytes());
            }
            prog.data.push((addr as u64, bytes));
            continue;
        }
        // Mnemonic + comma-separated operands.
        let (mnem, ops_text) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<String> = if ops_text.is_empty() {
            Vec::new()
        } else {
            ops_text.split(',').map(|s| s.trim().to_string()).collect()
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(
                    line,
                    format!("`{mnem}` expects {n} operands, got {}", ops.len()),
                )
            }
        };

        let mut target = PendingTarget::None;
        let inst = if let Some(op) = alu_op(mnem) {
            need(3)?;
            Inst::Alu {
                op,
                dst: parse_dst(&ops[0], line)?,
                src1: parse_src(&ops[1], line)?,
                src2: parse_src(&ops[2], line)?,
            }
        } else if let Some(op) = alu_imm_op(mnem) {
            need(3)?;
            Inst::AluImm {
                op,
                dst: parse_dst(&ops[0], line)?,
                src1: parse_src(&ops[1], line)?,
                imm: parse_imm(&ops[2], line)?,
            }
        } else if let Some(op) = load_op(mnem) {
            need(2)?;
            let (offset, base) = parse_mem_operand(&ops[1], line)?;
            Inst::Load {
                op,
                dst: parse_dst(&ops[0], line)?,
                base,
                offset,
            }
        } else if let Some(op) = store_op(mnem) {
            need(2)?;
            let (offset, base) = parse_mem_operand(&ops[1], line)?;
            Inst::Store {
                op,
                value: parse_src(&ops[0], line)?,
                base,
                offset,
            }
        } else if let Some(cond) = br_cond(mnem) {
            need(3)?;
            target = PendingTarget::Label(ops[2].clone());
            Inst::Branch {
                cond,
                src1: parse_src(&ops[0], line)?,
                src2: parse_src(&ops[1], line)?,
                target: 0,
            }
        } else {
            match mnem {
                "li" => {
                    need(2)?;
                    Inst::Li {
                        dst: parse_dst(&ops[0], line)?,
                        imm: parse_imm(&ops[1], line)?,
                    }
                }
                "mv" => {
                    need(2)?;
                    Inst::Mv {
                        dst: parse_dst(&ops[0], line)?,
                        src: parse_src(&ops[1], line)?,
                    }
                }
                "j" => {
                    need(1)?;
                    target = PendingTarget::Label(ops[0].clone());
                    Inst::Jump { target: 0 }
                }
                "call" => {
                    need(2)?;
                    target = PendingTarget::Label(ops[1].clone());
                    Inst::Call {
                        dst: parse_dst(&ops[0], line)?,
                        target: 0,
                    }
                }
                "jalr" => {
                    need(2)?;
                    Inst::CallReg {
                        dst: parse_dst(&ops[0], line)?,
                        src: parse_src(&ops[1], line)?,
                    }
                }
                "jr" | "ret" => {
                    need(1)?;
                    Inst::JumpReg {
                        src: parse_src(&ops[0], line)?,
                    }
                }
                "nop" => {
                    need(0)?;
                    Inst::Nop
                }
                "halt" => {
                    need(1)?;
                    Inst::Halt {
                        src: parse_src(&ops[0], line)?,
                    }
                }
                _ => return err(line, format!("unknown mnemonic `{mnem}`")),
            }
        };
        if let PendingTarget::Label(l) = target {
            pending.push((prog.insts.len(), line, l));
        }
        prog.insts.push(inst);
    }

    for (idx, line, label) in pending {
        let t = match labels.get(&label) {
            Some(&t) => t,
            None => return err(line, format!("undefined label `{label}`")),
        };
        match &mut prog.insts[idx] {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target, .. } => {
                *target = t;
            }
            _ => unreachable!("pending target on non-branch"),
        }
    }
    prog.labels = labels;
    Ok(prog)
}

fn fmt_target(prog: &Program, target: u32) -> String {
    for (name, &idx) in &prog.labels {
        if idx == target {
            return name.clone();
        }
    }
    format!("@{target}")
}

/// Disassembles a program back to source text (labels preserved when the
/// program carries them; synthetic `@index` targets otherwise).
pub fn disassemble(prog: &Program) -> String {
    let mut by_index: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for (name, &idx) in &prog.labels {
        by_index.entry(idx).or_default().push(name);
    }
    let mut out = String::new();
    for (base, words) in &prog.data {
        out.push_str(&format!(".data 0x{base:x}"));
        for chunk in words.chunks(8) {
            let mut v = [0u8; 8];
            v[..chunk.len()].copy_from_slice(chunk);
            out.push_str(&format!(" {}", u64::from_le_bytes(v) as i64));
        }
        out.push('\n');
    }
    for (i, inst) in prog.insts.iter().enumerate() {
        if let Some(names) = by_index.get(&(i as u32)) {
            for n in names {
                out.push_str(&format!("{n}:\n"));
            }
        }
        out.push_str("    ");
        out.push_str(&fmt_inst(prog, inst));
        out.push('\n');
    }
    out
}

fn fmt_inst(prog: &Program, inst: &Inst) -> String {
    match *inst {
        Inst::Alu {
            op,
            dst,
            src1,
            src2,
        } => {
            format!("{} {dst}, {src1}, {src2}", op.mnemonic())
        }
        Inst::AluImm { op, dst, src1, imm } => {
            let m = match op {
                AluOp::Add => "addi",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Or => "ori",
                AluOp::And => "andi",
                AluOp::Sll => "slli",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Addw => "addiw",
                AluOp::Sllw => "slliw",
                AluOp::Srlw => "srliw",
                AluOp::Sraw => "sraiw",
                other => return format!("{} {dst}, {src1}, {imm} ; imm", other.mnemonic()),
            };
            format!("{m} {dst}, {src1}, {imm}")
        }
        Inst::Li { dst, imm } => format!("li {dst}, {imm}"),
        Inst::Load {
            op,
            dst,
            base,
            offset,
        } => {
            format!("{} {dst}, {offset}({base})", op.mnemonic())
        }
        Inst::Store {
            op,
            value,
            base,
            offset,
        } => {
            format!("{} {value}, {offset}({base})", op.mnemonic())
        }
        Inst::Branch {
            cond,
            src1,
            src2,
            target,
        } => {
            format!(
                "{} {src1}, {src2}, {}",
                cond.mnemonic(),
                fmt_target(prog, target)
            )
        }
        Inst::Jump { target } => format!("j {}", fmt_target(prog, target)),
        Inst::Call { dst, target } => format!("call {dst}, {}", fmt_target(prog, target)),
        Inst::CallReg { dst, src } => format!("jalr {dst}, {src}"),
        Inst::JumpReg { src } => format!("jr {src}"),
        Inst::Mv { dst, src } => format!("mv {dst}, {src}"),
        Inst::Nop => "nop".to_string(),
        Inst::Halt { src } => format!("halt {src}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_paper_iota() {
        // Fig. 1(d), adapted to explicit syntax.
        let p = assemble(
            "iota:
                 ble_stub:
                 li t, 0
             .L3:
                 sw t[0], 0(s[1])
                 addiw t, t[0], 1
                 addi s, s[1], 4
                 bne t[0], s[2], .L3
                 jr s[0]",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.labels[".L3"], 1);
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("li t, 1\nbogus t, 2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn distance_boundary_checked_at_assembly() {
        // d = 15 is the last encodable distance for t/u/v...
        assert!(assemble("li t, 1\nhalt t[15]").is_ok());
        // ...and exactly 16 must be rejected here, not at encode time.
        let e = assemble("li t, 1\nhalt t[16]").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"), "{}", e.message);
        // s[14] is fine; s[15] is the reserved zero-register encoding.
        assert!(assemble("li s, 1\nhalt s[14]").is_ok());
        let e = assemble("li s, 1\nhalt s[15]").unwrap_err();
        assert!(e.message.contains("zero"), "{}", e.message);
    }

    #[test]
    fn distance_boundary_for_every_hand() {
        // At exactly the limit and at limit + 1 for all four hands, so an
        // off-by-one in any consumer of `Hand::max_src_distance` becomes
        // a unit-test failure instead of a fuzz find.
        for hand in Hand::ALL {
            let limit = hand.max_src_distance();
            let ok = format!("li {hand}, 1\nhalt {hand}[{limit}]");
            assert!(assemble(&ok).is_ok(), "{hand}[{limit}] must assemble");
            let over = format!("li {hand}, 1\nhalt {hand}[{}]", limit + 1);
            let e = assemble(&over).unwrap_err();
            assert_eq!(e.line, 2, "{hand}[{}] must fail on line 2", limit + 1);
            // s[15] gets the dedicated reserved-encoding message; the
            // rest report the per-hand range.
            if hand == Hand::S {
                assert!(e.message.contains("zero"), "{}", e.message);
            } else {
                assert!(
                    e.message.contains(&format!("out of range (max {limit})")),
                    "{}",
                    e.message
                );
            }
            // One past the reserved encoding is a plain range error again.
            let far = format!("li {hand}, 1\nhalt {hand}[{}]", limit + 2);
            let e = assemble(&far).unwrap_err();
            assert!(e.message.contains("out of range"), "{}", e.message);
        }
    }

    #[test]
    fn undefined_label_is_error() {
        let e = assemble("j .nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_error() {
        let e = assemble(".a:\nnop\n.a:\nnop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn operand_count_checked() {
        let e = assemble("add t, t[0]").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn mem_operand_forms() {
        let p = assemble("ld t, 8(s[0])\nsd t[0], (s[0])\nhalt t[0]").unwrap();
        assert!(matches!(p.insts[0], Inst::Load { offset: 8, .. }));
        assert!(matches!(p.insts[1], Inst::Store { offset: 0, .. }));
    }

    #[test]
    fn data_directive() {
        let p = assemble(".data 0x2000 1 -2 3\nhalt s[0]").unwrap();
        assert_eq!(p.data.len(), 1);
        assert_eq!(p.data[0].0, 0x2000);
        assert_eq!(p.data[0].1.len(), 24);
    }

    #[test]
    fn rejects_malformed_operands() {
        for bad in [
            "add x, t[0], t[1]\nhalt t[0]",  // unknown destination hand
            "add t, w[0], t[1]\nhalt t[0]",  // unknown source hand
            "add t, t[16], t[1]\nhalt t[0]", // distance past the horizon
            "add t, s[15], t[1]\nhalt t[0]", // reserved zero encoding
            "add t, t[x], t[1]\nhalt t[0]",  // non-numeric distance
            "add t, t0, t[1]\nhalt t[0]",    // missing brackets
            "add t, t[0]\nhalt t[0]",        // wrong operand count
            "frob t, t[0], t[1]\nhalt t[0]", // unknown mnemonic
        ] {
            assert!(assemble(bad).is_err(), "assembler accepted: {bad}");
        }
    }

    #[test]
    fn disassemble_roundtrip() {
        let src = "start:
    li t, 100
.loop:
    addi t, t[0], -1
    sw t[0], 0(s[0])
    bne t[0], zero, .loop
    fadd u, t[0], t[0]
    call s, start
    jalr s, u[0]
    jr s[0]
    nop
    halt t[0]";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.insts, p2.insts);
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("li t, 0x10\nli t, -0x10\nhalt t[0]").unwrap();
        assert_eq!(
            p.insts[0],
            Inst::Li {
                dst: Hand::T,
                imm: 16
            }
        );
        assert_eq!(
            p.insts[1],
            Inst::Li {
                dst: Hand::T,
                imm: -16
            }
        );
    }
}
