//! Clockhands instructions.
//!
//! An instruction's destination, when present, is a *hand* (Fig. 5:
//! `dst-hand` field); one physical register is implicitly allocated from
//! that hand's ring. A source is a *(hand, distance)* pair: `t[2]` means
//! "the value written to hand `t` three writes ago" — or the hardwired
//! zero register.

use crate::hand::Hand;
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use ch_common::op::OpClass;

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// `hand[distance]` — the value written to `hand` `distance+1` writes ago
    /// (distance 0 is the most recent write).
    Hand(Hand, u8),
    /// The hardwired zero register.
    Zero,
}

impl Src {
    /// The referenced hand, unless this is the zero register.
    pub fn hand(self) -> Option<Hand> {
        match self {
            Src::Hand(h, _) => Some(h),
            Src::Zero => None,
        }
    }

    /// Whether the distance is encodable.
    ///
    /// Distances must be at most [`Hand::max_src_distance`]: the deepest
    /// `s` encoding (`s[15]`) is taken by the `zero` register — the ISA
    /// defines `t[0]`–`t[15]`, `u[0]`–`u[15]`, `v[0]`–`v[15]`,
    /// `s[0]`–`s[14]`, and `zero` (Section 4.5).
    pub fn is_encodable(self) -> bool {
        match self {
            Src::Hand(h, d) => d <= h.max_src_distance(),
            Src::Zero => true,
        }
    }
}

impl std::fmt::Display for Src {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Src::Hand(h, d) => write!(f, "{h}[{d}]"),
            Src::Zero => f.write_str("zero"),
        }
    }
}

/// Branch/jump target: an instruction index within the program.
pub type Target = u32;

/// One Clockhands instruction.
///
/// Immediates are kept as native integers; the binary encoder
/// ([`crate::encode`]) range-checks them against the instruction format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Register-register ALU operation: `op dst, src1, src2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination hand.
        dst: Hand,
        /// First source.
        src1: Src,
        /// Second source.
        src2: Src,
    },
    /// Register-immediate ALU operation: `opi dst, src1, imm`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination hand.
        dst: Hand,
        /// Source.
        src1: Src,
        /// 12-bit-class immediate.
        imm: i32,
    },
    /// Load immediate (`lui`+`addi` class): `li dst, imm`.
    Li {
        /// Destination hand.
        dst: Hand,
        /// Immediate value.
        imm: i64,
    },
    /// Memory load: `lX dst, offset(base)`.
    Load {
        /// Width/extension.
        op: LoadOp,
        /// Destination hand.
        dst: Hand,
        /// Base address source.
        base: Src,
        /// Byte offset.
        offset: i32,
    },
    /// Memory store: `sX value, offset(base)`. No destination hand.
    Store {
        /// Width.
        op: StoreOp,
        /// Value source.
        value: Src,
        /// Base address source.
        base: Src,
        /// Byte offset.
        offset: i32,
    },
    /// Conditional branch: `bCC src1, src2, target`. No destination hand.
    Branch {
        /// Comparison.
        cond: BrCond,
        /// First source.
        src1: Src,
        /// Second source.
        src2: Src,
        /// Taken target (instruction index).
        target: Target,
    },
    /// Unconditional jump (`j`). No destination hand, so the distances of
    /// all hands are unchanged — this is what removes STRAIGHT's
    /// convergence-point `nop`s (Section 3.3).
    Jump {
        /// Target (instruction index).
        target: Target,
    },
    /// Direct call (`jal`): writes the return address to `dst`
    /// (conventionally `s`).
    Call {
        /// Destination hand for the return address.
        dst: Hand,
        /// Callee entry (instruction index).
        target: Target,
    },
    /// Indirect jump through a register (used for returns): `jr src`.
    JumpReg {
        /// Target address source.
        src: Src,
    },
    /// Indirect call (`jalr`): writes the return address to `dst`.
    CallReg {
        /// Destination hand for the return address.
        dst: Hand,
        /// Target address source.
        src: Src,
    },
    /// Register move: `mv dst, src`.
    Mv {
        /// Destination hand.
        dst: Hand,
        /// Source.
        src: Src,
    },
    /// No-operation.
    Nop,
    /// Stop execution; `src` is reported as the exit value.
    Halt {
        /// Exit-value source.
        src: Src,
    },
}

impl Inst {
    /// The destination hand, if the instruction writes one.
    pub fn dst(&self) -> Option<Hand> {
        match *self {
            Inst::Alu { dst, .. }
            | Inst::AluImm { dst, .. }
            | Inst::Li { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Call { dst, .. }
            | Inst::CallReg { dst, .. }
            | Inst::Mv { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// The source operands, in operand order.
    pub fn srcs(&self) -> Vec<Src> {
        match *self {
            Inst::Alu { src1, src2, .. } => vec![src1, src2],
            Inst::AluImm { src1, .. } => vec![src1],
            Inst::Li { .. } | Inst::Jump { .. } | Inst::Call { .. } | Inst::Nop => vec![],
            Inst::Load { base, .. } => vec![base],
            Inst::Store { value, base, .. } => vec![value, base],
            Inst::Branch { src1, src2, .. } => vec![src1, src2],
            Inst::JumpReg { src } | Inst::CallReg { src, .. } => vec![src],
            Inst::Mv { src, .. } => vec![src],
            Inst::Halt { src } => vec![src],
        }
    }

    /// Coarse operation class (for Fig. 15 and functional-unit routing).
    pub fn class(&self) -> OpClass {
        match *self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => op.class(),
            Inst::Li { .. } => OpClass::IntAlu,
            Inst::Load { .. } => OpClass::Load,
            Inst::Store { .. } => OpClass::Store,
            Inst::Branch { .. } => OpClass::CondBr,
            Inst::Jump { .. } => OpClass::Jump,
            Inst::Call { .. } | Inst::CallReg { .. } => OpClass::CallRet,
            // `jr s[0]` is a return in the calling convention.
            Inst::JumpReg { .. } => OpClass::CallRet,
            Inst::Mv { .. } => OpClass::Move,
            Inst::Nop => OpClass::Nop,
            Inst::Halt { .. } => OpClass::Other,
        }
    }

    /// Whether all source distances are within [`crate::hand::MAX_DISTANCE`].
    pub fn is_encodable(&self) -> bool {
        self.srcs().iter().all(|s| s.is_encodable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_presence_matches_paper() {
        // Stores and non-JAL[R] branches have no dst-hand (Section 3.2).
        let store = Inst::Store {
            op: StoreOp::Sd,
            value: Src::Hand(Hand::T, 0),
            base: Src::Hand(Hand::S, 0),
            offset: 0,
        };
        let branch = Inst::Branch {
            cond: BrCond::Ne,
            src1: Src::Hand(Hand::T, 0),
            src2: Src::Zero,
            target: 0,
        };
        let jump = Inst::Jump { target: 3 };
        assert_eq!(store.dst(), None);
        assert_eq!(branch.dst(), None);
        assert_eq!(jump.dst(), None);
        // JAL[R] do have one.
        assert_eq!(
            Inst::Call {
                dst: Hand::S,
                target: 0
            }
            .dst(),
            Some(Hand::S)
        );
        assert_eq!(
            Inst::CallReg {
                dst: Hand::S,
                src: Src::Hand(Hand::T, 1)
            }
            .dst(),
            Some(Hand::S)
        );
    }

    #[test]
    fn encodability_limit() {
        let ok = Inst::Mv {
            dst: Hand::T,
            src: Src::Hand(Hand::U, 15),
        };
        let too_far = Inst::Mv {
            dst: Hand::T,
            src: Src::Hand(Hand::U, 16),
        };
        assert!(ok.is_encodable());
        assert!(!too_far.is_encodable());
        assert!(Inst::Nop.is_encodable());
    }

    #[test]
    fn src_display() {
        assert_eq!(Src::Hand(Hand::V, 3).to_string(), "v[3]");
        assert_eq!(Src::Zero.to_string(), "zero");
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::Nop.class(), OpClass::Nop);
        assert_eq!(
            Inst::Mv {
                dst: Hand::T,
                src: Src::Zero
            }
            .class(),
            OpClass::Move
        );
        assert_eq!(Inst::Jump { target: 0 }.class(), OpClass::Jump);
        assert_eq!(
            Inst::JumpReg {
                src: Src::Hand(Hand::S, 0)
            }
            .class(),
            OpClass::CallRet
        );
        let fdiv = Inst::Alu {
            op: AluOp::Fdiv,
            dst: Hand::T,
            src1: Src::Zero,
            src2: Src::Zero,
        };
        assert_eq!(fdiv.class(), OpClass::FpDiv);
    }

    #[test]
    fn srcs_enumeration() {
        let st = Inst::Store {
            op: StoreOp::Sw,
            value: Src::Hand(Hand::V, 0),
            base: Src::Hand(Hand::T, 1),
            offset: 4,
        };
        assert_eq!(st.srcs().len(), 2);
        assert_eq!(
            Inst::Li {
                dst: Hand::T,
                imm: 9
            }
            .srcs()
            .len(),
            0
        );
    }
}
