//! Architectural state: the hand file.
//!
//! Section 4.5 of the paper: writing a register can be interpreted as
//! shifting every value in the destination hand by one, discarding the
//! oldest, and writing the new value at position 0. This module implements
//! that logical view with per-hand ring buffers (the hardware-equivalent
//! optimisation the paper describes — the data never actually moves).
//!
//! Alongside each value the file tracks the *producer*: the dynamic
//! sequence number of the instruction that wrote it. Emulators use this to
//! resolve dataflow for [`ch_common::inst::DynInst`] records.

use crate::hand::{Hand, MAX_DISTANCE, NUM_HANDS};
use ch_common::inst::NO_PRODUCER;

/// Ring capacity per hand. Must be ≥ [`MAX_DISTANCE`]; a power of two
/// keeps the index math branch-free.
const RING: usize = 32;

/// Error returned when a read violates the ISA reference-distance limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceError {
    /// The hand that was read.
    pub hand: Hand,
    /// The requested (illegal) distance.
    pub distance: u8,
}

impl std::fmt::Display for DistanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reference {}[{}] exceeds the maximum distance {}",
            self.hand,
            self.distance,
            MAX_DISTANCE - 1
        )
    }
}

impl std::error::Error for DistanceError {}

/// The architectural register state of a Clockhands machine: four hands,
/// each a logical shift register of 64-bit values.
///
/// # Examples
///
/// ```
/// use clockhands::hand::Hand;
/// use clockhands::state::HandFile;
///
/// let mut f = HandFile::new();
/// f.write(Hand::T, 10, 0);
/// f.write(Hand::T, 20, 1);
/// f.write(Hand::V, 99, 2);
/// assert_eq!(f.read(Hand::T, 0)?, 20); // most recent write to t
/// assert_eq!(f.read(Hand::T, 1)?, 10);
/// assert_eq!(f.read(Hand::V, 0)?, 99); // v rotated independently
/// # Ok::<(), clockhands::state::DistanceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HandFile {
    values: [[u64; RING]; NUM_HANDS],
    producers: [[u64; RING]; NUM_HANDS],
    /// Total writes per hand; `heads` are derived from these.
    writes: [u64; NUM_HANDS],
}

impl Default for HandFile {
    fn default() -> Self {
        HandFile::new()
    }
}

impl HandFile {
    /// Creates a hand file with every slot zero and no producers.
    pub fn new() -> Self {
        HandFile {
            values: [[0; RING]; NUM_HANDS],
            producers: [[NO_PRODUCER; RING]; NUM_HANDS],
            writes: [0; NUM_HANDS],
        }
    }

    fn slot(&self, hand: Hand, distance: u8) -> usize {
        let w = self.writes[hand.index()];
        // Position of the write `distance+1` writes ago; wraps within RING.
        (w.wrapping_sub(1 + distance as u64) as usize) & (RING - 1)
    }

    /// Writes `value` to `hand`, rotating only that hand, and records
    /// `producer` as the originating dynamic instruction.
    pub fn write(&mut self, hand: Hand, value: u64, producer: u64) {
        let h = hand.index();
        let pos = (self.writes[h] as usize) & (RING - 1);
        self.values[h][pos] = value;
        self.producers[h][pos] = producer;
        self.writes[h] += 1;
    }

    /// Reads `hand[distance]`.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError`] if `distance >= MAX_DISTANCE`.
    pub fn read(&self, hand: Hand, distance: u8) -> Result<u64, DistanceError> {
        if distance >= MAX_DISTANCE {
            return Err(DistanceError { hand, distance });
        }
        Ok(self.values[hand.index()][self.slot(hand, distance)])
    }

    /// The producer sequence number of `hand[distance]`, or
    /// [`NO_PRODUCER`] if the slot was never written.
    ///
    /// # Errors
    ///
    /// Returns [`DistanceError`] if `distance >= MAX_DISTANCE`.
    pub fn producer(&self, hand: Hand, distance: u8) -> Result<u64, DistanceError> {
        if distance >= MAX_DISTANCE {
            return Err(DistanceError { hand, distance });
        }
        Ok(self.producers[hand.index()][self.slot(hand, distance)])
    }

    /// Total number of writes that have been made to `hand`.
    pub fn write_count(&self, hand: Hand) -> u64 {
        self.writes[hand.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hands_rotate_independently() {
        let mut f = HandFile::new();
        f.write(Hand::V, 42, 0); // loop constant
        for i in 0..100 {
            f.write(Hand::T, i, i + 1);
        }
        // v[0] still reads the constant: executing t writes did not rotate v.
        assert_eq!(f.read(Hand::V, 0).unwrap(), 42);
        assert_eq!(f.read(Hand::T, 0).unwrap(), 99);
        assert_eq!(f.read(Hand::T, 15).unwrap(), 84);
    }

    #[test]
    fn distance_zero_is_most_recent() {
        let mut f = HandFile::new();
        f.write(Hand::S, 7, 0);
        f.write(Hand::S, 8, 1);
        assert_eq!(f.read(Hand::S, 0).unwrap(), 8);
        assert_eq!(f.read(Hand::S, 1).unwrap(), 7);
    }

    #[test]
    fn over_distance_read_is_an_error() {
        let f = HandFile::new();
        let e = f.read(Hand::T, MAX_DISTANCE).unwrap_err();
        assert_eq!(e.distance, MAX_DISTANCE);
        assert!(f.read(Hand::T, MAX_DISTANCE - 1).is_ok());
    }

    #[test]
    fn producers_follow_values() {
        let mut f = HandFile::new();
        assert_eq!(f.producer(Hand::U, 0).unwrap(), NO_PRODUCER);
        f.write(Hand::U, 5, 1234);
        assert_eq!(f.producer(Hand::U, 0).unwrap(), 1234);
        f.write(Hand::U, 6, 1235);
        assert_eq!(f.producer(Hand::U, 1).unwrap(), 1234);
    }

    #[test]
    fn wraparound_many_writes() {
        let mut f = HandFile::new();
        for i in 0..10_000u64 {
            f.write(Hand::T, i * 3, i);
        }
        for d in 0..MAX_DISTANCE {
            assert_eq!(f.read(Hand::T, d).unwrap(), (9999 - d as u64) * 3);
        }
        assert_eq!(f.write_count(Hand::T), 10_000);
    }
}
