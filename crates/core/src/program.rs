//! Program container: instructions, labels, and initial data image.

use crate::hand::MAX_DISTANCE;
use crate::inst::Inst;
use std::collections::BTreeMap;

/// Base address instructions are considered to live at (for PC values).
pub const TEXT_BASE: u64 = 0x1_0000;

/// A validation problem found in a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch/jump/call target is past the end of the program.
    BadTarget {
        /// Instruction index containing the bad target.
        at: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A source distance is not encodable (≥ [`MAX_DISTANCE`]).
    BadDistance {
        /// Instruction index.
        at: u32,
    },
    /// The program is empty.
    Empty,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::BadTarget { at, target } => {
                write!(f, "instruction {at}: target {target} out of range")
            }
            ProgramError::BadDistance { at } => {
                write!(
                    f,
                    "instruction {at}: source distance exceeds {}",
                    MAX_DISTANCE - 1
                )
            }
            ProgramError::Empty => f.write_str("program has no instructions"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete Clockhands program: code, symbolic labels, and the initial
/// data image loaded into memory before execution.
///
/// # Examples
///
/// ```
/// use clockhands::asm::assemble;
///
/// let p = assemble(
///     "li t, 1
///      li t, 2
///      add t, t[0], t[1]
///      halt t[0]",
/// )?;
/// assert_eq!(p.len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Instructions, in layout order.
    pub insts: Vec<Inst>,
    /// Entry point (instruction index).
    pub entry: u32,
    /// Label name → instruction index (debugging/disassembly aid).
    pub labels: BTreeMap<String, u32>,
    /// Initial data segments: (base address, bytes).
    pub data: Vec<(u64, Vec<u8>)>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The PC value of the instruction at `index`.
    pub fn pc_of(&self, index: u32) -> u64 {
        TEXT_BASE + 4 * index as u64
    }

    /// Checks targets and source distances.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found, if any.
    pub fn validate(&self) -> Result<(), ProgramError> {
        if self.insts.is_empty() {
            return Err(ProgramError::Empty);
        }
        let n = self.insts.len() as u32;
        for (i, inst) in self.insts.iter().enumerate() {
            let at = i as u32;
            if !inst.is_encodable() {
                return Err(ProgramError::BadDistance { at });
            }
            let target = match *inst {
                Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target, .. } => {
                    Some(target)
                }
                _ => None,
            };
            if let Some(t) = target {
                if t >= n {
                    return Err(ProgramError::BadTarget { at, target: t });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hand::Hand;
    use crate::inst::Src;

    #[test]
    fn empty_program_is_invalid() {
        assert_eq!(Program::new().validate(), Err(ProgramError::Empty));
    }

    #[test]
    fn bad_target_detected() {
        let mut p = Program::new();
        p.insts.push(Inst::Jump { target: 5 });
        assert_eq!(
            p.validate(),
            Err(ProgramError::BadTarget { at: 0, target: 5 })
        );
    }

    #[test]
    fn bad_distance_detected() {
        let mut p = Program::new();
        p.insts.push(Inst::Mv {
            dst: Hand::T,
            src: Src::Hand(Hand::T, 20),
        });
        assert_eq!(p.validate(), Err(ProgramError::BadDistance { at: 0 }));
    }

    #[test]
    fn valid_program_passes() {
        let mut p = Program::new();
        p.insts.push(Inst::Li {
            dst: Hand::T,
            imm: 1,
        });
        p.insts.push(Inst::Halt {
            src: Src::Hand(Hand::T, 0),
        });
        assert!(p.validate().is_ok());
    }

    #[test]
    fn pc_layout() {
        let p = Program::new();
        assert_eq!(p.pc_of(0), TEXT_BASE);
        assert_eq!(p.pc_of(3), TEXT_BASE + 12);
    }
}
