//! Hands — the register groups of the Clockhands ISA.
//!
//! Clockhands has four hands (Section 4.1 of the paper concludes H = 4 is
//! the sweet spot). All four are architecturally equal; the compiler uses
//! them by convention (Section 4.3): `t` for temporaries, `u` for
//! longer-lived values, `v` for loop constants, and `s` for the stack
//! pointer and function arguments.

/// Number of hands (H in the paper).
pub const NUM_HANDS: usize = 4;

/// Maximum source reference distance per hand (D in the paper).
///
/// Distances `0..MAX_DISTANCE` are encodable: `t[0]` is the most recent
/// write to hand `t`, `t[15]` the oldest reachable one.
pub const MAX_DISTANCE: u8 = 16;

/// One of the four register groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Hand {
    /// Temporary values (most frequently written).
    T,
    /// Values with a longer lifetime.
    U,
    /// Loop constants (written rarely, read often).
    V,
    /// Stack pointer and function arguments.
    S,
}

impl Hand {
    /// All hands in index order.
    pub const ALL: [Hand; NUM_HANDS] = [Hand::T, Hand::U, Hand::V, Hand::S];

    /// Dense index (t=0, u=1, v=2, s=3).
    pub fn index(self) -> usize {
        match self {
            Hand::T => 0,
            Hand::U => 1,
            Hand::V => 2,
            Hand::S => 3,
        }
    }

    /// The hand with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_index(i: usize) -> Hand {
        Hand::ALL[i]
    }

    /// Assembler name of the hand.
    pub fn name(self) -> &'static str {
        match self {
            Hand::T => "t",
            Hand::U => "u",
            Hand::V => "v",
            Hand::S => "s",
        }
    }

    /// Deepest encodable source distance on this hand.
    ///
    /// The hardware window holds [`MAX_DISTANCE`] writes per hand, so
    /// distances `0..MAX_DISTANCE` fit in the operand encoding. On `s`
    /// the deepest encoding (`s[15]`) is reserved for the zero register,
    /// which shortens the usable window by one: the hard limit is 15,
    /// 14 on `s`. Backend, assembler, and verifier all derive their
    /// range checks from this one definition.
    pub const fn max_src_distance(self) -> u8 {
        match self {
            Hand::S => MAX_DISTANCE - 2,
            _ => MAX_DISTANCE - 1,
        }
    }

    /// Parses an assembler hand name.
    pub fn parse(s: &str) -> Option<Hand> {
        match s {
            "t" => Some(Hand::T),
            "u" => Some(Hand::U),
            "v" => Some(Hand::V),
            "s" => Some(Hand::S),
            _ => None,
        }
    }
}

impl std::fmt::Display for Hand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for h in Hand::ALL {
            assert_eq!(Hand::from_index(h.index()), h);
        }
    }

    #[test]
    fn parse_roundtrip() {
        for h in Hand::ALL {
            assert_eq!(Hand::parse(h.name()), Some(h));
        }
        assert_eq!(Hand::parse("x"), None);
        assert_eq!(Hand::parse(""), None);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(NUM_HANDS, 4);
        assert_eq!(MAX_DISTANCE, 16);
    }

    #[test]
    fn per_hand_distance_limits() {
        assert_eq!(Hand::T.max_src_distance(), 15);
        assert_eq!(Hand::U.max_src_distance(), 15);
        assert_eq!(Hand::V.max_src_distance(), 15);
        assert_eq!(Hand::S.max_src_distance(), 14);
    }
}
