//! Calling-convention tests at the assembly level (Section 4.4 of the
//! paper): argument layout, SP handling, return values, and the
//! callee-saved v registers.

use clockhands::asm::assemble;
use clockhands::hand::Hand;
use clockhands::interp::{Interpreter, STACK_TOP};

fn run(src: &str) -> (u64, Interpreter) {
    let prog = assemble(src).expect("assembles");
    let mut cpu = Interpreter::new(prog).expect("valid");
    let r = cpu.run(1_000_000).expect("runs");
    (r.exit_value, cpu)
}

#[test]
fn arguments_arrive_at_the_documented_distances() {
    // Caller writes arg2 then arg1 then calls: at the callee's entry,
    // s[0] is the return address, s[1] the first argument, s[2] the
    // second (Section 4.4).
    let (v, _) = run("li s, 20        # second argument (written first)
         li s, 3         # first argument
         call s, .f
         halt s[1]
     .f: mul t, s[1], s[2]
         mv s, t[0]      # return value (s: [0]=60 [1]=ra [2..3]=args [4]=SP)
         addi s, s[4], 0 # restore caller SP
         jr s[2]         # return address, two writes deeper than at entry
        ");
    assert_eq!(v, 60);
}

#[test]
fn leaf_function_full_convention() {
    // A complete, correct leaf: frame, RA spill, v-save/restore, return
    // value, SP restore — the code shape the compiler emits.
    let (v, cpu) = run("li v, 111       # caller parks a value in v
         li s, 7         # argument
         call s, .leaf
         halt s[1]
     .leaf:
         addi s, s[2], -32
         sd s[1], 0(s[0])     # RA (one deeper after the SP write)
         sd v[0], 8(s[0])     # callee-saved v
         li v, 999            # callee clobbers v for its own use
         add t, s[2], v[0]    # arg + 999
         ld u, 0(s[0])        # reload RA
         ld v, 8(s[0])        # restore caller's v[0]
         mv s, t[0]           # return value
         addi s, s[1], 32     # restore caller SP
         jr u[0]
        ");
    assert_eq!(v, 7 + 999);
    // The caller's v[0] must be intact after the call.
    assert_eq!(cpu.hands().read(Hand::V, 0).unwrap(), 111);
    // And s[0] at the halt is the caller's (initial) SP.
    assert_eq!(cpu.hands().read(Hand::S, 0).unwrap(), STACK_TOP);
}

#[test]
fn jump_rotates_no_hand() {
    // Section 3.3(3): jumping across a convergence point leaves every
    // distance intact — no nop needed on either path.
    let (v, _) = run("li t, 5
         li v, 100
         beq t[0], zero, .other
         li t, 10
         j .join
     .other:
         li t, 20
     .join:
         add t, t[0], v[0]    # v[0] valid on both paths, same distance
         halt t[0]");
    assert_eq!(v, 110);
}

#[test]
fn zero_register_reads_zero_everywhere() {
    let (v, _) = run("li t, 42
         add t, t[0], zero
         sub t, t[0], zero
         sd t[0], 4096(zero)
         ld u, 4096(zero)
         halt u[0]");
    assert_eq!(v, 42);
}

#[test]
fn deep_s_references_for_many_arguments() {
    // Six arguments: the callee reaches s[6] (within the s hand's 15).
    let (v, _) = run("li s, 6
         li s, 5
         li s, 4
         li s, 3
         li s, 2
         li s, 1
         call s, .f
         halt s[1]
     .f: add t, s[1], s[2]
         add t, t[0], s[3]
         add t, t[0], s[4]
         add t, t[0], s[5]
         add t, t[0], s[6]
         mv s, t[0]
         addi s, s[8], 0     # caller SP (s[7] at entry, +1 for the retval)
         jr s[2]             # return address after two s writes
        ");
    assert_eq!(v, 21);
}
