//! The ISA-generic byte-stream driver: instruction sizing, the
//! relaxation fixpoint, byte-accurate layout, and the boundary walk
//! that decoding shares with real front ends.
//!
//! A [`Codec`] supplies the per-ISA bit formats; this module supplies
//! everything that is the same for all three ISAs:
//!
//! * **Sizing** — under [`EncodingVariant::Compressed`], every
//!   instruction with a 16-bit form starts at two bytes;
//! * **Relaxation** — a 16-bit control transfer whose halfword
//!   displacement outgrows its field is promoted to the 32-bit form.
//!   Promotion moves later instructions further apart, which can push
//!   *other* short branches out of range, so the pass iterates to a
//!   fixpoint; promotion is monotone (2 → 4 bytes, never back), so the
//!   loop terminates in at most `n` rounds. 32-bit displacement sites
//!   carry a pool flag and therefore never fail to encode.
//! * **The walk** — decoding scans halfwords: a low bit pair of `0b11`
//!   means a 32-bit unit (the RVC length-tag convention), anything else
//!   a 16-bit unit. Displacements resolve against the recovered unit
//!   boundaries, so a displacement landing inside a unit is a
//!   structured [`DecodeError::BadTarget`], never a misparse.

use crate::bits::{fits_signed, Pool};
use crate::{DecodeError, EncodeError, Layout, TEXT_BASE};
use ch_common::EncodingVariant;

/// The per-ISA bit format behind the generic driver.
pub(crate) trait Codec {
    /// The ISA's static instruction type.
    type Inst: Copy + PartialEq + std::fmt::Debug;

    /// Branch/jump/call target as an instruction index, if the
    /// instruction transfers control via an immediate displacement.
    fn target(i: &Self::Inst) -> Option<u32>;

    /// Whether the instruction has a 16-bit form, ignoring displacement
    /// reach (the driver handles reach via relaxation).
    fn has_compact(i: &Self::Inst) -> bool;

    /// Signed width in bits of the halfword-displacement field of the
    /// 16-bit form. Only consulted for compact control transfers.
    fn compact_disp_bits(i: &Self::Inst) -> u32;

    /// Encodes at `size` (2 or 4) with halfword displacement `disp`
    /// (0 when there is no target). A 16-bit unit occupies the low half
    /// of the returned word.
    fn encode(
        i: &Self::Inst,
        size: u8,
        disp: i64,
        pool: &mut Pool,
        at: u32,
    ) -> Result<u32, EncodeError>;

    /// Decodes one unit. `target` maps a halfword displacement (relative
    /// to this unit) to an instruction index.
    fn decode(
        word: u32,
        size: u8,
        at: usize,
        target: &mut dyn FnMut(i64) -> Result<u32, DecodeError>,
        pool: &[u64],
    ) -> Result<Self::Inst, DecodeError>;
}

/// Encodes an instruction stream: sizes, relaxes, lays out, and emits.
pub(crate) fn encode_stream<C: Codec>(
    insts: &[C::Inst],
    variant: EncodingVariant,
) -> Result<(Vec<u8>, Vec<u64>, Layout), EncodeError> {
    let n = insts.len();
    let mut sizes: Vec<u8> = insts
        .iter()
        .map(|i| {
            if variant == EncodingVariant::Compressed && C::has_compact(i) {
                2
            } else {
                4
            }
        })
        .collect();
    let offsets = |sizes: &[u8]| -> Vec<u64> {
        let mut pcs = Vec::with_capacity(n + 1);
        let mut off = 0u64;
        for &s in sizes {
            pcs.push(off);
            off += s as u64;
        }
        pcs.push(off);
        pcs
    };
    let mut offs = offsets(&sizes);
    loop {
        let mut changed = false;
        for (at, i) in insts.iter().enumerate() {
            let Some(t) = C::target(i) else { continue };
            if t as usize > n {
                return Err(EncodeError::BadTarget {
                    at: at as u32,
                    target: t,
                });
            }
            if sizes[at] != 2 {
                continue; // 32-bit displacement sites pool-escape
            }
            let disp = (offs[t as usize] as i64 - offs[at] as i64) / 2;
            if !fits_signed(disp, C::compact_disp_bits(i)) {
                sizes[at] = 4;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        offs = offsets(&sizes);
    }
    let mut pool = Pool::new();
    let mut bytes = Vec::with_capacity(offs[n] as usize);
    for (at, i) in insts.iter().enumerate() {
        let disp = match C::target(i) {
            Some(t) => (offs[t as usize] as i64 - offs[at] as i64) / 2,
            None => 0,
        };
        let word = C::encode(i, sizes[at], disp, &mut pool, at as u32)?;
        bytes.extend_from_slice(&word.to_le_bytes()[..sizes[at] as usize]);
    }
    let layout = Layout {
        sizes,
        pcs: offs.into_iter().map(|o| TEXT_BASE + o).collect(),
    };
    Ok((bytes, pool.values, layout))
}

/// Decodes a laid-out byte stream back into instructions.
pub(crate) fn decode_stream<C: Codec>(
    bytes: &[u8],
    pool: &[u64],
) -> Result<Vec<C::Inst>, DecodeError> {
    // Walk the stream once to recover unit boundaries.
    let mut units: Vec<(usize, u32, u8)> = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        if off + 2 > bytes.len() {
            return Err(DecodeError::Truncated { at: off });
        }
        let hw = u16::from_le_bytes([bytes[off], bytes[off + 1]]) as u32;
        if hw & 0b11 == 0b11 {
            if off + 4 > bytes.len() {
                return Err(DecodeError::Truncated { at: off });
            }
            let w =
                u32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]]);
            units.push((off, w, 4));
            off += 4;
        } else {
            units.push((off, hw, 2));
            off += 2;
        }
    }
    let boundaries: Vec<usize> = units.iter().map(|&(o, _, _)| o).collect();
    let mut insts = Vec::with_capacity(units.len());
    for &(off, word, size) in units.iter() {
        let mut to_index = |disp: i64| -> Result<u32, DecodeError> {
            let t = off as i64 + disp * 2;
            if t == bytes.len() as i64 {
                return Ok(units.len() as u32); // one past the end
            }
            if t < 0 || t > bytes.len() as i64 {
                return Err(DecodeError::BadTarget { at: off });
            }
            boundaries
                .binary_search(&(t as usize))
                .map(|i| i as u32)
                .map_err(|_| DecodeError::BadTarget { at: off })
        };
        insts.push(C::decode(word, size, off, &mut to_index, pool)?);
    }
    Ok(insts)
}
