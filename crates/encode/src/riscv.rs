//! The RISC-V-style baseline bit formats: 6-bit architectural register
//! specifiers (the model machine has 64 integer registers) in the
//! 32-bit form, and RVC-style 16-bit compact forms restricted to the
//! low 32 registers, with destructive two-address ALU ops (`rd == rs1`)
//! mirroring C.ADD/C.SUB.

use crate::bits::*;
use crate::stream::Codec;
use crate::{DecodeError, EncodeError};
use ch_baselines::riscv::{Reg, RvInst};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};

fn reg6(r: Reg, at: u32) -> Result<u32, EncodeError> {
    if r.0 >= 64 {
        return Err(EncodeError::BadSrc { at });
    }
    Ok(r.0 as u32)
}

/// 5-bit compact register: only x0–x31 are reachable.
fn reg5(r: Reg) -> Option<u32> {
    (r.0 < 32).then_some(r.0 as u32)
}

// 16-bit quadrant-01 compact opcodes.
const C_MV: u32 = 0;
const C_LI: u32 = 1;
const C_ADDI: u32 = 2;
const C_LD: u32 = 3;
const C_SD: u32 = 4;
const C_BEQZ: u32 = 5;
const C_BNEZ: u32 = 6;
const C_J: u32 = 7;
// Quadrant-10 compact opcodes.
const C_NOP: u32 = 0;
const C_HALT: u32 = 1;
const C_JR: u32 = 2;

pub(crate) struct Rv;

impl Codec for Rv {
    type Inst = RvInst;

    fn target(i: &RvInst) -> Option<u32> {
        match *i {
            RvInst::Branch { target, .. }
            | RvInst::Jump { target }
            | RvInst::Call { target, .. } => Some(target),
            _ => None,
        }
    }

    fn has_compact(i: &RvInst) -> bool {
        match *i {
            RvInst::Alu { op, rd, rs1, rs2 } => {
                calu_funct(op).is_some() && rd == rs1 && reg5(rd).is_some() && reg5(rs2).is_some()
            }
            RvInst::AluImm {
                op: AluOp::Add,
                rd,
                rs1,
                imm,
            } => rd == rs1 && reg5(rd).is_some() && fits_signed(imm as i64, 6),
            RvInst::Li { rd, imm } => reg5(rd).is_some() && fits_signed(imm, 6),
            RvInst::Load {
                op: LoadOp::Ld,
                rd,
                base,
                offset,
            } => reg5(rd).is_some() && reg5(base).is_some() && (offset == 0 || offset == 8),
            RvInst::Store {
                op: StoreOp::Sd,
                rs,
                base,
                offset,
            } => reg5(rs).is_some() && reg5(base).is_some() && (offset == 0 || offset == 8),
            RvInst::Branch {
                cond: BrCond::Eq | BrCond::Ne,
                rs1,
                rs2,
                ..
            } => rs2 == Reg(0) && reg5(rs1).is_some(),
            RvInst::JumpReg { rs } => reg5(rs).is_some(),
            RvInst::Mv { rd, rs } => reg5(rd).is_some() && reg5(rs).is_some(),
            RvInst::Halt { rs } => reg5(rs).is_some(),
            RvInst::Jump { .. } | RvInst::Nop => true,
            _ => false,
        }
    }

    fn compact_disp_bits(i: &RvInst) -> u32 {
        match *i {
            RvInst::Branch { .. } => 6,
            _ => 11, // C.J
        }
    }

    fn encode(
        i: &RvInst,
        size: u8,
        disp: i64,
        pool: &mut Pool,
        at: u32,
    ) -> Result<u32, EncodeError> {
        if size == 2 {
            return encode16(i, disp);
        }
        let mut w;
        match *i {
            RvInst::Alu { op, rd, rs1, rs2 } => {
                w = word32(OP_ALU);
                put(&mut w, 7, 6, alu_funct(op));
                put(&mut w, 13, 6, reg6(rd, at)?);
                put(&mut w, 19, 6, reg6(rs1, at)?);
                put(&mut w, 25, 6, reg6(rs2, at)?);
            }
            RvInst::AluImm { op, rd, rs1, imm } => match imm_opcode(op) {
                Some(opc) => {
                    w = word32(opc);
                    put(&mut w, 7, 6, reg6(rd, at)?);
                    put(&mut w, 13, 6, reg6(rs1, at)?);
                    put_imm(&mut w, 19, 12, imm as i64, pool, at)?;
                }
                None => {
                    w = word32(OP_ALUIMM);
                    put(&mut w, 7, 6, alu_funct(op));
                    put(&mut w, 13, 6, reg6(rd, at)?);
                    put(&mut w, 19, 6, reg6(rs1, at)?);
                    put_imm(&mut w, 25, 6, imm as i64, pool, at)?;
                }
            },
            RvInst::Li { rd, imm } => {
                w = word32(OP_LI);
                put(&mut w, 7, 6, reg6(rd, at)?);
                put_imm(&mut w, 13, 18, imm, pool, at)?;
            }
            RvInst::Load {
                op,
                rd,
                base,
                offset,
            } => {
                w = word32(load_opcode(op));
                put(&mut w, 7, 6, reg6(rd, at)?);
                put(&mut w, 13, 6, reg6(base, at)?);
                put_imm(&mut w, 19, 12, offset as i64, pool, at)?;
            }
            RvInst::Store {
                op,
                rs,
                base,
                offset,
            } => {
                w = word32(store_opcode(op));
                put(&mut w, 7, 6, reg6(rs, at)?);
                put(&mut w, 13, 6, reg6(base, at)?);
                put_imm(&mut w, 19, 12, offset as i64, pool, at)?;
            }
            RvInst::Branch { cond, rs1, rs2, .. } => {
                w = word32(branch_opcode(cond));
                put(&mut w, 7, 6, reg6(rs1, at)?);
                put(&mut w, 13, 6, reg6(rs2, at)?);
                put_imm(&mut w, 19, 12, disp, pool, at)?;
            }
            RvInst::Jump { .. } => {
                w = word32(OP_JUMP);
                put_imm(&mut w, 7, 24, disp, pool, at)?;
            }
            RvInst::Call { rd, .. } => {
                w = word32(OP_CALL);
                put(&mut w, 7, 6, reg6(rd, at)?);
                put_imm(&mut w, 13, 18, disp, pool, at)?;
            }
            RvInst::JumpReg { rs } => {
                w = word32(OP_JUMPREG);
                put(&mut w, 7, 6, reg6(rs, at)?);
            }
            RvInst::CallReg { rd, rs } => {
                w = word32(OP_CALLREG);
                put(&mut w, 7, 6, reg6(rd, at)?);
                put(&mut w, 13, 6, reg6(rs, at)?);
            }
            RvInst::Mv { rd, rs } => {
                w = word32(OP_MV);
                put(&mut w, 7, 6, reg6(rd, at)?);
                put(&mut w, 13, 6, reg6(rs, at)?);
            }
            RvInst::Nop => {
                w = word32(OP_NOP);
            }
            RvInst::Halt { rs } => {
                w = word32(OP_HALT);
                put(&mut w, 7, 6, reg6(rs, at)?);
            }
        }
        Ok(w)
    }

    fn decode(
        word: u32,
        size: u8,
        at: usize,
        target: &mut dyn FnMut(i64) -> Result<u32, DecodeError>,
        pool: &[u64],
    ) -> Result<RvInst, DecodeError> {
        if size == 2 {
            return decode16(word, at, target);
        }
        let op = opcode(word);
        Ok(match op {
            OP_ALU => {
                req_zero(word, 31, 1, at)?;
                RvInst::Alu {
                    op: alu_from_funct(get(word, 7, 6), at, word)?,
                    rd: Reg(get(word, 13, 6) as u8),
                    rs1: Reg(get(word, 19, 6) as u8),
                    rs2: Reg(get(word, 25, 6) as u8),
                }
            }
            OP_ALUIMM => RvInst::AluImm {
                op: alu_from_funct(get(word, 7, 6), at, word)?,
                rd: Reg(get(word, 13, 6) as u8),
                rs1: Reg(get(word, 19, 6) as u8),
                imm: get_imm32(word, 25, 6, pool, at)?,
            },
            OP_ADDI | OP_ANDI | OP_ORI | OP_XORI => RvInst::AluImm {
                op: imm_op(op).unwrap(),
                rd: Reg(get(word, 7, 6) as u8),
                rs1: Reg(get(word, 13, 6) as u8),
                imm: get_imm32(word, 19, 12, pool, at)?,
            },
            OP_LI => RvInst::Li {
                rd: Reg(get(word, 7, 6) as u8),
                imm: get_imm(word, 13, 18, pool, at)?,
            },
            OP_LB..=9 => RvInst::Load {
                op: LOAD_OPS[(op - OP_LB) as usize],
                rd: Reg(get(word, 7, 6) as u8),
                base: Reg(get(word, 13, 6) as u8),
                offset: get_imm32(word, 19, 12, pool, at)?,
            },
            OP_SB..=13 => RvInst::Store {
                op: STORE_OPS[(op - OP_SB) as usize],
                rs: Reg(get(word, 7, 6) as u8),
                base: Reg(get(word, 13, 6) as u8),
                offset: get_imm32(word, 19, 12, pool, at)?,
            },
            OP_BEQ..=19 => RvInst::Branch {
                cond: BR_CONDS[(op - OP_BEQ) as usize],
                rs1: Reg(get(word, 7, 6) as u8),
                rs2: Reg(get(word, 13, 6) as u8),
                target: target(get_imm(word, 19, 12, pool, at)?)?,
            },
            OP_JUMP => RvInst::Jump {
                target: target(get_imm(word, 7, 24, pool, at)?)?,
            },
            OP_CALL => RvInst::Call {
                rd: Reg(get(word, 7, 6) as u8),
                target: target(get_imm(word, 13, 18, pool, at)?)?,
            },
            OP_JUMPREG => {
                req_zero(word, 13, 19, at)?;
                RvInst::JumpReg {
                    rs: Reg(get(word, 7, 6) as u8),
                }
            }
            OP_CALLREG => {
                req_zero(word, 19, 13, at)?;
                RvInst::CallReg {
                    rd: Reg(get(word, 7, 6) as u8),
                    rs: Reg(get(word, 13, 6) as u8),
                }
            }
            OP_MV => {
                req_zero(word, 19, 13, at)?;
                RvInst::Mv {
                    rd: Reg(get(word, 7, 6) as u8),
                    rs: Reg(get(word, 13, 6) as u8),
                }
            }
            OP_NOP => {
                req_zero(word, 7, 25, at)?;
                RvInst::Nop
            }
            OP_HALT => {
                req_zero(word, 13, 19, at)?;
                RvInst::Halt {
                    rs: Reg(get(word, 7, 6) as u8),
                }
            }
            _ => return Err(DecodeError::BadOpcode { at, word }),
        })
    }
}

fn encode16(i: &RvInst, disp: i64) -> Result<u32, EncodeError> {
    let mut w = 0u32;
    match *i {
        RvInst::Alu { op, rd, rs2, .. } => {
            // Quadrant 00: destructive two-address form, rd == rs1.
            put(&mut w, 2, 3, calu_funct(op).unwrap());
            put(&mut w, 5, 5, reg5(rd).unwrap());
            put(&mut w, 10, 5, reg5(rs2).unwrap());
        }
        RvInst::Mv { rd, rs } => {
            w = 0b01;
            put(&mut w, 2, 3, C_MV);
            put(&mut w, 5, 5, reg5(rd).unwrap());
            put(&mut w, 10, 5, reg5(rs).unwrap());
        }
        RvInst::Li { rd, imm } => {
            w = 0b01;
            put(&mut w, 2, 3, C_LI);
            put(&mut w, 5, 5, reg5(rd).unwrap());
            put_signed(&mut w, 10, 6, imm);
        }
        RvInst::AluImm { rd, imm, .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_ADDI);
            put(&mut w, 5, 5, reg5(rd).unwrap());
            put_signed(&mut w, 10, 6, imm as i64);
        }
        RvInst::Load {
            rd, base, offset, ..
        } => {
            w = 0b01;
            put(&mut w, 2, 3, C_LD);
            put(&mut w, 5, 5, reg5(rd).unwrap());
            put(&mut w, 10, 5, reg5(base).unwrap());
            put(&mut w, 15, 1, offset as u32 / 8);
        }
        RvInst::Store {
            rs, base, offset, ..
        } => {
            w = 0b01;
            put(&mut w, 2, 3, C_SD);
            put(&mut w, 5, 5, reg5(rs).unwrap());
            put(&mut w, 10, 5, reg5(base).unwrap());
            put(&mut w, 15, 1, offset as u32 / 8);
        }
        RvInst::Branch { cond, rs1, .. } => {
            w = 0b01;
            let c = if cond == BrCond::Eq { C_BEQZ } else { C_BNEZ };
            put(&mut w, 2, 3, c);
            put(&mut w, 5, 5, reg5(rs1).unwrap());
            put_signed(&mut w, 10, 6, disp);
        }
        RvInst::Jump { .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_J);
            put_signed(&mut w, 5, 11, disp);
        }
        RvInst::Nop => {
            w = 0b10;
            put(&mut w, 2, 3, C_NOP);
        }
        RvInst::Halt { rs } => {
            w = 0b10;
            put(&mut w, 2, 3, C_HALT);
            put(&mut w, 5, 5, reg5(rs).unwrap());
        }
        RvInst::JumpReg { rs } => {
            w = 0b10;
            put(&mut w, 2, 3, C_JR);
            put(&mut w, 5, 5, reg5(rs).unwrap());
        }
        _ => unreachable!("has_compact admitted a 32-bit-only instruction"),
    }
    Ok(w)
}

fn decode16(
    word: u32,
    at: usize,
    target: &mut dyn FnMut(i64) -> Result<u32, DecodeError>,
) -> Result<RvInst, DecodeError> {
    match word & 0b11 {
        0b00 => {
            req_zero(word, 15, 1, at)?;
            let rd = Reg(get(word, 5, 5) as u8);
            Ok(RvInst::Alu {
                op: CALU_FUNCT[get(word, 2, 3) as usize],
                rd,
                rs1: rd,
                rs2: Reg(get(word, 10, 5) as u8),
            })
        }
        0b01 => Ok(match get(word, 2, 3) {
            C_MV => {
                req_zero(word, 15, 1, at)?;
                RvInst::Mv {
                    rd: Reg(get(word, 5, 5) as u8),
                    rs: Reg(get(word, 10, 5) as u8),
                }
            }
            C_LI => RvInst::Li {
                rd: Reg(get(word, 5, 5) as u8),
                imm: get_signed(word, 10, 6),
            },
            C_ADDI => {
                let rd = Reg(get(word, 5, 5) as u8);
                RvInst::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: get_signed(word, 10, 6) as i32,
                }
            }
            C_LD => RvInst::Load {
                op: LoadOp::Ld,
                rd: Reg(get(word, 5, 5) as u8),
                base: Reg(get(word, 10, 5) as u8),
                offset: (get(word, 15, 1) * 8) as i32,
            },
            C_SD => RvInst::Store {
                op: StoreOp::Sd,
                rs: Reg(get(word, 5, 5) as u8),
                base: Reg(get(word, 10, 5) as u8),
                offset: (get(word, 15, 1) * 8) as i32,
            },
            C_BEQZ | C_BNEZ => RvInst::Branch {
                cond: if get(word, 2, 3) == C_BEQZ {
                    BrCond::Eq
                } else {
                    BrCond::Ne
                },
                rs1: Reg(get(word, 5, 5) as u8),
                rs2: Reg(0),
                target: target(get_signed(word, 10, 6))?,
            },
            C_J => RvInst::Jump {
                target: target(get_signed(word, 5, 11))?,
            },
            _ => unreachable!("3-bit compact opcode"),
        }),
        0b10 => match get(word, 2, 3) {
            C_NOP => {
                req_zero(word, 5, 11, at)?;
                Ok(RvInst::Nop)
            }
            C_HALT => {
                req_zero(word, 10, 6, at)?;
                Ok(RvInst::Halt {
                    rs: Reg(get(word, 5, 5) as u8),
                })
            }
            C_JR => {
                req_zero(word, 10, 6, at)?;
                Ok(RvInst::JumpReg {
                    rs: Reg(get(word, 5, 5) as u8),
                })
            }
            _ => Err(DecodeError::BadOpcode { at, word }),
        },
        _ => unreachable!("0b11 is a 32-bit unit"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::EncodingVariant;

    fn sample() -> Vec<RvInst> {
        vec![
            RvInst::Li {
                rd: Reg(10),
                imm: 3,
            },
            RvInst::Li {
                rd: Reg(42),
                imm: 0x7fff_0000_1234,
            },
            RvInst::Alu {
                op: AluOp::Add,
                rd: Reg(10),
                rs1: Reg(10),
                rs2: Reg(11),
            },
            RvInst::Alu {
                op: AluOp::Fdiv,
                rd: Reg(60),
                rs1: Reg(61),
                rs2: Reg(62),
            },
            RvInst::AluImm {
                op: AluOp::Add,
                rd: Reg(10),
                rs1: Reg(10),
                imm: 24,
            },
            RvInst::AluImm {
                op: AluOp::Slt,
                rd: Reg(33),
                rs1: Reg(40),
                imm: -900,
            },
            RvInst::Load {
                op: LoadOp::Ld,
                rd: Reg(5),
                base: Reg(2),
                offset: 8,
            },
            RvInst::Load {
                op: LoadOp::Lwu,
                rd: Reg(50),
                base: Reg(2),
                offset: 100_000,
            },
            RvInst::Store {
                op: StoreOp::Sd,
                rs: Reg(5),
                base: Reg(2),
                offset: 0,
            },
            RvInst::Store {
                op: StoreOp::Sb,
                rs: Reg(6),
                base: Reg(40),
                offset: -3,
            },
            RvInst::Branch {
                cond: BrCond::Eq,
                rs1: Reg(10),
                rs2: Reg(0),
                target: 2,
            },
            RvInst::Branch {
                cond: BrCond::Lt,
                rs1: Reg(10),
                rs2: Reg(45),
                target: 0,
            },
            RvInst::Call {
                rd: Reg(1),
                target: 14,
            },
            RvInst::CallReg {
                rd: Reg(1),
                rs: Reg(5),
            },
            RvInst::Jump { target: 15 },
            RvInst::Mv {
                rd: Reg(8),
                rs: Reg(9),
            },
            RvInst::Nop,
            RvInst::JumpReg { rs: Reg(1) },
            RvInst::Halt { rs: Reg(10) },
        ]
    }

    #[test]
    fn roundtrip_both_variants() {
        let insts = sample();
        for variant in EncodingVariant::ALL {
            let enc = crate::encode_riscv(&insts, variant).unwrap();
            let back = crate::decode_riscv(&enc.bytes, &enc.pool).unwrap();
            assert_eq!(back, insts, "{variant}");
        }
    }

    #[test]
    fn compressed_is_denser() {
        let insts = sample();
        let enc = crate::encode_riscv(&insts, EncodingVariant::Compressed).unwrap();
        assert!(enc.layout.compact_count() >= 8, "{:?}", enc.layout.sizes);
        assert!(enc.bytes.len() < 4 * insts.len());
    }

    #[test]
    fn out_of_range_register_is_an_encode_error() {
        let err = crate::encode_riscv(
            &[RvInst::Mv {
                rd: Reg(64),
                rs: Reg(0),
            }],
            EncodingVariant::Fixed,
        )
        .unwrap_err();
        assert!(matches!(err, EncodeError::BadSrc { at: 0 }), "{err:?}");
    }

    #[test]
    fn three_address_alu_never_compresses() {
        // rd != rs1 has no destructive compact form.
        let i = RvInst::Alu {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3),
        };
        assert!(!Rv::has_compact(&i));
    }
}
