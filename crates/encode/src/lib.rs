//! Bit-accurate binary instruction encodings and byte-level code layout.
//!
//! The rest of the workspace treats programs as `Vec<Inst>` with an
//! abstract program counter of `TEXT_BASE + 4 * index`. That is exactly
//! right for dataflow, but it erases the paper's *code density* story:
//! Clockhands source operands are a 2-bit hand plus a short distance,
//! while STRAIGHT needs wide distance fields and a conventional RISC
//! needs full register specifiers. This crate makes the comparison
//! measurable by giving each of the three ISAs a concrete binary format
//! and a byte-accurate layout:
//!
//! * a **fixed-width** 32-bit format per ISA (every instruction four
//!   bytes, PCs identical to the abstract layout), and
//! * a **compressed** variant per ISA mixing 16- and 32-bit forms under
//!   the RVC length-tag convention (low bit pair `0b11` marks a 32-bit
//!   unit), with branch relaxation re-run to a fixpoint when shortened
//!   code pulls targets into or out of compact displacement range.
//!
//! Immediates that do not fit their inline field spill to a per-program
//! **literal pool** of deduplicated 64-bit constants (an escape flag in
//! each immediate field selects inline vs. pool index), so encoding is
//! total over the workspace's instruction streams rather than failing
//! on large constants. [`Layout`] reports the resulting byte PCs so the
//! simulator's fetch path and the density experiment can consume real
//! instruction sizes; [`relocate_trace`] rewrites a committed trace
//! from abstract PCs to laid-out PCs.
//!
//! `encode_*`/`decode_*` round-trip bit-for-bit: `decode(encode(p)) ==
//! p` for every encodable program, and decoding arbitrary bytes either
//! yields instructions or a structured [`DecodeError`] — never a panic.

use ch_common::inst::DynInst;
use ch_common::EncodingVariant;

mod bits;
// The Clockhands codec module cannot be *named* `clockhands` — that
// would shadow the `clockhands` crate whose instructions it encodes.
#[path = "clockhands.rs"]
mod clockhands_codec;
mod riscv;
mod straight;
mod stream;

/// Base address of the text section — matches the abstract layout used
/// by `clockhands::program` and `ch_baselines::prog`.
pub const TEXT_BASE: u64 = 0x1_0000;

/// Byte-accurate code layout: per-instruction sizes and PCs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Encoded size in bytes of each instruction (2 or 4).
    pub sizes: Vec<u8>,
    /// Byte PC of each instruction, plus one end-of-text sentinel, so
    /// `pcs` has `sizes.len() + 1` entries and branch targets of
    /// "one past the last instruction" stay addressable.
    pub pcs: Vec<u64>,
}

impl Layout {
    /// Byte PC of instruction `index` (the end sentinel is reachable).
    pub fn pc_of(&self, index: usize) -> u64 {
        self.pcs[index]
    }

    /// Total text-section size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.pcs[self.sizes.len()] - TEXT_BASE
    }

    /// How many instructions took the 16-bit form.
    pub fn compact_count(&self) -> usize {
        self.sizes.iter().filter(|&&s| s == 2).count()
    }

    /// Maps an abstract PC (`TEXT_BASE + 4 * index`) to the laid-out
    /// byte PC. The end-of-text address maps to the end sentinel.
    pub fn relocate_pc(&self, abstract_pc: u64) -> u64 {
        self.pcs[((abstract_pc - TEXT_BASE) / 4) as usize]
    }
}

/// An encoded program: code bytes, literal pool, and layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedProgram {
    /// Which variant the program was encoded under.
    pub variant: EncodingVariant,
    /// The laid-out little-endian code bytes.
    pub bytes: Vec<u8>,
    /// Deduplicated 64-bit literal-pool values referenced by
    /// pool-escaped immediate fields.
    pub pool: Vec<u64>,
    /// Per-instruction sizes and byte PCs.
    pub layout: Layout,
}

impl EncodedProgram {
    /// Static code footprint: text bytes plus the literal pool (eight
    /// bytes per pooled constant) — the numerator of bytes/instruction.
    pub fn static_bytes(&self) -> u64 {
        self.bytes.len() as u64 + 8 * self.pool.len() as u64
    }
}

/// An instruction stream that cannot be expressed in the binary format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A source specifier is outside the format's range (e.g. a
    /// register number ≥ 64, or a hand distance past the ring depth).
    BadSrc {
        /// Index of the offending instruction.
        at: u32,
    },
    /// A control-transfer target points outside the program.
    BadTarget {
        /// Index of the offending instruction.
        at: u32,
        /// The out-of-range target index.
        target: u32,
    },
    /// The literal pool outgrew an immediate field's index space.
    PoolFull {
        /// Index of the instruction that overflowed the pool.
        at: u32,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EncodeError::BadSrc { at } => {
                write!(
                    f,
                    "instruction {at}: source specifier out of encoding range"
                )
            }
            EncodeError::BadTarget { at, target } => {
                write!(
                    f,
                    "instruction {at}: branch target {target} outside program"
                )
            }
            EncodeError::PoolFull { at } => {
                write!(f, "instruction {at}: literal pool index field overflowed")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A byte stream that is not a well-formed encoded program.
///
/// Every variant carries the byte offset it was detected at; decoding
/// never panics on truncated or garbage input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ends in the middle of an instruction unit.
    Truncated {
        /// Byte offset of the incomplete unit.
        at: usize,
    },
    /// An undefined major or compact opcode.
    BadOpcode {
        /// Byte offset of the unit.
        at: usize,
        /// The offending unit (low half for 16-bit units).
        word: u32,
    },
    /// A bit pattern in a must-be-zero field (reserved encoding).
    Reserved {
        /// Byte offset of the unit.
        at: usize,
        /// The offending unit.
        word: u32,
    },
    /// A source specifier pattern with no architectural meaning.
    BadSrc {
        /// Byte offset of the unit.
        at: usize,
        /// The offending unit.
        word: u32,
    },
    /// A displacement that lands outside the text section or inside
    /// an instruction unit.
    BadTarget {
        /// Byte offset of the transferring unit.
        at: usize,
    },
    /// A pool-escaped immediate indexing past the literal pool.
    BadPool {
        /// Byte offset of the unit.
        at: usize,
        /// The out-of-range pool index.
        index: u32,
    },
    /// A pooled value too wide for a 32-bit immediate operand.
    BadImm {
        /// Byte offset of the unit.
        at: usize,
        /// The offending unit.
        word: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DecodeError::Truncated { at } => {
                write!(f, "byte {at}: stream truncated mid-instruction")
            }
            DecodeError::BadOpcode { at, word } => {
                write!(f, "byte {at}: undefined opcode in unit {word:#010x}")
            }
            DecodeError::Reserved { at, word } => {
                write!(f, "byte {at}: reserved bits set in unit {word:#010x}")
            }
            DecodeError::BadSrc { at, word } => {
                write!(
                    f,
                    "byte {at}: meaningless source specifier in unit {word:#010x}"
                )
            }
            DecodeError::BadTarget { at } => {
                write!(
                    f,
                    "byte {at}: branch displacement lands off an instruction boundary"
                )
            }
            DecodeError::BadPool { at, index } => {
                write!(f, "byte {at}: literal pool index {index} out of range")
            }
            DecodeError::BadImm { at, word } => {
                write!(
                    f,
                    "byte {at}: pooled immediate too wide for unit {word:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes a Clockhands instruction stream under `variant`.
pub fn encode_clockhands(
    insts: &[::clockhands::inst::Inst],
    variant: EncodingVariant,
) -> Result<EncodedProgram, EncodeError> {
    let (bytes, pool, layout) = stream::encode_stream::<clockhands_codec::Ch>(insts, variant)?;
    Ok(EncodedProgram {
        variant,
        bytes,
        pool,
        layout,
    })
}

/// Decodes Clockhands code bytes back into instructions.
pub fn decode_clockhands(
    bytes: &[u8],
    pool: &[u64],
) -> Result<Vec<::clockhands::inst::Inst>, DecodeError> {
    stream::decode_stream::<clockhands_codec::Ch>(bytes, pool)
}

/// Encodes a STRAIGHT instruction stream under `variant`.
pub fn encode_straight(
    insts: &[ch_baselines::straight::StInst],
    variant: EncodingVariant,
) -> Result<EncodedProgram, EncodeError> {
    let (bytes, pool, layout) = stream::encode_stream::<straight::St>(insts, variant)?;
    Ok(EncodedProgram {
        variant,
        bytes,
        pool,
        layout,
    })
}

/// Decodes STRAIGHT code bytes back into instructions.
pub fn decode_straight(
    bytes: &[u8],
    pool: &[u64],
) -> Result<Vec<ch_baselines::straight::StInst>, DecodeError> {
    stream::decode_stream::<straight::St>(bytes, pool)
}

/// Encodes a RISC-V-style instruction stream under `variant`.
pub fn encode_riscv(
    insts: &[ch_baselines::riscv::RvInst],
    variant: EncodingVariant,
) -> Result<EncodedProgram, EncodeError> {
    let (bytes, pool, layout) = stream::encode_stream::<riscv::Rv>(insts, variant)?;
    Ok(EncodedProgram {
        variant,
        bytes,
        pool,
        layout,
    })
}

/// Decodes RISC-V-style code bytes back into instructions.
pub fn decode_riscv(
    bytes: &[u8],
    pool: &[u64],
) -> Result<Vec<ch_baselines::riscv::RvInst>, DecodeError> {
    stream::decode_stream::<riscv::Rv>(bytes, pool)
}

/// Rewrites a committed trace from abstract PCs (`TEXT_BASE + 4i`) to
/// the laid-out byte PCs of `layout`, filling in real instruction
/// sizes and relocating taken-branch targets that point into the text
/// section. Targets outside the text section (there are none today,
/// but indirect targets are forwarded untouched as a guard) pass
/// through unchanged.
pub fn relocate_trace(trace: &mut [DynInst], layout: &Layout) {
    let end = TEXT_BASE + 4 * layout.sizes.len() as u64;
    let in_text = |pc: u64| pc >= TEXT_BASE && pc <= end && pc.is_multiple_of(4);
    for d in trace.iter_mut() {
        debug_assert!(in_text(d.pc), "trace pc {:#x} outside text", d.pc);
        let idx = ((d.pc - TEXT_BASE) / 4) as usize;
        d.pc = layout.pcs[idx];
        d.size = layout.sizes[idx];
        if let Some(ctrl) = d.ctrl.as_mut() {
            if in_text(ctrl.target) {
                ctrl.target = layout.relocate_pc(ctrl.target);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::inst::CtrlKind;
    use ch_common::op::OpClass;

    #[test]
    fn text_base_matches_abstract_layouts() {
        assert_eq!(TEXT_BASE, ::clockhands::program::TEXT_BASE);
        assert_eq!(TEXT_BASE, ch_baselines::prog::TEXT_BASE);
    }

    #[test]
    fn truncated_and_garbage_streams_are_structured_errors() {
        // One dangling byte.
        assert!(matches!(
            decode_clockhands(&[0x03], &[]),
            Err(DecodeError::Truncated { at: 0 })
        ));
        // A 32-bit length tag with only a halfword behind it.
        assert!(matches!(
            decode_riscv(&[0x03, 0x00], &[]),
            Err(DecodeError::Truncated { at: 0 })
        ));
        // An undefined 32-bit opcode: STRAIGHT has no register-indirect
        // call, so OP_CALLREG is unassigned there.
        let bad = (bits::OP_CALLREG << 2) | 0b11;
        assert!(matches!(
            decode_straight(&bad.to_le_bytes(), &[]),
            Err(DecodeError::BadOpcode { at: 0, .. })
        ));
        // Fuzz a window of byte soup: anything goes except a panic.
        for seed in 0u32..512 {
            let mut x = seed.wrapping_mul(2654435761).wrapping_add(1);
            let bytes: Vec<u8> = (0..10)
                .map(|_| {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 24) as u8
                })
                .collect();
            let _ = decode_clockhands(&bytes, &[]);
            let _ = decode_straight(&bytes, &[1, 2]);
            let _ = decode_riscv(&bytes, &[]);
        }
    }

    #[test]
    fn relocate_trace_rewrites_pcs_sizes_and_targets() {
        let layout = Layout {
            sizes: vec![2, 4, 2, 2],
            pcs: vec![
                TEXT_BASE,
                TEXT_BASE + 2,
                TEXT_BASE + 6,
                TEXT_BASE + 8,
                TEXT_BASE + 10,
            ],
        };
        let mut trace = vec![
            DynInst::new(0, TEXT_BASE + 4, OpClass::IntAlu),
            DynInst::new(1, TEXT_BASE + 8, OpClass::Jump).with_ctrl(
                CtrlKind::Jump,
                true,
                TEXT_BASE,
            ),
            // A jump to one-past-the-end resolves to the sentinel.
            DynInst::new(2, TEXT_BASE + 12, OpClass::Jump).with_ctrl(
                CtrlKind::Jump,
                true,
                TEXT_BASE + 16,
            ),
        ];
        relocate_trace(&mut trace, &layout);
        assert_eq!(trace[0].pc, TEXT_BASE + 2);
        assert_eq!(trace[0].size, 4);
        assert_eq!(trace[1].pc, TEXT_BASE + 6);
        assert_eq!(trace[1].size, 2);
        assert_eq!(trace[1].ctrl.unwrap().target, TEXT_BASE);
        assert_eq!(trace[2].ctrl.unwrap().target, TEXT_BASE + 10);
    }

    #[test]
    fn layout_metrics() {
        let layout = Layout {
            sizes: vec![2, 4, 2],
            pcs: vec![TEXT_BASE, TEXT_BASE + 2, TEXT_BASE + 6, TEXT_BASE + 8],
        };
        assert_eq!(layout.total_bytes(), 8);
        assert_eq!(layout.compact_count(), 2);
        assert_eq!(layout.relocate_pc(TEXT_BASE + 8), TEXT_BASE + 6);
    }
}
