//! The STRAIGHT bit formats: 8-bit distance specifiers (distances up
//! to 127, plus dedicated zero and stack-pointer encodings) in the
//! 32-bit form, and 5-bit specifiers (distances up to 30) in the
//! 16-bit compact forms. The wide source fields are the ISA's cost of
//! rename-freedom without hands — the density experiment quantifies
//! what Clockhands' 6-bit specifiers buy back.

use crate::bits::*;
use crate::stream::Codec;
use crate::{DecodeError, EncodeError};
use ch_baselines::straight::{StInst, StSrc};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};

/// 8-bit source: 0 = zero, 1–127 = distance, 128 = stack pointer.
const SRC8_SP: u32 = 128;

fn src8(s: StSrc, at: u32) -> Result<u32, EncodeError> {
    match s {
        StSrc::Zero => Ok(0),
        StSrc::Sp => Ok(SRC8_SP),
        StSrc::Dist(d) => {
            if d == 0 || d > 127 {
                return Err(EncodeError::BadSrc { at });
            }
            Ok(d as u32)
        }
    }
}

fn src_from8(v: u32, at: usize, word: u32) -> Result<StSrc, DecodeError> {
    match v {
        0 => Ok(StSrc::Zero),
        1..=127 => Ok(StSrc::Dist(v as u8)),
        SRC8_SP => Ok(StSrc::Sp),
        _ => Err(DecodeError::BadSrc { at, word }),
    }
}

/// 5-bit compact source: 0 = zero, 1–30 = distance, 31 = stack pointer.
fn src5(s: StSrc) -> Option<u32> {
    match s {
        StSrc::Zero => Some(0),
        StSrc::Sp => Some(31),
        StSrc::Dist(d) if (1..=30).contains(&d) => Some(d as u32),
        StSrc::Dist(_) => None,
    }
}

fn src_from5(v: u32) -> StSrc {
    match v {
        0 => StSrc::Zero,
        31 => StSrc::Sp,
        d => StSrc::Dist(d as u8),
    }
}

// 16-bit quadrant-01 compact opcodes.
const C_MV: u32 = 0;
const C_LI: u32 = 1;
const C_ADDI: u32 = 2;
const C_LD: u32 = 3;
const C_SD: u32 = 4;
const C_BEQZ: u32 = 5;
const C_BNEZ: u32 = 6;
const C_J: u32 = 7;
// Quadrant-10 compact opcodes.
const C_NOP: u32 = 0;
const C_HALT: u32 = 1;
const C_JR: u32 = 2;
const C_SPADDI: u32 = 3;

pub(crate) struct St;

impl Codec for St {
    type Inst = StInst;

    fn target(i: &StInst) -> Option<u32> {
        match *i {
            StInst::Branch { target, .. } | StInst::Jump { target } | StInst::Call { target } => {
                Some(target)
            }
            _ => None,
        }
    }

    fn has_compact(i: &StInst) -> bool {
        match *i {
            StInst::Alu { op, src1, src2 } => {
                calu_funct(op).is_some() && src5(src1).is_some() && src5(src2).is_some()
            }
            StInst::AluImm {
                op: AluOp::Add,
                src1,
                imm,
            } => src5(src1).is_some() && fits_signed(imm as i64, 6),
            StInst::Li { imm } => fits_signed(imm, 11),
            StInst::Load {
                op: LoadOp::Ld,
                base,
                offset,
            } => src5(base).is_some() && (0..=504).contains(&offset) && offset % 8 == 0,
            StInst::Store {
                value,
                base,
                offset,
                op: StoreOp::Sd,
            } => src5(value).is_some() && src5(base).is_some() && offset == 0,
            StInst::Branch {
                cond: BrCond::Eq | BrCond::Ne,
                src1,
                src2: StSrc::Zero,
                ..
            } => src5(src1).is_some(),
            StInst::SpAddi { imm } => fits_signed(imm as i64, 9),
            StInst::Jump { .. }
            | StInst::JumpReg { .. }
            | StInst::Mv { .. }
            | StInst::Nop
            | StInst::Halt { .. } => true,
            _ => false,
        }
    }

    fn compact_disp_bits(i: &StInst) -> u32 {
        match *i {
            StInst::Branch { .. } => 6,
            _ => 11, // C.J
        }
    }

    fn encode(
        i: &StInst,
        size: u8,
        disp: i64,
        pool: &mut Pool,
        at: u32,
    ) -> Result<u32, EncodeError> {
        if size == 2 {
            return encode16(i, disp, at);
        }
        let mut w;
        match *i {
            StInst::Alu { op, src1, src2 } => {
                w = word32(OP_ALU);
                put(&mut w, 7, 6, alu_funct(op));
                put(&mut w, 13, 8, src8(src1, at)?);
                put(&mut w, 21, 8, src8(src2, at)?);
            }
            StInst::AluImm { op, src1, imm } => match imm_opcode(op) {
                Some(opc) => {
                    w = word32(opc);
                    put(&mut w, 7, 8, src8(src1, at)?);
                    put_imm(&mut w, 15, 16, imm as i64, pool, at)?;
                }
                None => {
                    w = word32(OP_ALUIMM);
                    put(&mut w, 7, 6, alu_funct(op));
                    put(&mut w, 13, 8, src8(src1, at)?);
                    put_imm(&mut w, 21, 10, imm as i64, pool, at)?;
                }
            },
            StInst::Li { imm } => {
                w = word32(OP_LI);
                put_imm(&mut w, 7, 24, imm, pool, at)?;
            }
            StInst::Load { op, base, offset } => {
                w = word32(load_opcode(op));
                put(&mut w, 7, 8, src8(base, at)?);
                put_imm(&mut w, 15, 16, offset as i64, pool, at)?;
            }
            StInst::Store {
                value,
                base,
                offset,
                op,
            } => {
                w = word32(store_opcode(op));
                put(&mut w, 7, 8, src8(value, at)?);
                put(&mut w, 15, 8, src8(base, at)?);
                put_imm(&mut w, 23, 8, offset as i64, pool, at)?;
            }
            StInst::Branch {
                cond, src1, src2, ..
            } => {
                w = word32(branch_opcode(cond));
                put(&mut w, 7, 8, src8(src1, at)?);
                put(&mut w, 15, 8, src8(src2, at)?);
                put_imm(&mut w, 23, 8, disp, pool, at)?;
            }
            StInst::Jump { .. } => {
                w = word32(OP_JUMP);
                put_imm(&mut w, 7, 24, disp, pool, at)?;
            }
            StInst::Call { .. } => {
                w = word32(OP_CALL);
                put_imm(&mut w, 7, 24, disp, pool, at)?;
            }
            StInst::JumpReg { src } => {
                w = word32(OP_JUMPREG);
                put(&mut w, 7, 8, src8(src, at)?);
            }
            StInst::SpAddi { imm } => {
                w = word32(OP_SPADDI);
                put_imm(&mut w, 7, 24, imm as i64, pool, at)?;
            }
            StInst::Mv { src } => {
                w = word32(OP_MV);
                put(&mut w, 7, 8, src8(src, at)?);
            }
            StInst::Nop => {
                w = word32(OP_NOP);
            }
            StInst::Halt { src } => {
                w = word32(OP_HALT);
                put(&mut w, 7, 8, src8(src, at)?);
            }
        }
        Ok(w)
    }

    fn decode(
        word: u32,
        size: u8,
        at: usize,
        target: &mut dyn FnMut(i64) -> Result<u32, DecodeError>,
        pool: &[u64],
    ) -> Result<StInst, DecodeError> {
        if size == 2 {
            return decode16(word, at, target);
        }
        let op = opcode(word);
        Ok(match op {
            OP_ALU => {
                req_zero(word, 29, 3, at)?;
                StInst::Alu {
                    op: alu_from_funct(get(word, 7, 6), at, word)?,
                    src1: src_from8(get(word, 13, 8), at, word)?,
                    src2: src_from8(get(word, 21, 8), at, word)?,
                }
            }
            OP_ALUIMM => StInst::AluImm {
                op: alu_from_funct(get(word, 7, 6), at, word)?,
                src1: src_from8(get(word, 13, 8), at, word)?,
                imm: get_imm32(word, 21, 10, pool, at)?,
            },
            OP_ADDI | OP_ANDI | OP_ORI | OP_XORI => StInst::AluImm {
                op: imm_op(op).unwrap(),
                src1: src_from8(get(word, 7, 8), at, word)?,
                imm: get_imm32(word, 15, 16, pool, at)?,
            },
            OP_LI => StInst::Li {
                imm: get_imm(word, 7, 24, pool, at)?,
            },
            OP_LB..=9 => StInst::Load {
                op: LOAD_OPS[(op - OP_LB) as usize],
                base: src_from8(get(word, 7, 8), at, word)?,
                offset: get_imm32(word, 15, 16, pool, at)?,
            },
            OP_SB..=13 => StInst::Store {
                value: src_from8(get(word, 7, 8), at, word)?,
                base: src_from8(get(word, 15, 8), at, word)?,
                offset: get_imm32(word, 23, 8, pool, at)?,
                op: STORE_OPS[(op - OP_SB) as usize],
            },
            OP_BEQ..=19 => StInst::Branch {
                cond: BR_CONDS[(op - OP_BEQ) as usize],
                src1: src_from8(get(word, 7, 8), at, word)?,
                src2: src_from8(get(word, 15, 8), at, word)?,
                target: target(get_imm(word, 23, 8, pool, at)?)?,
            },
            OP_JUMP => StInst::Jump {
                target: target(get_imm(word, 7, 24, pool, at)?)?,
            },
            OP_CALL => StInst::Call {
                target: target(get_imm(word, 7, 24, pool, at)?)?,
            },
            OP_JUMPREG => {
                req_zero(word, 15, 17, at)?;
                StInst::JumpReg {
                    src: src_from8(get(word, 7, 8), at, word)?,
                }
            }
            OP_SPADDI => StInst::SpAddi {
                imm: get_imm32(word, 7, 24, pool, at)?,
            },
            OP_MV => {
                req_zero(word, 15, 17, at)?;
                StInst::Mv {
                    src: src_from8(get(word, 7, 8), at, word)?,
                }
            }
            OP_NOP => {
                req_zero(word, 7, 25, at)?;
                StInst::Nop
            }
            OP_HALT => {
                req_zero(word, 15, 17, at)?;
                StInst::Halt {
                    src: src_from8(get(word, 7, 8), at, word)?,
                }
            }
            _ => return Err(DecodeError::BadOpcode { at, word }),
        })
    }
}

fn encode16(i: &StInst, disp: i64, at: u32) -> Result<u32, EncodeError> {
    let mut w = 0u32;
    match *i {
        StInst::Alu { op, src1, src2 } => {
            // Quadrant 00.
            put(&mut w, 2, 3, calu_funct(op).unwrap());
            put(&mut w, 5, 5, src5(src1).unwrap());
            put(&mut w, 10, 5, src5(src2).unwrap());
        }
        StInst::Mv { src } => {
            w = 0b01;
            put(&mut w, 2, 3, C_MV);
            put(&mut w, 5, 8, src8(src, at)?);
        }
        StInst::Li { imm } => {
            w = 0b01;
            put(&mut w, 2, 3, C_LI);
            put_signed(&mut w, 5, 11, imm);
        }
        StInst::AluImm { src1, imm, .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_ADDI);
            put(&mut w, 5, 5, src5(src1).unwrap());
            put_signed(&mut w, 10, 6, imm as i64);
        }
        StInst::Load { base, offset, .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_LD);
            put(&mut w, 5, 5, src5(base).unwrap());
            put(&mut w, 10, 6, offset as u32 / 8);
        }
        StInst::Store { value, base, .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_SD);
            put(&mut w, 5, 5, src5(value).unwrap());
            put(&mut w, 10, 5, src5(base).unwrap());
        }
        StInst::Branch { cond, src1, .. } => {
            w = 0b01;
            let c = if cond == BrCond::Eq { C_BEQZ } else { C_BNEZ };
            put(&mut w, 2, 3, c);
            put(&mut w, 5, 5, src5(src1).unwrap());
            put_signed(&mut w, 10, 6, disp);
        }
        StInst::Jump { .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_J);
            put_signed(&mut w, 5, 11, disp);
        }
        StInst::Nop => {
            w = 0b10;
            put(&mut w, 2, 3, C_NOP);
        }
        StInst::Halt { src } => {
            w = 0b10;
            put(&mut w, 2, 3, C_HALT);
            put(&mut w, 5, 8, src8(src, at)?);
        }
        StInst::JumpReg { src } => {
            w = 0b10;
            put(&mut w, 2, 3, C_JR);
            put(&mut w, 5, 8, src8(src, at)?);
        }
        StInst::SpAddi { imm } => {
            w = 0b10;
            put(&mut w, 2, 3, C_SPADDI);
            put_signed(&mut w, 5, 9, imm as i64);
        }
        _ => unreachable!("has_compact admitted a 32-bit-only instruction"),
    }
    Ok(w)
}

fn decode16(
    word: u32,
    at: usize,
    target: &mut dyn FnMut(i64) -> Result<u32, DecodeError>,
) -> Result<StInst, DecodeError> {
    match word & 0b11 {
        0b00 => {
            req_zero(word, 15, 1, at)?;
            Ok(StInst::Alu {
                op: CALU_FUNCT[get(word, 2, 3) as usize],
                src1: src_from5(get(word, 5, 5)),
                src2: src_from5(get(word, 10, 5)),
            })
        }
        0b01 => Ok(match get(word, 2, 3) {
            C_MV => {
                req_zero(word, 13, 3, at)?;
                StInst::Mv {
                    src: src_from8(get(word, 5, 8), at, word)?,
                }
            }
            C_LI => StInst::Li {
                imm: get_signed(word, 5, 11),
            },
            C_ADDI => StInst::AluImm {
                op: AluOp::Add,
                src1: src_from5(get(word, 5, 5)),
                imm: get_signed(word, 10, 6) as i32,
            },
            C_LD => StInst::Load {
                op: LoadOp::Ld,
                base: src_from5(get(word, 5, 5)),
                offset: (get(word, 10, 6) * 8) as i32,
            },
            C_SD => {
                req_zero(word, 15, 1, at)?;
                StInst::Store {
                    value: src_from5(get(word, 5, 5)),
                    base: src_from5(get(word, 10, 5)),
                    offset: 0,
                    op: StoreOp::Sd,
                }
            }
            C_BEQZ | C_BNEZ => StInst::Branch {
                cond: if get(word, 2, 3) == C_BEQZ {
                    BrCond::Eq
                } else {
                    BrCond::Ne
                },
                src1: src_from5(get(word, 5, 5)),
                src2: StSrc::Zero,
                target: target(get_signed(word, 10, 6))?,
            },
            C_J => StInst::Jump {
                target: target(get_signed(word, 5, 11))?,
            },
            _ => unreachable!("3-bit compact opcode"),
        }),
        0b10 => match get(word, 2, 3) {
            C_NOP => {
                req_zero(word, 5, 11, at)?;
                Ok(StInst::Nop)
            }
            C_HALT => {
                req_zero(word, 13, 3, at)?;
                Ok(StInst::Halt {
                    src: src_from8(get(word, 5, 8), at, word)?,
                })
            }
            C_JR => {
                req_zero(word, 13, 3, at)?;
                Ok(StInst::JumpReg {
                    src: src_from8(get(word, 5, 8), at, word)?,
                })
            }
            C_SPADDI => {
                req_zero(word, 14, 2, at)?;
                Ok(StInst::SpAddi {
                    imm: get_signed(word, 5, 9) as i32,
                })
            }
            _ => Err(DecodeError::BadOpcode { at, word }),
        },
        _ => unreachable!("0b11 is a 32-bit unit"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::EncodingVariant;

    fn sample() -> Vec<StInst> {
        vec![
            StInst::Li { imm: 42 },
            StInst::Li {
                imm: -0x7654_3210_fedc,
            },
            StInst::Alu {
                op: AluOp::Add,
                src1: StSrc::Dist(1),
                src2: StSrc::Dist(2),
            },
            StInst::Alu {
                op: AluOp::Mulw,
                src1: StSrc::Dist(90),
                src2: StSrc::Sp,
            },
            StInst::AluImm {
                op: AluOp::Add,
                src1: StSrc::Dist(1),
                imm: -7,
            },
            StInst::AluImm {
                op: AluOp::Sra,
                src1: StSrc::Dist(120),
                imm: 100_000,
            },
            StInst::Load {
                op: LoadOp::Ld,
                base: StSrc::Sp,
                offset: 32,
            },
            StInst::Load {
                op: LoadOp::Lh,
                base: StSrc::Dist(3),
                offset: -2,
            },
            StInst::Store {
                value: StSrc::Dist(1),
                base: StSrc::Sp,
                offset: 0,
                op: StoreOp::Sd,
            },
            StInst::Store {
                value: StSrc::Dist(2),
                base: StSrc::Dist(99),
                offset: 1000,
                op: StoreOp::Sw,
            },
            StInst::Branch {
                cond: BrCond::Ne,
                src1: StSrc::Dist(1),
                src2: StSrc::Zero,
                target: 2,
            },
            StInst::Branch {
                cond: BrCond::Geu,
                src1: StSrc::Dist(77),
                src2: StSrc::Dist(3),
                target: 0,
            },
            StInst::SpAddi { imm: -16 },
            StInst::SpAddi { imm: 100_000 },
            StInst::Call { target: 16 },
            StInst::Jump { target: 16 },
            StInst::Mv {
                src: StSrc::Dist(101),
            },
            StInst::JumpReg {
                src: StSrc::Dist(1),
            },
            StInst::Nop,
            StInst::Halt {
                src: StSrc::Dist(1),
            },
        ]
    }

    #[test]
    fn roundtrip_both_variants() {
        let insts = sample();
        for variant in EncodingVariant::ALL {
            let enc = crate::encode_straight(&insts, variant).unwrap();
            let back = crate::decode_straight(&enc.bytes, &enc.pool).unwrap();
            assert_eq!(back, insts, "{variant}");
        }
    }

    #[test]
    fn compressed_is_denser() {
        let insts = sample();
        let enc = crate::encode_straight(&insts, EncodingVariant::Compressed).unwrap();
        assert!(enc.layout.compact_count() >= 8, "{:?}", enc.layout.sizes);
        assert!(enc.bytes.len() < 4 * insts.len());
    }

    #[test]
    fn distance_128_is_rejected_as_a_source_pattern() {
        // 0b1000_0000 decodes as Sp; 129.. is reserved.
        let mut w = word32(OP_MV);
        put(&mut w, 7, 8, 200);
        let err = crate::decode_straight(&w.to_le_bytes(), &[]).unwrap_err();
        assert!(matches!(err, DecodeError::BadSrc { at: 0, .. }), "{err:?}");
    }
}
