//! The Clockhands bit formats: 6-bit `(hand, distance)` source
//! specifiers in the 32-bit form, and 4-bit `(hand, distance ≤ 3)`
//! specifiers in the 16-bit compact forms — the paper's density
//! argument made concrete. A source is two hand bits plus four distance
//! bits; the all-ones pattern (`s[15]`) is the hardwired zero register,
//! exactly as in Section 4.5.

use crate::bits::*;
use crate::stream::Codec;
use crate::{DecodeError, EncodeError};
use clockhands::hand::Hand;
use clockhands::inst::{Inst, Src};

/// The `s[15]` encoding: the hardwired zero register.
const SRC_ZERO: u32 = 0b11_1111;

/// 6-bit source specifier: `hand << 4 | distance`, zero = `0b11_1111`.
fn src6(s: Src, at: u32) -> Result<u32, EncodeError> {
    match s {
        Src::Zero => Ok(SRC_ZERO),
        Src::Hand(h, d) => {
            if d > h.max_src_distance() {
                return Err(EncodeError::BadSrc { at });
            }
            Ok(((h.index() as u32) << 4) | d as u32)
        }
    }
}

/// Inverse of [`src6`]. Every 6-bit pattern is meaningful (`s` at
/// distance 15 *is* the zero register), so this cannot fail.
fn src_from6(v: u32) -> Src {
    if v == SRC_ZERO {
        Src::Zero
    } else {
        Src::Hand(Hand::from_index((v >> 4) as usize), (v & 15) as u8)
    }
}

/// 4-bit compact source: `hand << 2 | distance`, distances 0–3 only
/// (Fig. 10: the overwhelming majority of references), no zero form.
fn src4(s: Src) -> Option<u32> {
    match s {
        Src::Hand(h, d) if d <= 3 => Some(((h.index() as u32) << 2) | d as u32),
        _ => None,
    }
}

fn src_from4(v: u32) -> Src {
    Src::Hand(Hand::from_index((v >> 2) as usize), (v & 3) as u8)
}

fn dst2(h: Hand) -> u32 {
    h.index() as u32
}

fn dst_from2(v: u32) -> Hand {
    Hand::from_index(v as usize)
}

// 16-bit quadrant-01 compact opcodes.
const C_MV: u32 = 0;
const C_LI: u32 = 1;
const C_ADDI: u32 = 2;
const C_LD: u32 = 3;
const C_SD: u32 = 4;
const C_BEQZ: u32 = 5;
const C_BNEZ: u32 = 6;
const C_J: u32 = 7;
// Quadrant-10 compact opcodes.
const C_NOP: u32 = 0;
const C_HALT: u32 = 1;
const C_JR: u32 = 2;

pub(crate) struct Ch;

impl Codec for Ch {
    type Inst = Inst;

    fn target(i: &Inst) -> Option<u32> {
        match *i {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target, .. } => {
                Some(target)
            }
            _ => None,
        }
    }

    fn has_compact(i: &Inst) -> bool {
        match *i {
            Inst::Alu { op, src1, src2, .. } => {
                calu_funct(op).is_some() && src4(src1).is_some() && src4(src2).is_some()
            }
            Inst::AluImm {
                op: ch_common::exec::AluOp::Add,
                src1,
                imm,
                ..
            } => src4(src1).is_some() && fits_signed(imm as i64, 5),
            Inst::Li { imm, .. } => fits_signed(imm, 9),
            Inst::Load {
                op: ch_common::exec::LoadOp::Ld,
                base,
                offset,
                ..
            } => src4(base).is_some() && (0..=248).contains(&offset) && offset % 8 == 0,
            Inst::Store {
                op: ch_common::exec::StoreOp::Sd,
                value,
                base,
                offset,
            } => {
                src4(value).is_some()
                    && src4(base).is_some()
                    && (0..=56).contains(&offset)
                    && offset % 8 == 0
            }
            Inst::Branch {
                cond: ch_common::exec::BrCond::Eq | ch_common::exec::BrCond::Ne,
                src1,
                src2: Src::Zero,
                ..
            } => src4(src1).is_some(),
            Inst::Jump { .. }
            | Inst::JumpReg { .. }
            | Inst::Mv { .. }
            | Inst::Nop
            | Inst::Halt { .. } => true,
            _ => false,
        }
    }

    fn compact_disp_bits(i: &Inst) -> u32 {
        match *i {
            Inst::Branch { .. } => 7,
            _ => 11, // C.J
        }
    }

    fn encode(i: &Inst, size: u8, disp: i64, pool: &mut Pool, at: u32) -> Result<u32, EncodeError> {
        if size == 2 {
            return encode16(i, disp, at);
        }
        let mut w;
        match *i {
            Inst::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                w = word32(OP_ALU);
                put(&mut w, 7, 6, alu_funct(op));
                put(&mut w, 13, 2, dst2(dst));
                put(&mut w, 15, 6, src6(src1, at)?);
                put(&mut w, 21, 6, src6(src2, at)?);
            }
            Inst::AluImm { op, dst, src1, imm } => match imm_opcode(op) {
                Some(opc) => {
                    w = word32(opc);
                    put(&mut w, 7, 2, dst2(dst));
                    put(&mut w, 9, 6, src6(src1, at)?);
                    put_imm(&mut w, 15, 16, imm as i64, pool, at)?;
                }
                None => {
                    w = word32(OP_ALUIMM);
                    put(&mut w, 7, 6, alu_funct(op));
                    put(&mut w, 13, 2, dst2(dst));
                    put(&mut w, 15, 6, src6(src1, at)?);
                    put_imm(&mut w, 21, 9, imm as i64, pool, at)?;
                }
            },
            Inst::Li { dst, imm } => {
                w = word32(OP_LI);
                put(&mut w, 7, 2, dst2(dst));
                put_imm(&mut w, 9, 22, imm, pool, at)?;
            }
            Inst::Load {
                op,
                dst,
                base,
                offset,
            } => {
                w = word32(load_opcode(op));
                put(&mut w, 7, 2, dst2(dst));
                put(&mut w, 9, 6, src6(base, at)?);
                put_imm(&mut w, 15, 16, offset as i64, pool, at)?;
            }
            Inst::Store {
                op,
                value,
                base,
                offset,
            } => {
                w = word32(store_opcode(op));
                put(&mut w, 7, 6, src6(value, at)?);
                put(&mut w, 13, 6, src6(base, at)?);
                put_imm(&mut w, 19, 12, offset as i64, pool, at)?;
            }
            Inst::Branch {
                cond, src1, src2, ..
            } => {
                w = word32(branch_opcode(cond));
                put(&mut w, 7, 6, src6(src1, at)?);
                put(&mut w, 13, 6, src6(src2, at)?);
                put_imm(&mut w, 19, 12, disp, pool, at)?;
            }
            Inst::Jump { .. } => {
                w = word32(OP_JUMP);
                put_imm(&mut w, 7, 24, disp, pool, at)?;
            }
            Inst::Call { dst, .. } => {
                w = word32(OP_CALL);
                put(&mut w, 7, 2, dst2(dst));
                put_imm(&mut w, 9, 22, disp, pool, at)?;
            }
            Inst::JumpReg { src } => {
                w = word32(OP_JUMPREG);
                put(&mut w, 7, 6, src6(src, at)?);
            }
            Inst::CallReg { dst, src } => {
                w = word32(OP_CALLREG);
                put(&mut w, 7, 2, dst2(dst));
                put(&mut w, 9, 6, src6(src, at)?);
            }
            Inst::Mv { dst, src } => {
                w = word32(OP_MV);
                put(&mut w, 7, 2, dst2(dst));
                put(&mut w, 9, 6, src6(src, at)?);
            }
            Inst::Nop => {
                w = word32(OP_NOP);
            }
            Inst::Halt { src } => {
                w = word32(OP_HALT);
                put(&mut w, 7, 6, src6(src, at)?);
            }
        }
        Ok(w)
    }

    fn decode(
        word: u32,
        size: u8,
        at: usize,
        target: &mut dyn FnMut(i64) -> Result<u32, DecodeError>,
        pool: &[u64],
    ) -> Result<Inst, DecodeError> {
        if size == 2 {
            return decode16(word, at, target);
        }
        let op = opcode(word);
        Ok(match op {
            OP_ALU => {
                req_zero(word, 27, 5, at)?;
                Inst::Alu {
                    op: alu_from_funct(get(word, 7, 6), at, word)?,
                    dst: dst_from2(get(word, 13, 2)),
                    src1: src_from6(get(word, 15, 6)),
                    src2: src_from6(get(word, 21, 6)),
                }
            }
            OP_ALUIMM => Inst::AluImm {
                op: alu_from_funct(get(word, 7, 6), at, word)?,
                dst: dst_from2(get(word, 13, 2)),
                src1: src_from6(get(word, 15, 6)),
                imm: get_imm32(word, 21, 9, pool, at)?,
            },
            OP_ADDI | OP_ANDI | OP_ORI | OP_XORI => Inst::AluImm {
                op: imm_op(op).unwrap(),
                dst: dst_from2(get(word, 7, 2)),
                src1: src_from6(get(word, 9, 6)),
                imm: get_imm32(word, 15, 16, pool, at)?,
            },
            OP_LI => Inst::Li {
                dst: dst_from2(get(word, 7, 2)),
                imm: get_imm(word, 9, 22, pool, at)?,
            },
            OP_LB..=9 => Inst::Load {
                op: LOAD_OPS[(op - OP_LB) as usize],
                dst: dst_from2(get(word, 7, 2)),
                base: src_from6(get(word, 9, 6)),
                offset: get_imm32(word, 15, 16, pool, at)?,
            },
            OP_SB..=13 => Inst::Store {
                op: STORE_OPS[(op - OP_SB) as usize],
                value: src_from6(get(word, 7, 6)),
                base: src_from6(get(word, 13, 6)),
                offset: get_imm32(word, 19, 12, pool, at)?,
            },
            OP_BEQ..=19 => Inst::Branch {
                cond: BR_CONDS[(op - OP_BEQ) as usize],
                src1: src_from6(get(word, 7, 6)),
                src2: src_from6(get(word, 13, 6)),
                target: target(get_imm(word, 19, 12, pool, at)?)?,
            },
            OP_JUMP => Inst::Jump {
                target: target(get_imm(word, 7, 24, pool, at)?)?,
            },
            OP_CALL => Inst::Call {
                dst: dst_from2(get(word, 7, 2)),
                target: target(get_imm(word, 9, 22, pool, at)?)?,
            },
            OP_JUMPREG => {
                req_zero(word, 13, 19, at)?;
                Inst::JumpReg {
                    src: src_from6(get(word, 7, 6)),
                }
            }
            OP_CALLREG => {
                req_zero(word, 15, 17, at)?;
                Inst::CallReg {
                    dst: dst_from2(get(word, 7, 2)),
                    src: src_from6(get(word, 9, 6)),
                }
            }
            OP_MV => {
                req_zero(word, 15, 17, at)?;
                Inst::Mv {
                    dst: dst_from2(get(word, 7, 2)),
                    src: src_from6(get(word, 9, 6)),
                }
            }
            OP_NOP => {
                req_zero(word, 7, 25, at)?;
                Inst::Nop
            }
            OP_HALT => {
                req_zero(word, 13, 19, at)?;
                Inst::Halt {
                    src: src_from6(get(word, 7, 6)),
                }
            }
            _ => return Err(DecodeError::BadOpcode { at, word }),
        })
    }
}

fn encode16(i: &Inst, disp: i64, at: u32) -> Result<u32, EncodeError> {
    let mut w = 0u32;
    match *i {
        Inst::Alu {
            op,
            dst,
            src1,
            src2,
        } => {
            // Quadrant 00.
            put(&mut w, 2, 3, calu_funct(op).unwrap());
            put(&mut w, 5, 2, dst2(dst));
            put(&mut w, 7, 4, src4(src1).unwrap());
            put(&mut w, 11, 4, src4(src2).unwrap());
        }
        Inst::Mv { dst, src } => {
            w = 0b01;
            put(&mut w, 2, 3, C_MV);
            put(&mut w, 5, 2, dst2(dst));
            put(&mut w, 7, 6, src6(src, at)?);
        }
        Inst::Li { dst, imm } => {
            w = 0b01;
            put(&mut w, 2, 3, C_LI);
            put(&mut w, 5, 2, dst2(dst));
            put_signed(&mut w, 7, 9, imm);
        }
        Inst::AluImm { dst, src1, imm, .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_ADDI);
            put(&mut w, 5, 2, dst2(dst));
            put(&mut w, 7, 4, src4(src1).unwrap());
            put_signed(&mut w, 11, 5, imm as i64);
        }
        Inst::Load {
            dst, base, offset, ..
        } => {
            w = 0b01;
            put(&mut w, 2, 3, C_LD);
            put(&mut w, 5, 2, dst2(dst));
            put(&mut w, 7, 4, src4(base).unwrap());
            put(&mut w, 11, 5, offset as u32 / 8);
        }
        Inst::Store {
            value,
            base,
            offset,
            ..
        } => {
            w = 0b01;
            put(&mut w, 2, 3, C_SD);
            put(&mut w, 5, 4, src4(value).unwrap());
            put(&mut w, 9, 4, src4(base).unwrap());
            put(&mut w, 13, 3, offset as u32 / 8);
        }
        Inst::Branch { cond, src1, .. } => {
            w = 0b01;
            let c = if cond == ch_common::exec::BrCond::Eq {
                C_BEQZ
            } else {
                C_BNEZ
            };
            put(&mut w, 2, 3, c);
            put(&mut w, 5, 4, src4(src1).unwrap());
            put_signed(&mut w, 9, 7, disp);
        }
        Inst::Jump { .. } => {
            w = 0b01;
            put(&mut w, 2, 3, C_J);
            put_signed(&mut w, 5, 11, disp);
        }
        Inst::Nop => {
            w = 0b10;
            put(&mut w, 2, 3, C_NOP);
        }
        Inst::Halt { src } => {
            w = 0b10;
            put(&mut w, 2, 3, C_HALT);
            put(&mut w, 5, 6, src6(src, at)?);
        }
        Inst::JumpReg { src } => {
            w = 0b10;
            put(&mut w, 2, 3, C_JR);
            put(&mut w, 5, 6, src6(src, at)?);
        }
        _ => unreachable!("has_compact admitted a 32-bit-only instruction"),
    }
    Ok(w)
}

fn decode16(
    word: u32,
    at: usize,
    target: &mut dyn FnMut(i64) -> Result<u32, DecodeError>,
) -> Result<Inst, DecodeError> {
    match word & 0b11 {
        0b00 => {
            req_zero(word, 15, 1, at)?;
            Ok(Inst::Alu {
                op: CALU_FUNCT[get(word, 2, 3) as usize],
                dst: dst_from2(get(word, 5, 2)),
                src1: src_from4(get(word, 7, 4)),
                src2: src_from4(get(word, 11, 4)),
            })
        }
        0b01 => Ok(match get(word, 2, 3) {
            C_MV => {
                req_zero(word, 13, 3, at)?;
                Inst::Mv {
                    dst: dst_from2(get(word, 5, 2)),
                    src: src_from6(get(word, 7, 6)),
                }
            }
            C_LI => Inst::Li {
                dst: dst_from2(get(word, 5, 2)),
                imm: get_signed(word, 7, 9),
            },
            C_ADDI => Inst::AluImm {
                op: ch_common::exec::AluOp::Add,
                dst: dst_from2(get(word, 5, 2)),
                src1: src_from4(get(word, 7, 4)),
                imm: get_signed(word, 11, 5) as i32,
            },
            C_LD => Inst::Load {
                op: ch_common::exec::LoadOp::Ld,
                dst: dst_from2(get(word, 5, 2)),
                base: src_from4(get(word, 7, 4)),
                offset: (get(word, 11, 5) * 8) as i32,
            },
            C_SD => Inst::Store {
                op: ch_common::exec::StoreOp::Sd,
                value: src_from4(get(word, 5, 4)),
                base: src_from4(get(word, 9, 4)),
                offset: (get(word, 13, 3) * 8) as i32,
            },
            C_BEQZ | C_BNEZ => Inst::Branch {
                cond: if get(word, 2, 3) == C_BEQZ {
                    ch_common::exec::BrCond::Eq
                } else {
                    ch_common::exec::BrCond::Ne
                },
                src1: src_from4(get(word, 5, 4)),
                src2: Src::Zero,
                target: target(get_signed(word, 9, 7))?,
            },
            C_J => Inst::Jump {
                target: target(get_signed(word, 5, 11))?,
            },
            _ => unreachable!("3-bit compact opcode"),
        }),
        0b10 => match get(word, 2, 3) {
            C_NOP => {
                req_zero(word, 5, 11, at)?;
                Ok(Inst::Nop)
            }
            C_HALT => {
                req_zero(word, 11, 5, at)?;
                Ok(Inst::Halt {
                    src: src_from6(get(word, 5, 6)),
                })
            }
            C_JR => {
                req_zero(word, 11, 5, at)?;
                Ok(Inst::JumpReg {
                    src: src_from6(get(word, 5, 6)),
                })
            }
            _ => Err(DecodeError::BadOpcode { at, word }),
        },
        _ => unreachable!("0b11 is a 32-bit unit"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
    use ch_common::EncodingVariant;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::Li {
                dst: Hand::T,
                imm: 5,
            },
            Inst::Li {
                dst: Hand::U,
                imm: 0x1234_5678_9abc,
            },
            Inst::Alu {
                op: AluOp::Add,
                dst: Hand::T,
                src1: Src::Hand(Hand::T, 0),
                src2: Src::Hand(Hand::U, 0),
            },
            Inst::AluImm {
                op: AluOp::Add,
                dst: Hand::T,
                src1: Src::Hand(Hand::T, 0),
                imm: -3,
            },
            Inst::AluImm {
                op: AluOp::Srl,
                dst: Hand::T,
                src1: Src::Hand(Hand::T, 15),
                imm: 700,
            },
            Inst::Load {
                op: LoadOp::Ld,
                dst: Hand::U,
                base: Src::Hand(Hand::S, 0),
                offset: 16,
            },
            Inst::Load {
                op: LoadOp::Lbu,
                dst: Hand::T,
                base: Src::Hand(Hand::U, 4),
                offset: -40000,
            },
            Inst::Store {
                op: StoreOp::Sd,
                value: Src::Hand(Hand::T, 1),
                base: Src::Hand(Hand::S, 0),
                offset: 24,
            },
            Inst::Branch {
                cond: BrCond::Ne,
                src1: Src::Hand(Hand::T, 0),
                src2: Src::Zero,
                target: 2,
            },
            Inst::Branch {
                cond: BrCond::Ltu,
                src1: Src::Hand(Hand::T, 2),
                src2: Src::Hand(Hand::V, 9),
                target: 0,
            },
            Inst::Call {
                dst: Hand::S,
                target: 12,
            },
            Inst::CallReg {
                dst: Hand::S,
                src: Src::Hand(Hand::V, 3),
            },
            Inst::Jump { target: 13 },
            Inst::Mv {
                dst: Hand::U,
                src: Src::Hand(Hand::V, 11),
            },
            Inst::Nop,
            Inst::JumpReg {
                src: Src::Hand(Hand::S, 0),
            },
            Inst::Halt { src: Src::Zero },
        ]
    }

    #[test]
    fn roundtrip_both_variants() {
        let insts = sample();
        for variant in EncodingVariant::ALL {
            let enc = crate::encode_clockhands(&insts, variant).unwrap();
            let back = crate::decode_clockhands(&enc.bytes, &enc.pool).unwrap();
            assert_eq!(back, insts, "{variant}");
        }
    }

    #[test]
    fn fixed_layout_is_abstract() {
        let insts = sample();
        let enc = crate::encode_clockhands(&insts, EncodingVariant::Fixed).unwrap();
        assert!(enc.layout.sizes.iter().all(|&s| s == 4));
        for (i, &pc) in enc.layout.pcs.iter().enumerate() {
            assert_eq!(pc, crate::TEXT_BASE + 4 * i as u64);
        }
        assert_eq!(enc.bytes.len(), 4 * insts.len());
    }

    #[test]
    fn compressed_is_denser() {
        let insts = sample();
        let enc = crate::encode_clockhands(&insts, EncodingVariant::Compressed).unwrap();
        assert!(enc.layout.compact_count() >= 8, "{:?}", enc.layout.sizes);
        assert!(enc.bytes.len() < 4 * insts.len());
        let back = crate::decode_clockhands(&enc.bytes, &enc.pool).unwrap();
        assert_eq!(back, insts);
    }

    #[test]
    fn zero_register_is_s15() {
        assert_eq!(src6(Src::Zero, 0).unwrap(), 0b11_1111);
        assert_eq!(src_from6(0b11_1111), Src::Zero);
        // s[14] is the deepest reachable s encoding.
        assert_eq!(src_from6(0b11_1110), Src::Hand(Hand::S, 14),);
        assert!(matches!(
            src6(Src::Hand(Hand::S, 15), 7),
            Err(EncodeError::BadSrc { at: 7 })
        ));
    }

    #[test]
    fn deep_branch_relaxes_to_32_bit() {
        // A compact-eligible branch whose target sits past the C.BEQZ
        // ±64-halfword reach must be promoted, and stay correct.
        let mut insts = vec![Inst::Branch {
            cond: BrCond::Eq,
            src1: Src::Hand(Hand::T, 0),
            src2: Src::Zero,
            target: 400,
        }];
        for _ in 0..400 {
            insts.push(Inst::Nop);
        }
        let enc = crate::encode_clockhands(&insts, EncodingVariant::Compressed).unwrap();
        assert_eq!(enc.layout.sizes[0], 4, "branch promoted");
        assert_eq!(enc.layout.sizes[1], 2, "nops stay compact");
        let back = crate::decode_clockhands(&enc.bytes, &enc.pool).unwrap();
        assert_eq!(back, insts);
    }
}
