//! Bit-field plumbing shared by the three codecs: field insertion and
//! extraction, signed-range checks, the opcode map, funct tables, and
//! the wide-immediate literal pool.
//!
//! All three ISAs share one 5-bit major-opcode space (Fig. 5 of the
//! paper: the ISAs share `opcode`/`funct` semantics and differ only in
//! operand specification), one dense `funct6` table over [`AluOp`], and
//! the same immediate-site convention: a 1-bit pool flag followed by an
//! `n`-bit field that holds either an `n`-bit signed inline value
//! (flag 0) or an unsigned index into the program's literal pool
//! (flag 1). Branch/jump displacement sites use the same convention, so
//! a displacement that outgrows its field spills to the pool instead of
//! failing to encode (ARM-style literal-pool addressing); only the
//! 16-bit compact forms, which have no pool flag, force relaxation.

use crate::{DecodeError, EncodeError};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use std::collections::HashMap;

/// All-ones mask of `width` bits.
pub const fn mask(width: u32) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    }
}

/// Inserts `value` into `word` at bits `[lo, lo + width)`.
pub fn put(word: &mut u32, lo: u32, width: u32, value: u32) {
    debug_assert!(
        value <= mask(width),
        "field overflow: {value:#x} in {width} bits"
    );
    *word |= value << lo;
}

/// Extracts bits `[lo, lo + width)` of `word`.
pub fn get(word: u32, lo: u32, width: u32) -> u32 {
    (word >> lo) & mask(width)
}

/// Whether `v` fits a two's-complement `bits`-bit field.
pub fn fits_signed(v: i64, bits: u32) -> bool {
    if bits >= 64 {
        return true;
    }
    let half = 1i64 << (bits - 1);
    (-half..half).contains(&v)
}

/// Inserts a signed value the caller has range-checked.
pub fn put_signed(word: &mut u32, lo: u32, width: u32, v: i64) {
    debug_assert!(fits_signed(v, width));
    put(word, lo, width, v as u32 & mask(width));
}

/// Extracts a sign-extended field.
pub fn get_signed(word: u32, lo: u32, width: u32) -> i64 {
    let raw = get(word, lo, width);
    ((raw << (32 - width)) as i32 >> (32 - width)) as i64
}

/// Requires bits `[lo, lo + width)` to be zero (reserved-field check,
/// so corrupted streams fail loudly instead of decoding silently).
pub fn req_zero(word: u32, lo: u32, width: u32, at: usize) -> Result<(), DecodeError> {
    if get(word, lo, width) == 0 {
        Ok(())
    } else {
        Err(DecodeError::Reserved { at, word })
    }
}

// ---------------------------------------------------------------------------
// Major opcodes (5 bits, at [6:2] of every 32-bit word).

pub const OP_ALU: u32 = 0;
pub const OP_ALUIMM: u32 = 1;
pub const OP_LI: u32 = 2;
/// Loads occupy `OP_LB..=OP_LB+6` in [`LOAD_OPS`] order.
pub const OP_LB: u32 = 3;
/// Stores occupy `OP_SB..=OP_SB+3` in [`STORE_OPS`] order.
pub const OP_SB: u32 = 10;
/// Branches occupy `OP_BEQ..=OP_BEQ+5` in [`BR_CONDS`] order.
pub const OP_BEQ: u32 = 14;
pub const OP_JUMP: u32 = 20;
pub const OP_CALL: u32 = 21;
pub const OP_JUMPREG: u32 = 22;
pub const OP_CALLREG: u32 = 23;
pub const OP_MV: u32 = 24;
pub const OP_NOP: u32 = 25;
pub const OP_HALT: u32 = 26;
/// STRAIGHT only: add-immediate to the special SP register.
pub const OP_SPADDI: u32 = 27;
/// Dedicated wide-immediate ALU opcodes for the four dominant
/// register-immediate operations (RISC-V gives `addi` its own major
/// opcode for the same reason: the generic funct-carrying form cannot
/// afford a useful immediate field).
pub const OP_ADDI: u32 = 28;
pub const OP_ANDI: u32 = 29;
pub const OP_ORI: u32 = 30;
pub const OP_XORI: u32 = 31;

/// Reads the major opcode of a 32-bit word.
pub fn opcode(word: u32) -> u32 {
    get(word, 2, 5)
}

/// Starts a 32-bit word: length tag `0b11` plus the major opcode.
pub fn word32(op: u32) -> u32 {
    let mut w = 0b11;
    put(&mut w, 2, 5, op);
    w
}

// ---------------------------------------------------------------------------
// Funct tables.

/// Dense `funct6` table over every [`AluOp`], in declaration order.
pub const ALU_FUNCT: [AluOp; 35] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Addw,
    AluOp::Subw,
    AluOp::Sllw,
    AluOp::Srlw,
    AluOp::Sraw,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
    AluOp::Mulw,
    AluOp::Divw,
    AluOp::Remw,
    AluOp::Fadd,
    AluOp::Fsub,
    AluOp::Fmul,
    AluOp::Fdiv,
    AluOp::Fmin,
    AluOp::Fmax,
    AluOp::Feq,
    AluOp::Flt,
    AluOp::Fle,
    AluOp::Fcvtdl,
    AluOp::Fcvtld,
    AluOp::Fmvdx,
];

/// The `funct6` code of an ALU operation.
pub fn alu_funct(op: AluOp) -> u32 {
    ALU_FUNCT.iter().position(|&o| o == op).unwrap() as u32
}

/// The ALU operation behind a `funct6` code.
pub fn alu_from_funct(f: u32, at: usize, word: u32) -> Result<AluOp, DecodeError> {
    ALU_FUNCT
        .get(f as usize)
        .copied()
        .ok_or(DecodeError::BadOpcode { at, word })
}

/// The eight operations expressible by the compact `funct3` of the
/// 16-bit register-register ALU form, most-frequent first.
pub const CALU_FUNCT: [AluOp; 8] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Mul,
];

/// The compact `funct3` of an ALU operation, if it has one.
pub fn calu_funct(op: AluOp) -> Option<u32> {
    CALU_FUNCT.iter().position(|&o| o == op).map(|p| p as u32)
}

/// Load operations in per-width opcode order (`OP_LB + index`).
pub const LOAD_OPS: [LoadOp; 7] = [
    LoadOp::Lb,
    LoadOp::Lh,
    LoadOp::Lw,
    LoadOp::Ld,
    LoadOp::Lbu,
    LoadOp::Lhu,
    LoadOp::Lwu,
];

/// Store operations in per-width opcode order (`OP_SB + index`).
pub const STORE_OPS: [StoreOp; 4] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw, StoreOp::Sd];

/// Branch conditions in per-condition opcode order (`OP_BEQ + index`).
pub const BR_CONDS: [BrCond; 6] = [
    BrCond::Eq,
    BrCond::Ne,
    BrCond::Lt,
    BrCond::Ge,
    BrCond::Ltu,
    BrCond::Geu,
];

/// `OP_LB + index` for a load operation.
pub fn load_opcode(op: LoadOp) -> u32 {
    OP_LB + LOAD_OPS.iter().position(|&o| o == op).unwrap() as u32
}

/// `OP_SB + index` for a store operation.
pub fn store_opcode(op: StoreOp) -> u32 {
    OP_SB + STORE_OPS.iter().position(|&o| o == op).unwrap() as u32
}

/// `OP_BEQ + index` for a branch condition.
pub fn branch_opcode(cond: BrCond) -> u32 {
    OP_BEQ + BR_CONDS.iter().position(|&c| c == cond).unwrap() as u32
}

/// The dedicated wide-immediate opcode for an ALU-immediate operation,
/// if it has one (`addi`/`andi`/`ori`/`xori`).
pub fn imm_opcode(op: AluOp) -> Option<u32> {
    match op {
        AluOp::Add => Some(OP_ADDI),
        AluOp::And => Some(OP_ANDI),
        AluOp::Or => Some(OP_ORI),
        AluOp::Xor => Some(OP_XORI),
        _ => None,
    }
}

/// The ALU-immediate operation behind a dedicated opcode.
pub fn imm_op(opcode: u32) -> Option<AluOp> {
    match opcode {
        OP_ADDI => Some(AluOp::Add),
        OP_ANDI => Some(AluOp::And),
        OP_ORI => Some(AluOp::Or),
        OP_XORI => Some(AluOp::Xor),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Literal pool.

/// The deduplicated literal pool a program's wide immediates spill into.
///
/// Values are stored as raw 64-bit words (two's complement for signed
/// immediates and displacements); the byte cost — eight bytes per entry
/// — is charged to the program's static code size by the density
/// experiment, so spilling is honest, not free.
#[derive(Debug, Default)]
pub struct Pool {
    /// Pool entries in first-use order.
    pub values: Vec<u64>,
    index: HashMap<u64, u32>,
}

impl Pool {
    /// An empty pool.
    pub fn new() -> Pool {
        Pool::default()
    }

    /// Returns the index of `v`, interning it on first use. Fails if the
    /// index no longer fits the referencing site's `index_bits` field.
    pub fn intern(&mut self, v: u64, index_bits: u32, at: u32) -> Result<u32, EncodeError> {
        let next = self.values.len() as u32;
        let idx = *self.index.entry(v).or_insert_with(|| {
            self.values.push(v);
            next
        });
        if idx <= mask(index_bits) {
            Ok(idx)
        } else {
            Err(EncodeError::PoolFull { at })
        }
    }
}

/// Encodes an immediate site at `[lo]` (pool flag) + `[lo+1, lo+1+width)`:
/// inline when the value fits `width` signed bits, else a pool reference.
pub fn put_imm(
    word: &mut u32,
    lo: u32,
    width: u32,
    v: i64,
    pool: &mut Pool,
    at: u32,
) -> Result<(), EncodeError> {
    if fits_signed(v, width) {
        put_signed(word, lo + 1, width, v);
    } else {
        let idx = pool.intern(v as u64, width, at)?;
        put(word, lo, 1, 1);
        put(word, lo + 1, width, idx);
    }
    Ok(())
}

/// Decodes an immediate site written by [`put_imm`].
pub fn get_imm(
    word: u32,
    lo: u32,
    width: u32,
    pool: &[u64],
    at: usize,
) -> Result<i64, DecodeError> {
    if get(word, lo, 1) == 0 {
        Ok(get_signed(word, lo + 1, width))
    } else {
        let index = get(word, lo + 1, width);
        pool.get(index as usize)
            .map(|&v| v as i64)
            .ok_or(DecodeError::BadPool { at, index })
    }
}

/// [`get_imm`] narrowed to the `i32` immediate fields, rejecting pool
/// entries that cannot have been produced by an `i32` site.
pub fn get_imm32(
    word: u32,
    lo: u32,
    width: u32,
    pool: &[u64],
    at: usize,
) -> Result<i32, DecodeError> {
    let v = get_imm(word, lo, width, pool, at)?;
    i32::try_from(v).map_err(|_| DecodeError::BadImm { at, word })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_roundtrip() {
        let mut w = 0u32;
        put(&mut w, 7, 6, 0b10_1101);
        put(&mut w, 13, 2, 3);
        assert_eq!(get(w, 7, 6), 0b10_1101);
        assert_eq!(get(w, 13, 2), 3);
        assert_eq!(get(w, 0, 7), 0);
    }

    #[test]
    fn signed_fields_sign_extend() {
        let mut w = 0u32;
        put_signed(&mut w, 9, 13, -5);
        assert_eq!(get_signed(w, 9, 13), -5);
        assert!(fits_signed(-4096, 13));
        assert!(!fits_signed(4096, 13));
        assert!(fits_signed(4095, 13));
        assert!(fits_signed(i64::MIN, 64));
    }

    #[test]
    fn funct_tables_are_dense_and_injective() {
        for (i, &op) in ALU_FUNCT.iter().enumerate() {
            assert_eq!(alu_funct(op), i as u32);
        }
        assert!(ALU_FUNCT.len() <= 64, "funct6 budget");
        for &op in &CALU_FUNCT {
            assert_eq!(CALU_FUNCT[calu_funct(op).unwrap() as usize], op);
        }
        assert_eq!(load_opcode(LoadOp::Lwu), OP_LB + 6);
        assert_eq!(store_opcode(StoreOp::Sd), OP_SB + 3);
        assert_eq!(branch_opcode(BrCond::Geu), OP_BEQ + 5);
        assert!(branch_opcode(BrCond::Geu) < OP_JUMP);
    }

    #[test]
    fn pool_interns_and_bounds() {
        let mut p = Pool::new();
        assert_eq!(p.intern(42, 8, 0).unwrap(), 0);
        assert_eq!(p.intern(7, 8, 0).unwrap(), 1);
        assert_eq!(p.intern(42, 8, 0).unwrap(), 0, "deduplicated");
        assert_eq!(p.values, vec![42, 7]);
        let mut tiny = Pool::new();
        tiny.intern(1, 1, 0).unwrap();
        tiny.intern(2, 1, 0).unwrap();
        assert!(matches!(
            tiny.intern(3, 1, 5),
            Err(EncodeError::PoolFull { at: 5 })
        ));
    }

    #[test]
    fn imm_sites_spill_and_reload() {
        let mut pool = Pool::new();
        let mut w = 0u32;
        put_imm(&mut w, 9, 22, -77, &mut pool, 0).unwrap();
        assert_eq!(get_imm(w, 9, 22, &pool.values, 0).unwrap(), -77);
        assert!(pool.values.is_empty());

        let mut w2 = 0u32;
        let big = 1i64 << 40;
        put_imm(&mut w2, 9, 22, big, &mut pool, 0).unwrap();
        assert_eq!(get(w2, 9, 1), 1, "pool flag set");
        assert_eq!(get_imm(w2, 9, 22, &pool.values, 0).unwrap(), big);

        // A pool reference past the pool is a structured error.
        assert!(matches!(
            get_imm(w2, 9, 22, &[], 3),
            Err(DecodeError::BadPool { at: 3, index: 0 })
        ));
        assert!(matches!(
            get_imm32(w2, 9, 22, &pool.values, 3),
            Err(DecodeError::BadImm { .. })
        ));
    }
}
