//! Branch prediction: a TAGE conditional predictor (8 components,
//! geometric history lengths up to 130 bits — Table 2), a set-associative
//! branch target buffer, and a return address stack.

/// Number of tagged TAGE components.
const TAGE_TABLES: usize = 7;
/// Entries per tagged table (8 KiB budget across the predictor).
const TAGE_ENTRIES: usize = 512;
/// Bimodal base predictor entries.
const BIMODAL_ENTRIES: usize = 4096;
/// Geometric history lengths (min 4, max 130 per Table 2).
const HIST_LEN: [usize; TAGE_TABLES] = [4, 8, 15, 27, 44, 76, 130];

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    ctr: i8, // -4..=3 (taken if >= 0)
    useful: u8,
}

/// Global history as a fixed 192-bit shift register (bit 0 = most
/// recent outcome). The predictor only ever reads bits below the
/// longest history length (130), so the register is a drop-in for the
/// old unbounded bit deque: shifting in a new outcome moves every older
/// bit up by one, and bits shifted past the top were dead anyway.
#[derive(Debug, Clone, Copy, Default)]
struct HistoryBits {
    words: [u64; 3],
}

impl HistoryBits {
    #[inline]
    fn push(&mut self, taken: bool) {
        self.words[2] = (self.words[2] << 1) | (self.words[1] >> 63);
        self.words[1] = (self.words[1] << 1) | (self.words[0] >> 63);
        self.words[0] = (self.words[0] << 1) | taken as u64;
    }

    #[inline]
    fn get(self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }
}

/// A folded global-history register supporting O(1) updates.
#[derive(Debug, Clone)]
struct FoldedHistory {
    comp: u64,
    orig_len: usize,
    comp_len: usize,
}

impl FoldedHistory {
    fn new(orig_len: usize, comp_len: usize) -> Self {
        FoldedHistory {
            comp: 0,
            orig_len,
            comp_len,
        }
    }

    fn update(&mut self, new_bit: bool, evicted_bit: bool) {
        // Shift in the new bit, fold around comp_len, remove the evicted.
        self.comp = (self.comp << 1) | new_bit as u64;
        self.comp ^= (evicted_bit as u64) << (self.orig_len % self.comp_len);
        self.comp ^= self.comp >> self.comp_len;
        self.comp &= (1 << self.comp_len) - 1;
    }
}

/// The TAGE conditional branch predictor.
///
/// # Examples
///
/// ```
/// use ch_sim::tage::Tage;
///
/// let mut t = Tage::new();
/// // A strongly biased branch becomes predictable after brief training.
/// for _ in 0..64 {
///     let p = t.predict(0x4000);
///     t.update(0x4000, true, p);
/// }
/// assert!(t.predict(0x4000));
/// ```
#[derive(Debug, Clone)]
pub struct Tage {
    bimodal: Vec<i8>,
    tables: Vec<Vec<TageEntry>>,
    history: HistoryBits,
    folded_idx: Vec<FoldedHistory>,
    folded_tag: Vec<FoldedHistory>,
}

impl Default for Tage {
    fn default() -> Self {
        Tage::new()
    }
}

impl Tage {
    /// Creates a zero-trained predictor.
    pub fn new() -> Self {
        Tage {
            bimodal: vec![0; BIMODAL_ENTRIES],
            tables: vec![vec![TageEntry::default(); TAGE_ENTRIES]; TAGE_TABLES],
            history: HistoryBits::default(),
            folded_idx: HIST_LEN.iter().map(|&l| FoldedHistory::new(l, 9)).collect(),
            folded_tag: HIST_LEN
                .iter()
                .map(|&l| FoldedHistory::new(l, 11))
                .collect(),
        }
    }

    fn index(&self, pc: u64, t: usize) -> usize {
        let f = &self.folded_idx[t];
        ((pc >> 2) ^ (pc >> 11) ^ f.comp) as usize % TAGE_ENTRIES
    }

    fn tag(&self, pc: u64, t: usize) -> u16 {
        let f = &self.folded_tag[t];
        (((pc >> 2) ^ f.comp ^ (f.comp << 1)) & 0x7ff) as u16
    }

    /// Longest-matching component and its index, if any.
    fn provider(&self, pc: u64) -> Option<(usize, usize)> {
        for t in (0..TAGE_TABLES).rev() {
            let i = self.index(pc, t);
            if self.tables[t][i].tag == self.tag(pc, t) {
                return Some((t, i));
            }
        }
        None
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        match self.provider(pc) {
            Some((t, i)) => self.tables[t][i].ctr >= 0,
            None => self.bimodal[(pc >> 2) as usize % BIMODAL_ENTRIES] >= 0,
        }
    }

    /// Predicts and immediately trains on the resolved outcome,
    /// returning the prediction. Exactly equivalent to
    /// [`predict`](Tage::predict) followed by [`update`](Tage::update),
    /// but walks the tagged components for the provider only once — the
    /// simulator resolves every conditional branch the moment it
    /// predicts it, so the split API did the identical walk twice.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let provider = self.provider(pc);
        let predicted = match provider {
            Some((t, i)) => self.tables[t][i].ctr >= 0,
            None => self.bimodal[(pc >> 2) as usize % BIMODAL_ENTRIES] >= 0,
        };
        self.train(pc, taken, predicted, provider);
        predicted
    }

    /// Trains on the resolved outcome; `predicted` is what [`Tage::predict`]
    /// returned (used for allocation on mispredicts).
    pub fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        let provider = self.provider(pc);
        self.train(pc, taken, predicted, provider);
    }

    fn train(&mut self, pc: u64, taken: bool, predicted: bool, provider: Option<(usize, usize)>) {
        match provider {
            Some((t, i)) => {
                let e = &mut self.tables[t][i];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if predicted == taken && e.useful < 3 {
                    e.useful += 1;
                }
            }
            None => {
                let b = &mut self.bimodal[(pc >> 2) as usize % BIMODAL_ENTRIES];
                *b = (*b + if taken { 1 } else { -1 }).clamp(-2, 1);
            }
        }
        // Allocate a longer-history entry on a mispredict.
        if predicted != taken {
            let start = provider.map(|(t, _)| t + 1).unwrap_or(0);
            let mut allocated = false;
            for t in start..TAGE_TABLES {
                let i = self.index(pc, t);
                if self.tables[t][i].useful == 0 {
                    self.tables[t][i] = TageEntry {
                        tag: self.tag(pc, t),
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in start..TAGE_TABLES {
                    let i = self.index(pc, t);
                    let e = &mut self.tables[t][i];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        // Advance (folded) global history.
        self.history.push(taken);
        for (t, &hist_len) in HIST_LEN.iter().enumerate().take(TAGE_TABLES) {
            let evicted = self.history.get(hist_len);
            self.folded_idx[t].update(taken, evicted);
            self.folded_tag[t].update(taken, evicted);
        }
    }
}

/// Set-associative branch target buffer (Table 2: 4-way, 8192 entries).
///
/// Stored as one flat `(pc, target)` array of `sets × assoc` ways, each
/// row in LRU order (front = MRU) with `u64::MAX` tagging never-filled
/// ways — a fixed-size rotate replaces the old per-set `Vec` whose
/// remove/insert churn dominated the lookup cost. Replacement order is
/// identical: empty ways sit behind every real entry, so filling a
/// non-full set and evicting the true LRU are both "rotate the row right
/// and overwrite the front".
#[derive(Debug, Clone)]
pub struct Btb {
    ways: Vec<(u64, u64)>, // (pc, target); pc == u64::MAX marks an empty way
    sets: usize,
    /// `sets - 1` when `sets` is a power of two (mask instead of a
    /// divide per lookup); `usize::MAX` falls back to `%`.
    set_mask: usize,
    assoc: usize,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `assoc` ways.
    pub fn new(entries: usize, assoc: usize) -> Self {
        let sets = entries / assoc;
        Btb {
            ways: vec![(u64::MAX, 0); sets * assoc],
            sets,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                usize::MAX
            },
            assoc,
        }
    }

    fn row(&mut self, pc: u64) -> &mut [(u64, u64)] {
        let s = if self.set_mask != usize::MAX {
            ((pc >> 2) as usize) & self.set_mask
        } else {
            ((pc >> 2) as usize) % self.sets
        };
        &mut self.ways[s * self.assoc..(s + 1) * self.assoc]
    }

    /// Predicted target for the branch at `pc`, if present.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let row = self.row(pc);
        let i = row.iter().position(|&(p, _)| p == pc)?;
        row[..=i].rotate_right(1);
        Some(row[0].1)
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let row = self.row(pc);
        match row.iter().position(|&(p, _)| p == pc) {
            Some(i) => row[..=i].rotate_right(1),
            None => row.rotate_right(1),
        }
        row[0] = (pc, target);
    }
}

/// Return address stack (16 entries, Table 2).
#[derive(Debug, Clone, Default)]
pub struct Ras {
    stack: Vec<u64>,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS with the given capacity.
    pub fn new(capacity: usize) -> Self {
        Ras {
            stack: Vec::new(),
            capacity,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() >= self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address (on a return).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tage_learns_biased_branch() {
        let mut t = Tage::new();
        let mut wrong = 0;
        for _ in 0..200 {
            let p = t.predict(0x1234);
            if !p {
                wrong += 1;
            }
            t.update(0x1234, true, p);
        }
        assert!(
            wrong < 10,
            "got {wrong} mispredicts on an always-taken branch"
        );
    }

    #[test]
    fn tage_learns_alternating_pattern_with_history() {
        let mut t = Tage::new();
        let mut wrong_late = 0;
        for i in 0..2000u32 {
            let outcome = i % 2 == 0;
            let p = t.predict(0x8000);
            if p != outcome && i > 1000 {
                wrong_late += 1;
            }
            t.update(0x8000, outcome, p);
        }
        assert!(
            wrong_late < 50,
            "alternating pattern should be learned via history ({wrong_late} late misses)"
        );
    }

    #[test]
    fn tage_learns_loop_exit_pattern() {
        // taken 7 times, not-taken once, repeating (inner loop of 8).
        let mut t = Tage::new();
        let mut wrong_late = 0;
        for i in 0..4000u32 {
            let outcome = i % 8 != 7;
            let p = t.predict(0x2040);
            if p != outcome && i > 3000 {
                wrong_late += 1;
            }
            t.update(0x2040, outcome, p);
        }
        assert!(
            wrong_late < 100,
            "loop pattern should mostly be learned ({wrong_late})"
        );
    }

    #[test]
    fn btb_hits_after_install_and_replaces_lru() {
        let mut b = Btb::new(8, 2); // 4 sets × 2 ways
        assert_eq!(b.lookup(0x100), None);
        b.update(0x100, 0x900);
        assert_eq!(b.lookup(0x100), Some(0x900));
        // Two more conflicting entries evict the LRU.
        let s = |pc: u64| ((pc >> 2) as usize) % 4;
        let conflict1 = 0x100 + 4 * 4;
        let conflict2 = 0x100 + 8 * 4;
        assert_eq!(s(conflict1), s(0x100));
        b.update(conflict1, 0x1);
        b.lookup(0x100); // make 0x100 MRU
        b.update(conflict2, 0x2);
        assert_eq!(b.lookup(0x100), Some(0x900), "MRU survives");
        assert_eq!(b.lookup(conflict1), None, "LRU evicted");
    }

    #[test]
    fn ras_matches_call_return_nesting() {
        let mut r = Ras::new(4);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }
}
