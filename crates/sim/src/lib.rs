#![deny(missing_docs)]

//! # ch-sim — cycle-level out-of-order processor simulator
//!
//! The timing model behind the paper's Fig. 13/14 experiments: an
//! Onikiri2-class out-of-order core parametrised by the Table 2
//! configurations ([`ch_common::config::MachineConfig`]), driven by the
//! committed instruction stream of any of the three functional
//! interpreters (they all emit [`ch_common::inst::DynInst`]).
//!
//! Components:
//! * [`tage`] — TAGE conditional predictor, BTB, return address stack,
//! * [`cache`] — set-associative caches + stream prefetcher hierarchy,
//! * [`storeset`] — store-set memory dependence predictor,
//! * [`core`] — the pipeline scoreboard itself,
//! * [`trace`] — the observability layer: per-instruction pipeline
//!   tracing ([Konata](https://github.com/shioyadan/Konata) `.kanata`
//!   logs + JSONL) behind the zero-cost [`PipelineTracer`] hook.
//!
//! The per-ISA difference is exactly where the paper puts it: the
//! physical-register allocation stage (rename with RMT/free-list/DCL
//! events for RISC; register-pointer updates with ring wrap stalls for
//! STRAIGHT and Clockhands) and the front-end depth (7 vs 5 cycles).
//!
//! Alongside the event counters, every simulation produces a top-down
//! stall-attribution account ([`ch_common::stats::StallBreakdown`]):
//! each commit slot is either used by a committed instruction or blamed
//! on exactly one pipeline mechanism, so
//! `committed + stalls.attributed() == commit_width × cycles` holds
//! exactly. DESIGN.md § "Pipeline model" maps each counter to the stage
//! that raises it.

pub mod cache;
pub mod core;
pub mod engine;
pub mod storeset;
pub mod tage;
pub mod trace;

pub use crate::core::Simulator;
pub use crate::engine::{run_fast, run_fast_profiled, BranchProfile, FastEngine, SoaTrace};
pub use crate::trace::{
    CommitEntry, CommitLog, NullTracer, PipelineTracer, StageStamps, TraceBuffer, TraceRecord,
};
pub use ch_common::stats::Counters;

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::inst::DynInst;
use ch_common::IsaKind;

// Experiment drivers move simulations across worker threads; keep the
// simulator and its outputs thread-safe (compile-time audit).
const fn assert_send<T: Send>() {}
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send::<Simulator>();
const _: () = assert_send_sync::<Counters>();
const _: () = assert_send_sync::<DynInst>();

/// Convenience: simulate a stream on a Table 2 preset.
pub fn simulate(
    width: WidthClass,
    isa: IsaKind,
    stream: impl Iterator<Item = DynInst>,
) -> Counters {
    Simulator::new(MachineConfig::preset(width, isa)).run(stream)
}

/// Runs the reference (interpretive) engine over an already-committed
/// trace and returns its counters.
///
/// This is the cache-friendly entry point the experiment drivers and
/// the sweep service use: the trace is borrowed (typically out of an
/// `Arc<[DynInst]>` shared across worker threads and machine widths),
/// never consumed, so one decoded trace serves every configuration that
/// sweeps it. The fast path ([`run_fast`] / [`run_fast_profiled`]) has
/// the same shape over [`SoaTrace`]; the differential suite asserts the
/// two engines' counters are identical on every workload × ISA × width.
pub fn run_reference<'a>(
    cfg: MachineConfig,
    trace: impl IntoIterator<Item = &'a DynInst>,
) -> Counters {
    let mut sim = Simulator::new(cfg);
    for inst in trace {
        sim.step(inst);
    }
    sim.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockhands::asm::assemble;
    use clockhands::interp::Interpreter;

    fn run_ch(src: &str, width: WidthClass) -> Counters {
        let prog = assemble(src).expect("assembles");
        let mut cpu = Interpreter::new(prog).expect("valid");
        simulate(width, IsaKind::Clockhands, &mut cpu)
    }

    #[test]
    fn serial_dependency_chain_is_slow() {
        // A chain of dependent adds cannot exceed IPC 1.
        let mut src = String::from("li t, 0\n");
        for _ in 0..400 {
            src.push_str("addi t, t[0], 1\n");
        }
        src.push_str("halt t[0]");
        let c = run_ch(&src, WidthClass::W8);
        assert!(c.ipc() < 1.2, "dependent chain IPC was {}", c.ipc());
    }

    #[test]
    fn independent_work_reaches_high_ipc() {
        // Independent adds should fill the 8-wide machine's ALUs.
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("li t, {i}\n"));
        }
        // Every instruction reads the value four t-writes back: four
        // independent dependency chains interleaved.
        for _ in 0..200 {
            for _ in 0..4 {
                src.push_str("addi t, t[3], 1\n");
            }
        }
        src.push_str("halt t[0]");
        let c = run_ch(&src, WidthClass::W8);
        assert!(c.ipc() > 2.0, "independent stream IPC was {}", c.ipc());
    }

    #[test]
    fn loop_branch_is_predictable() {
        let predictable = "li v, 4000
             li t, 0
         .l: addi t, t[0], 1
             bne t[0], v[0], .l
             halt t[0]";
        let c = run_ch(predictable, WidthClass::W8);
        let rate = c.mispredict_rate();
        assert!(rate < 0.05, "loop branch should be predictable ({rate})");
    }

    #[test]
    fn cache_misses_cost_cycles() {
        // A 4 KiB-strided walk thrashes a handful of L1 sets; the control
        // walk hits one line every iteration.
        let src = "li v, 2000      # N
             li u, 4096      # base
             li u, 0         # i
         .l: slli t, u[0], 12
             add  t, t[0], u[1]
             ld   t, 0(t[0])
             addi u, u[0], 1
             bne  u[0], v[0], .l
             halt u[0]";
        let hit_src = "li v, 2000
             li u, 4096
             li u, 0
         .l: slli t, u[0], 0
             add  t, t[0], u[1]
             ld   t, 0(u[1])
             addi u, u[0], 1
             bne  u[0], v[0], .l
             halt u[0]";
        let miss = run_ch(src, WidthClass::W8);
        let hit = run_ch(hit_src, WidthClass::W8);
        assert!(
            miss.dcache_misses > hit.dcache_misses * 4,
            "misses {} vs {}",
            miss.dcache_misses,
            hit.dcache_misses
        );
        assert!(miss.cycles > hit.cycles);
    }

    #[test]
    fn rename_free_front_end_is_shorter() {
        use ch_baselines::riscv::asm::assemble as rv_assemble;
        use ch_baselines::riscv::interp::Interpreter as RvInterp;
        let ch_cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        let rv_cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Riscv);
        assert_eq!(rv_cfg.front_latency - ch_cfg.front_latency, 2);
        let prog = rv_assemble("li a0, 200\n.l:\naddi a0, a0, -1\nbne a0, zero, .l\nhalt a0")
            .expect("assembles");
        let mut cpu = RvInterp::new(prog).expect("valid");
        let c = Simulator::new(rv_cfg).run(&mut cpu);
        assert_eq!(c.committed, 401);
        assert!(
            c.rmt_reads > 0 && c.dcl_comparisons > 0,
            "rename events counted"
        );
    }

    #[test]
    fn wider_machines_are_not_slower() {
        let src = "li v, 3000
             li t, 0
             li u, 1
         .l: addi t, t[0], 1
             add  u, u[0], t[0]
             xor  u, u[1], t[0]
             and  u, u[1], u[2]
             bne  t[0], v[0], .l
             halt u[0]";
        let narrow = run_ch(src, WidthClass::W4);
        let wide = run_ch(src, WidthClass::W16);
        assert!(
            wide.cycles <= narrow.cycles + narrow.cycles / 10,
            "16-fetch ({}) should not be slower than 4-fetch ({})",
            wide.cycles,
            narrow.cycles
        );
    }

    #[test]
    fn store_to_load_forwarding_happens() {
        let src = "li v, 1000
             li u, 8192
             li t, 0
         .l: sd t[0], 0(u[0])
             ld t, 0(u[0])
             addi t, t[0], 1
             bne t[0], v[0], .l
             halt t[0]";
        let c = run_ch(src, WidthClass::W8);
        assert!(c.stl_forwards > 500, "forwards: {}", c.stl_forwards);
    }
}
