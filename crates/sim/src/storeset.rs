//! Store-set memory dependence predictor (Chrysos & Emer, Table 2:
//! 512 producers, 4096 store IDs).
//!
//! The SSIT maps instruction PCs to store-set IDs; the LFST tracks the
//! last fetched store of each set. A load whose PC maps to a valid set
//! waits for that store; a load that violates (executes before an older
//! overlapping store) trains a new set.

/// The store-set predictor.
#[derive(Debug, Clone)]
pub struct StoreSet {
    ssit: Vec<Option<u32>>, // pc -> store set id
    next_id: u32,
    ids: u32,
}

impl StoreSet {
    /// Creates a predictor with `producers` SSIT entries and `ids`
    /// possible store-set IDs.
    pub fn new(producers: u32, ids: u32) -> Self {
        StoreSet {
            ssit: vec![None; producers as usize],
            next_id: 0,
            ids,
        }
    }

    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) % self.ssit.len()
    }

    /// The store set the instruction at `pc` belongs to, if any.
    pub fn set_of(&self, pc: u64) -> Option<u32> {
        self.ssit[self.slot(pc)]
    }

    /// Trains on a detected memory-order violation between `load_pc` and
    /// `store_pc`: both are placed in the same set.
    pub fn train_violation(&mut self, load_pc: u64, store_pc: u64) {
        let existing = self.set_of(load_pc).or_else(|| self.set_of(store_pc));
        let id = existing.unwrap_or_else(|| {
            let id = self.next_id % self.ids;
            self.next_id += 1;
            id
        });
        let (ls, ss) = (self.slot(load_pc), self.slot(store_pc));
        self.ssit[ls] = Some(id);
        self.ssit[ss] = Some(id);
    }

    /// Whether a load at `load_pc` should wait for the store at
    /// `store_pc` (both mapped to the same valid set).
    pub fn must_wait(&self, load_pc: u64, store_pc: u64) -> bool {
        match (self.set_of(load_pc), self.set_of(store_pc)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_predicts_no_dependence() {
        let s = StoreSet::new(512, 4096);
        assert!(!s.must_wait(0x100, 0x200));
    }

    #[test]
    fn violation_trains_dependence() {
        let mut s = StoreSet::new(512, 4096);
        s.train_violation(0x100, 0x200);
        assert!(s.must_wait(0x100, 0x200));
        assert!(
            !s.must_wait(0x100, 0x300),
            "unrelated store stays independent"
        );
    }

    #[test]
    fn sets_merge_through_shared_members() {
        let mut s = StoreSet::new(512, 4096);
        s.train_violation(0x100, 0x200);
        s.train_violation(0x100, 0x300);
        assert!(s.must_wait(0x100, 0x300));
        // 0x300 joined 0x100's existing set.
        assert_eq!(s.set_of(0x200), s.set_of(0x300));
    }
}
