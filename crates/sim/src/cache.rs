//! Cache hierarchy: set-associative LRU caches with a stream prefetcher
//! (Table 2: 128 KiB L1I/L1D, 8 MiB L2, distance-8 degree-2 prefetch,
//! 80-cycle memory).

use ch_common::config::CacheConfig;

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // line tags, front = MRU
    assoc: usize,
    line_shift: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        Cache {
            sets: vec![Vec::new(); sets.max(1)],
            assoc: cfg.assoc as usize,
            line_shift: cfg.line.trailing_zeros(),
            latency: cfg.latency,
        }
    }

    /// The line-granular address of `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Accesses `addr`; returns whether it hit. Misses fill the line.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let s = (line as usize) % self.sets.len();
        let set = &mut self.sets[s];
        if let Some(i) = set.iter().position(|&l| l == line) {
            let l = set.remove(i);
            set.insert(0, l);
            true
        } else {
            if set.len() >= self.assoc {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }

    /// Installs a line without counting it as a demand access (prefetch).
    pub fn prefill(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let s = (line as usize) % self.sets.len();
        let set = &mut self.sets[s];
        if set.contains(&line) {
            return;
        }
        if set.len() >= self.assoc {
            set.pop();
        }
        set.insert(0, line);
    }
}

/// A stream prefetcher (distance 8, degree 2 per Table 2): detects
/// ascending or descending line streams and prefetches ahead.
#[derive(Debug, Clone, Default)]
pub struct StreamPrefetcher {
    streams: Vec<(u64, i64)>, // (last line, direction)
    distance: i64,
    degree: usize,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with the given look-ahead distance and degree.
    pub fn new(distance: u32, degree: u32) -> Self {
        StreamPrefetcher {
            streams: Vec::new(),
            distance: distance as i64,
            degree: degree as usize,
        }
    }

    /// Observes a miss line; returns the lines to prefetch.
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        // Match an existing stream (±1 of the last line).
        for (last, dir) in &mut self.streams {
            let delta = line as i64 - *last as i64;
            if delta == *dir || (delta.abs() == 1 && *dir == 0) {
                *dir = if delta >= 0 { 1 } else { -1 };
                *last = line;
                let d = *dir;
                let dist = self.distance;
                return (1..=self.degree as i64)
                    .map(|k| (line as i64 + d * (dist + k)) as u64)
                    .collect();
            }
        }
        if self.streams.len() >= 16 {
            self.streams.remove(0);
        }
        self.streams.push((line, 0));
        Vec::new()
    }
}

/// Outcome of a memory-hierarchy access (latency + event counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemAccessResult {
    /// Total access latency in cycles.
    pub latency: u32,
    /// Whether the L1 missed.
    pub l1_miss: bool,
    /// Whether the L2 was accessed and missed.
    pub l2_miss: bool,
    /// Prefetch requests issued.
    pub prefetches: u32,
}

/// L1 + shared L2 + memory, with a stream prefetcher on the L1D miss
/// stream.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// Shared L2.
    pub l2: Cache,
    prefetcher: StreamPrefetcher,
    mem_latency: u32,
}

impl MemHierarchy {
    /// Builds the data-side hierarchy from the machine configuration.
    pub fn new(
        l1: &CacheConfig,
        l2: &CacheConfig,
        mem_latency: u32,
        pf_dist: u32,
        pf_deg: u32,
    ) -> Self {
        MemHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            prefetcher: StreamPrefetcher::new(pf_dist, pf_deg),
            mem_latency,
        }
    }

    /// Performs a demand access, returning its latency and events.
    pub fn access(&mut self, addr: u64) -> MemAccessResult {
        let mut r = MemAccessResult {
            latency: self.l1.latency,
            ..Default::default()
        };
        if self.l1.access(addr) {
            return r;
        }
        r.l1_miss = true;
        r.latency += self.l2.latency;
        let line = self.l1.line_of(addr);
        for pf in self.prefetcher.observe(line) {
            let pf_addr = pf << self.l1.line_shift;
            // Prefetches fill L2 (and L1 for the near ones).
            self.l2.prefill(pf_addr);
            self.l1.prefill(pf_addr);
            r.prefetches += 1;
        }
        if self.l2.access(addr) {
            return r;
        }
        r.l2_miss = true;
        r.latency += self.mem_latency;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::config::CacheConfig;

    fn small() -> CacheConfig {
        CacheConfig {
            size: 1024,
            assoc: 2,
            line: 64,
            latency: 3,
        }
    }

    #[test]
    fn hit_after_miss() {
        let mut c = Cache::new(&small());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x140), "next line misses");
    }

    #[test]
    fn lru_eviction() {
        let mut c = Cache::new(&small()); // 8 sets × 2 ways
        let stride = 8 * 64; // same set
        assert!(!c.access(0));
        assert!(!c.access(stride));
        assert!(c.access(0));
        assert!(!c.access(2 * stride)); // evicts `stride` (LRU)
        assert!(c.access(0));
        assert!(!c.access(stride));
    }

    #[test]
    fn stream_prefetcher_detects_streams() {
        let mut p = StreamPrefetcher::new(8, 2);
        assert!(p.observe(100).is_empty(), "first touch trains only");
        let pf = p.observe(101);
        assert_eq!(pf, vec![110, 111], "ascending stream prefetches ahead");
        let mut pd = StreamPrefetcher::new(8, 2);
        pd.observe(200);
        let pf = pd.observe(199);
        assert_eq!(pf, vec![190, 189], "descending stream goes down");
    }

    #[test]
    fn hierarchy_latencies_compose() {
        let l2 = CacheConfig {
            size: 8192,
            assoc: 4,
            line: 64,
            latency: 12,
        };
        let mut m = MemHierarchy::new(&small(), &l2, 80, 8, 2);
        let first = m.access(0x4000);
        assert!(first.l1_miss && first.l2_miss);
        assert_eq!(first.latency, 3 + 12 + 80);
        let second = m.access(0x4000);
        assert_eq!(second.latency, 3);
        // L1-miss/L2-hit path: evict from tiny L1 by touching other sets.
        for i in 1..60 {
            m.access(0x4000 + i * 64);
        }
        let back = m.access(0x4000);
        assert!(
            back.latency == 3 || back.latency == 15,
            "got {}",
            back.latency
        );
    }

    #[test]
    fn sequential_walk_benefits_from_prefetch() {
        let l2 = CacheConfig {
            size: 1 << 20,
            assoc: 8,
            line: 64,
            latency: 12,
        };
        let mut m = MemHierarchy::new(&small(), &l2, 80, 4, 2);
        let mut misses_late = 0;
        for i in 0..256u64 {
            let r = m.access(i * 64);
            if i > 16 && r.l2_miss {
                misses_late += 1;
            }
        }
        assert!(
            misses_late < 200,
            "prefetcher should hide some of the stream"
        );
    }
}
