//! Cache hierarchy: set-associative LRU caches with a stream prefetcher
//! (Table 2: 128 KiB L1I/L1D, 8 MiB L2, distance-8 degree-2 prefetch,
//! 80-cycle memory).

use ch_common::config::CacheConfig;

/// One set-associative LRU cache level.
///
/// Tags live in one flat `sets × assoc` array, each row in LRU order
/// (front = MRU) with `u64::MAX` marking never-filled ways. A hit
/// rotates the matching prefix; a fill rotates the whole row and
/// overwrites the front — byte-identical replacement behaviour to a
/// per-set MRU list (empty ways always sit behind every real line), with
/// no per-set heap churn on the simulator's hottest path.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<u64>, // line tags; u64::MAX marks an empty way
    sets: usize,
    /// `sets - 1` when `sets` is a power of two (every preset config),
    /// letting set selection be a mask instead of a hardware divide on
    /// the simulator's hottest path; `usize::MAX` falls back to `%`.
    set_mask: usize,
    assoc: usize,
    line_shift: u32,
    /// Hit latency in cycles.
    pub latency: u32,
}

/// Flat-array tag for an empty (never filled) cache or BTB way. Real
/// line tags are shifted-down addresses, so the sentinel cannot collide.
const EMPTY: u64 = u64::MAX;

impl Cache {
    /// Builds a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = (cfg.sets() as usize).max(1);
        let assoc = cfg.assoc as usize;
        Cache {
            lines: vec![EMPTY; sets * assoc],
            sets,
            set_mask: if sets.is_power_of_two() {
                sets - 1
            } else {
                usize::MAX
            },
            assoc,
            line_shift: cfg.line.trailing_zeros(),
            latency: cfg.latency,
        }
    }

    /// The line-granular address of `addr`.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn row(&mut self, line: u64) -> &mut [u64] {
        let s = if self.set_mask != usize::MAX {
            (line as usize) & self.set_mask
        } else {
            (line as usize) % self.sets
        };
        &mut self.lines[s * self.assoc..(s + 1) * self.assoc]
    }

    /// Accesses `addr`; returns whether it hit. Misses fill the line.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let row = self.row(line);
        if row[0] == line {
            return true; // MRU hit: nothing moves
        }
        if let Some(i) = row.iter().position(|&l| l == line) {
            row[..=i].rotate_right(1);
            true
        } else {
            row.rotate_right(1);
            row[0] = line;
            false
        }
    }

    /// Installs a line without counting it as a demand access (prefetch).
    pub fn prefill(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let row = self.row(line);
        if row.contains(&line) {
            return;
        }
        row.rotate_right(1);
        row[0] = line;
    }
}

/// A stream prefetcher (distance 8, degree 2 per Table 2): detects
/// ascending or descending line streams and prefetches ahead.
#[derive(Debug, Clone, Default)]
pub struct StreamPrefetcher {
    streams: Vec<(u64, i64)>, // (last line, direction)
    distance: i64,
    degree: usize,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with the given look-ahead distance and degree.
    pub fn new(distance: u32, degree: u32) -> Self {
        StreamPrefetcher {
            streams: Vec::new(),
            distance: distance as i64,
            degree: degree as usize,
        }
    }

    /// Observes a miss line; writes the lines to prefetch into `out`
    /// (capacity 8 bounds the configurable degree) and returns how many
    /// were produced. Allocation-free: the old `Vec` return burned a
    /// heap round trip on every L1D miss.
    pub fn observe(&mut self, line: u64, out: &mut [u64; 8]) -> usize {
        // Match an existing stream (±1 of the last line).
        for (last, dir) in &mut self.streams {
            let delta = line as i64 - *last as i64;
            if delta == *dir || (delta.abs() == 1 && *dir == 0) {
                *dir = if delta >= 0 { 1 } else { -1 };
                *last = line;
                let d = *dir;
                let dist = self.distance;
                let n = self.degree.min(out.len());
                for (k, slot) in out.iter_mut().enumerate().take(n) {
                    *slot = (line as i64 + d * (dist + k as i64 + 1)) as u64;
                }
                return n;
            }
        }
        if self.streams.len() >= 16 {
            self.streams.remove(0);
        }
        self.streams.push((line, 0));
        0
    }
}

/// Outcome of a memory-hierarchy access (latency + event counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemAccessResult {
    /// Total access latency in cycles.
    pub latency: u32,
    /// Whether the L1 missed.
    pub l1_miss: bool,
    /// Whether the L2 was accessed and missed.
    pub l2_miss: bool,
    /// Prefetch requests issued.
    pub prefetches: u32,
}

/// L1 + shared L2 + memory, with a stream prefetcher on the L1D miss
/// stream.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    /// L1 data cache.
    pub l1: Cache,
    /// Shared L2.
    pub l2: Cache,
    prefetcher: StreamPrefetcher,
    mem_latency: u32,
}

impl MemHierarchy {
    /// Builds the data-side hierarchy from the machine configuration.
    pub fn new(
        l1: &CacheConfig,
        l2: &CacheConfig,
        mem_latency: u32,
        pf_dist: u32,
        pf_deg: u32,
    ) -> Self {
        MemHierarchy {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            prefetcher: StreamPrefetcher::new(pf_dist, pf_deg),
            mem_latency,
        }
    }

    /// Performs a demand access, returning its latency and events.
    pub fn access(&mut self, addr: u64) -> MemAccessResult {
        let mut r = MemAccessResult {
            latency: self.l1.latency,
            ..Default::default()
        };
        if self.l1.access(addr) {
            return r;
        }
        r.l1_miss = true;
        r.latency += self.l2.latency;
        let line = self.l1.line_of(addr);
        let mut pf_lines = [0u64; 8];
        let n = self.prefetcher.observe(line, &mut pf_lines);
        for &pf in &pf_lines[..n] {
            let pf_addr = pf << self.l1.line_shift;
            // Prefetches fill L2 (and L1 for the near ones).
            self.l2.prefill(pf_addr);
            self.l1.prefill(pf_addr);
            r.prefetches += 1;
        }
        if self.l2.access(addr) {
            return r;
        }
        r.l2_miss = true;
        r.latency += self.mem_latency;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::config::CacheConfig;

    fn small() -> CacheConfig {
        CacheConfig {
            size: 1024,
            assoc: 2,
            line: 64,
            latency: 3,
        }
    }

    #[test]
    fn hit_after_miss() {
        let mut c = Cache::new(&small());
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert!(!c.access(0x140), "next line misses");
    }

    #[test]
    fn lru_eviction() {
        let mut c = Cache::new(&small()); // 8 sets × 2 ways
        let stride = 8 * 64; // same set
        assert!(!c.access(0));
        assert!(!c.access(stride));
        assert!(c.access(0));
        assert!(!c.access(2 * stride)); // evicts `stride` (LRU)
        assert!(c.access(0));
        assert!(!c.access(stride));
    }

    #[test]
    fn stream_prefetcher_detects_streams() {
        let mut out = [0u64; 8];
        let mut p = StreamPrefetcher::new(8, 2);
        assert_eq!(p.observe(100, &mut out), 0, "first touch trains only");
        let n = p.observe(101, &mut out);
        assert_eq!(&out[..n], &[110, 111], "ascending stream prefetches ahead");
        let mut pd = StreamPrefetcher::new(8, 2);
        pd.observe(200, &mut out);
        let n = pd.observe(199, &mut out);
        assert_eq!(&out[..n], &[190, 189], "descending stream goes down");
    }

    #[test]
    fn hierarchy_latencies_compose() {
        let l2 = CacheConfig {
            size: 8192,
            assoc: 4,
            line: 64,
            latency: 12,
        };
        let mut m = MemHierarchy::new(&small(), &l2, 80, 8, 2);
        let first = m.access(0x4000);
        assert!(first.l1_miss && first.l2_miss);
        assert_eq!(first.latency, 3 + 12 + 80);
        let second = m.access(0x4000);
        assert_eq!(second.latency, 3);
        // L1-miss/L2-hit path: evict from tiny L1 by touching other sets.
        for i in 1..60 {
            m.access(0x4000 + i * 64);
        }
        let back = m.access(0x4000);
        assert!(
            back.latency == 3 || back.latency == 15,
            "got {}",
            back.latency
        );
    }

    #[test]
    fn sequential_walk_benefits_from_prefetch() {
        let l2 = CacheConfig {
            size: 1 << 20,
            assoc: 8,
            line: 64,
            latency: 12,
        };
        let mut m = MemHierarchy::new(&small(), &l2, 80, 4, 2);
        let mut misses_late = 0;
        for i in 0..256u64 {
            let r = m.access(i * 64);
            if i > 16 && r.l2_miss {
                misses_late += 1;
            }
        }
        assert!(
            misses_late < 200,
            "prefetcher should hide some of the stream"
        );
    }
}
