//! Per-instruction pipeline tracing — the observability layer of the
//! timing model.
//!
//! The simulator calls a [`PipelineTracer`] once per committed
//! instruction with its full set of stage timestamps
//! ([`StageStamps`]) and the stall reason its retirement bubble was
//! blamed on. The trait is threaded through
//! [`Simulator`](crate::Simulator) as a **monomorphised type
//! parameter**, so the default [`NullTracer`] compiles to nothing —
//! tracing off costs zero instructions on the simulation hot path.
//!
//! [`TraceBuffer`] is the batteries-included implementation: it records
//! every instruction (optionally up to a limit) and renders the result
//! as
//!
//! * a [Konata](https://github.com/shioyadan/Konata)-compatible
//!   `.kanata` pipeline log ([`TraceBuffer::to_kanata`]) for visual,
//!   per-cycle inspection of fetch → rename/RP-calc → issue → execute →
//!   commit, and
//! * a JSONL event stream ([`TraceBuffer::to_jsonl`]), one
//!   self-describing object per instruction, for ad-hoc analysis.
//!
//! `figures trace` (crate `ch-bench`) uses it to emit traces for every
//! `(workload, ISA)` pair; see README § "Interpreting the output" for
//! how to open them.

use ch_common::inst::DynInst;
use ch_common::stats::StallReason;
use std::fmt::Write as _;

/// Cycle timestamps of one instruction's walk through the pipeline,
/// plus the retirement-slot attribution derived from them.
///
/// Produced by the simulator, consumed by [`PipelineTracer::record`].
/// The stamps are strictly ordered
/// `fetch < alloc ≤ dispatch < issue ≤ exec < complete < commit`
/// (allocation and dispatch share a cycle in this model: an instruction
/// enters the ROB and the scheduler the cycle its physical register —
/// renamed or RP-resolved — is available).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStamps {
    /// Cycle the instruction's fetch group was fetched.
    pub fetch: u64,
    /// Cycle the allocation stage (rename for RISC, RP-calculation for
    /// STRAIGHT/Clockhands) accepted the instruction.
    pub alloc: u64,
    /// Cycle the instruction entered the ROB/scheduler (same cycle as
    /// [`alloc`](Self::alloc) in this model; kept as a separate stamp so
    /// traces stay stable if the stages ever split).
    pub dispatch: u64,
    /// Cycle the scheduler selected the instruction for issue.
    pub issue: u64,
    /// Cycle execution began (issue + register-read latency).
    pub exec: u64,
    /// Cycle the result became available to consumers.
    pub complete: u64,
    /// Cycle the instruction committed (in order).
    pub commit: u64,
    /// The reason blamed for the idle commit slots (if any) immediately
    /// before this instruction's slot.
    pub stall: StallReason,
    /// How many idle commit slots were attributed to
    /// [`stall`](Self::stall) in front of this instruction.
    pub idle_slots: u64,
}

/// Observer of per-instruction pipeline timing.
///
/// Implementations receive one [`record`](Self::record) call per
/// committed instruction, in commit order, with monotone
/// [`StageStamps`]. A tracer must not affect simulation results — the
/// simulator hands it immutable views only, and the test-suite asserts
/// counters are identical with tracing on and off.
pub trait PipelineTracer {
    /// Whether this tracer observes anything at all. The fast engine
    /// (`crate::engine`) reconstructs a full [`DynInst`] from its
    /// structure-of-arrays stream before calling
    /// [`record`](Self::record); tracers that discard everything set
    /// this to `false` so the reconstruction (and the call) constant-
    /// fold away after monomorphisation.
    const ENABLED: bool = true;

    /// Called once per committed instruction with its stage timestamps.
    fn record(&mut self, inst: &DynInst, stamps: &StageStamps);
}

/// The do-nothing tracer: the default type parameter of
/// [`Simulator`](crate::Simulator).
///
/// Its [`record`](PipelineTracer::record) is an empty `#[inline]`
/// function, so a `Simulator<NullTracer>` carries no tracing code at
/// all after monomorphisation — "tracing off" is free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl PipelineTracer for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _inst: &DynInst, _stamps: &StageStamps) {}
}

/// One recorded instruction: identity plus its [`StageStamps`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Dynamic sequence number (commit order).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Operation class (rendered into the Konata label).
    pub class: ch_common::op::OpClass,
    /// The per-stage cycle timestamps.
    pub stamps: StageStamps,
}

/// A buffering [`PipelineTracer`] that renders Konata and JSONL output.
///
/// Collects up to `limit` records (unlimited by default) and formats
/// them after the run — the Konata format is cycle-incremental, so
/// events must be re-sorted by cycle before emission.
///
/// # Examples
///
/// ```
/// use ch_common::config::{MachineConfig, WidthClass};
/// use ch_common::IsaKind;
/// use ch_sim::{Simulator, TraceBuffer};
/// use clockhands::asm::assemble;
/// use clockhands::interp::Interpreter;
///
/// let prog = assemble("li t, 10\n.l:\naddi t, t[0], -1\nbne t[0], zero, .l\nhalt t[0]")?;
/// let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
/// let mut sim = Simulator::with_tracer(cfg, TraceBuffer::new());
/// let counters = sim.run(&mut Interpreter::new(prog)?);
/// let trace = sim.into_tracer();
/// assert_eq!(trace.records().len() as u64, counters.committed);
/// assert!(trace.to_kanata().starts_with("Kanata\t0004"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    limit: Option<usize>,
}

impl TraceBuffer {
    /// An unlimited buffer (records every committed instruction).
    pub fn new() -> TraceBuffer {
        TraceBuffer::default()
    }

    /// A buffer that stops recording after `limit` instructions (the
    /// simulation itself continues unaffected).
    pub fn with_limit(limit: usize) -> TraceBuffer {
        TraceBuffer {
            records: Vec::with_capacity(limit.min(1 << 20)),
            limit: Some(limit),
        }
    }

    /// The recorded instructions, in commit order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Renders the buffer as a Konata `.kanata` pipeline log
    /// (format version `0004`, as produced by Onikiri2/gem5).
    ///
    /// Lanes/stages: `F` fetch, `Rn` rename-or-RP-calc (allocation),
    /// `Is` issue-select wait, `Ex` execute, `Cm` completed-awaiting-
    /// commit. Every instruction retires with an `R` line at its commit
    /// cycle; idle-slot attribution is appended to the label line.
    pub fn to_kanata(&self) -> String {
        let mut events: Vec<(u64, String)> = Vec::with_capacity(self.records.len() * 8);
        for (file_id, r) in self.records.iter().enumerate() {
            let s = &r.stamps;
            events.push((s.fetch, format!("I\t{file_id}\t{}\t0", r.seq)));
            events.push((
                s.fetch,
                format!(
                    "L\t{file_id}\t0\t{:#x}: {:?} (stall {} x{})",
                    r.pc,
                    r.class,
                    s.stall.label(),
                    s.idle_slots
                ),
            ));
            events.push((s.fetch, format!("S\t{file_id}\t0\tF")));
            events.push((s.alloc, format!("S\t{file_id}\t0\tRn")));
            events.push((s.issue, format!("S\t{file_id}\t0\tIs")));
            events.push((s.exec, format!("S\t{file_id}\t0\tEx")));
            events.push((s.complete, format!("S\t{file_id}\t0\tCm")));
            events.push((s.commit, format!("E\t{file_id}\t0\tCm")));
            events.push((s.commit, format!("R\t{file_id}\t{}\t0", r.seq)));
        }
        events.sort_by_key(|&(cycle, _)| cycle);
        let mut out = String::with_capacity(events.len() * 16 + 32);
        out.push_str("Kanata\t0004\n");
        let mut cur = events.first().map(|&(c, _)| c).unwrap_or(0);
        let _ = writeln!(out, "C=\t{cur}");
        for (cycle, line) in events {
            if cycle > cur {
                let _ = writeln!(out, "C\t{}", cycle - cur);
                cur = cycle;
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders the buffer as JSONL: one object per instruction with the
    /// sequence number, pc, op class, every stage timestamp, and the
    /// stall attribution. Keys are stable; no external JSON crate is
    /// used (values are integers and fixed enum labels, so hand
    /// formatting is lossless).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 160);
        for r in &self.records {
            let s = &r.stamps;
            let _ = writeln!(
                out,
                "{{\"seq\":{},\"pc\":{},\"class\":\"{:?}\",\"fetch\":{},\"alloc\":{},\
\"dispatch\":{},\"issue\":{},\"exec\":{},\"complete\":{},\"commit\":{},\
\"stall\":\"{}\",\"idle_slots\":{}}}",
                r.seq,
                r.pc,
                r.class,
                s.fetch,
                s.alloc,
                s.dispatch,
                s.issue,
                s.exec,
                s.complete,
                s.commit,
                s.stall.label(),
                s.idle_slots
            );
        }
        out
    }
}

/// One committed instruction as seen at the retirement stage: identity
/// plus the cycle it left the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEntry {
    /// Dynamic sequence number (commit order).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Cycle the instruction committed.
    pub cycle: u64,
}

/// A minimal [`PipelineTracer`] recording only the committed instruction
/// stream — the equivalence hook the differential fuzzer uses.
///
/// The timing simulator is trace-driven: it consumes the functional
/// interpreter's [`DynInst`] stream and must retire **exactly** that
/// stream, in order, at nondecreasing cycles. `CommitLog` captures what
/// was actually retired so a harness can assert the commit stream
/// matches the interpreter trace instruction-for-instruction
/// (`ch-fuzz` does this for every generated program on all three ISAs).
///
/// # Examples
///
/// ```
/// use ch_common::config::{MachineConfig, WidthClass};
/// use ch_common::IsaKind;
/// use ch_sim::{CommitLog, Simulator};
/// use clockhands::asm::assemble;
/// use clockhands::interp::Interpreter;
///
/// let prog = assemble("li t, 3\nhalt t[0]")?;
/// let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
/// let mut sim = Simulator::with_tracer(cfg, CommitLog::new());
/// let counters = sim.run(&mut Interpreter::new(prog)?);
/// let log = sim.into_tracer();
/// assert_eq!(log.entries().len() as u64, counters.committed);
/// assert!(log.is_in_commit_order());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommitLog {
    entries: Vec<CommitEntry>,
}

impl CommitLog {
    /// An empty commit log.
    pub fn new() -> CommitLog {
        CommitLog::default()
    }

    /// The committed instructions, in retirement order.
    pub fn entries(&self) -> &[CommitEntry] {
        &self.entries
    }

    /// Whether the log is a well-formed in-order commit stream:
    /// sequence numbers strictly increase and commit cycles never
    /// decrease.
    pub fn is_in_commit_order(&self) -> bool {
        self.entries
            .windows(2)
            .all(|w| w[0].seq < w[1].seq && w[0].cycle <= w[1].cycle)
    }
}

impl PipelineTracer for CommitLog {
    fn record(&mut self, inst: &DynInst, stamps: &StageStamps) {
        self.entries.push(CommitEntry {
            seq: inst.seq,
            pc: inst.pc,
            cycle: stamps.commit,
        });
    }
}

impl PipelineTracer for TraceBuffer {
    fn record(&mut self, inst: &DynInst, stamps: &StageStamps) {
        if let Some(limit) = self.limit {
            if self.records.len() >= limit {
                return;
            }
        }
        self.records.push(TraceRecord {
            seq: inst.seq,
            pc: inst.pc,
            class: inst.class,
            stamps: *stamps,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::op::OpClass;

    fn rec(seq: u64, fetch: u64) -> (DynInst, StageStamps) {
        let inst = DynInst::new(seq, 0x1000 + 4 * seq, OpClass::IntAlu);
        let stamps = StageStamps {
            fetch,
            alloc: fetch + 5,
            dispatch: fetch + 5,
            issue: fetch + 6,
            exec: fetch + 10,
            complete: fetch + 11,
            commit: fetch + 12,
            stall: StallReason::Frontend,
            idle_slots: 0,
        };
        (inst, stamps)
    }

    #[test]
    fn commit_log_records_retirement_order() {
        let mut log = CommitLog::new();
        for i in 0..4 {
            let (inst, stamps) = rec(i, i);
            log.record(&inst, &stamps);
        }
        assert_eq!(log.entries().len(), 4);
        assert!(log.is_in_commit_order());
        assert_eq!(log.entries()[0].cycle, 12);
        // A reordered stream is detected.
        let mut bad = CommitLog::new();
        let (i1, s1) = rec(5, 0);
        let (i0, s0) = rec(2, 0);
        bad.record(&i1, &s1);
        bad.record(&i0, &s0);
        assert!(!bad.is_in_commit_order());
    }

    #[test]
    fn limit_caps_recording() {
        let mut t = TraceBuffer::with_limit(2);
        for i in 0..5 {
            let (inst, stamps) = rec(i, i);
            t.record(&inst, &stamps);
        }
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn kanata_is_cycle_monotone() {
        let mut t = TraceBuffer::new();
        for i in 0..3 {
            let (inst, stamps) = rec(i, i * 2);
            t.record(&inst, &stamps);
        }
        let k = t.to_kanata();
        assert!(k.starts_with("Kanata\t0004\nC=\t0\n"));
        // Every instruction fetches, starts five stages, and retires.
        assert_eq!(k.matches("\tF\n").count(), 3);
        assert_eq!(k.lines().filter(|l| l.starts_with("R\t")).count(), 3);
        // C lines only ever advance.
        for line in k.lines().filter(|l| l.starts_with("C\t")) {
            let delta: u64 = line[2..].parse().expect("numeric delta");
            assert!(delta > 0);
        }
    }

    #[test]
    fn jsonl_has_one_self_contained_line_per_record() {
        let mut t = TraceBuffer::new();
        let (inst, stamps) = rec(7, 3);
        t.record(&inst, &stamps);
        let j = t.to_jsonl();
        assert_eq!(j.lines().count(), 1);
        assert!(j.contains("\"seq\":7"));
        assert!(j.contains("\"stall\":\"frontend\""));
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
    }
}
