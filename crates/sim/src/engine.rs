//! The fast-path timing engine: the same pipeline model as
//! [`Simulator`](crate::Simulator), restructured around a
//! structure-of-arrays instruction stream with memoized per-instruction
//! decode.
//!
//! ## Why a second engine
//!
//! The reference `Simulator::step` consumes one [`DynInst`] at a time:
//! a ~100-byte record of `Option`s that is re-inspected from scratch on
//! every step (which functional unit? what execute latency? how many
//! sources?), with every counter bumped individually. That shape is
//! ideal for auditing the timing model but wastes most of its cycles on
//! re-decoding and bookkeeping. The figure sweeps run the *same* cached
//! trace against five machine widths, so the decode work is pure
//! repetition.
//!
//! [`SoaTrace`] hoists that repetition out of the loop: one pass over
//! the `DynInst` stream packs the per-instruction facts the timing loop
//! needs into a 28-byte-per-instruction column layout (pc, two producer
//! seqs, one `u32` of decode bits) plus compacted side arrays for the
//! memory and control minorities, and pre-sums every counter that is a
//! pure function of the trace (committed, sources read, loads, branch
//! predictions made, ...). [`FastEngine::run`] then times the whole
//! stream in one monomorphised loop:
//!
//! * **memoized decode** — functional unit, execute latency, pipelining,
//!   destination kind and source count come from the packed meta word;
//!   no `Option` walking, no `match` on `OpClass`;
//! * **batched counter accounting** — trace-constant counters are added
//!   once at the end instead of incremented per instruction; only
//!   genuinely dynamic events (cache misses, mispredicts, forwards,
//!   stall slots) are counted in the loop;
//! * **pruned store window** — the forwarding scan drops stores that
//!   have committed before any *future* load could possibly execute
//!   (commit cycles are monotone, so the prefix prune is complete and
//!   exact — see the scan's skip condition);
//! * **no fast-forward cycle loop is needed** — the one-pass model never
//!   iterates over cycles at all: each instruction's timestamps jump
//!   directly to the cycles where ring state changes, so idle gaps
//!   (e.g. a 500k-cycle memory stall) cost O(1) regardless of length.
//!
//! The hard correctness bar: counters and stall breakdowns are
//! **byte-identical** to the reference simulator for every trace — the
//! shared rings, bandwidth claim discipline (`bw_slot`), predictors
//! and cache models are literally the same code, and the differential
//! test in `ch-bench` asserts equality over every workload × ISA ×
//! width. Tracing stays exact: with a [`PipelineTracer`] whose
//! [`ENABLED`](PipelineTracer::ENABLED) is true, the engine rebuilds the
//! full `DynInst` for each record call and emits the same
//! [`StageStamps`] as the reference; with [`NullTracer`] the
//! reconstruction constant-folds away.

use crate::cache::{Cache, MemHierarchy};
use crate::core::{
    bw_slot, issue_ring_len, sched_ring_len, seq_ring_len, STORE_WINDOW, VIOLATION_PENALTY,
};
use crate::storeset::StoreSet;
use crate::tage::{Btb, Ras, Tage};
use crate::trace::{NullTracer, PipelineTracer, StageStamps};
use ch_common::config::MachineConfig;
use ch_common::inst::{CtrlInfo, CtrlKind, DstTag, DynInst, MemAccess, NO_PRODUCER};
use ch_common::op::{FuKind, OpClass};
use ch_common::stats::{Counters, StallReason};
use ch_common::IsaKind;
use std::collections::VecDeque;

// ---- packed per-instruction decode word ----
// bits 0..=2   functional-unit index (FuKind::index)
// bits 3..=6   execute latency (<= 12)
// bit  7       unit is pipelined
// bit  8       is a load
// bit  9       is a store
// bit  10      has a memory access record
// bit  11      has a control record
// bits 12..=14 control kind (CTRL_* codes)
// bit  15      control transfer taken
// bit  16      writes a destination
// bits 17..=18 destination hand (Clockhands)
// bit  19      destination is a hand write
// bits 20..=21 number of register sources
// bit  22      16-bit compact encoding (instruction size 2, not 4)
const FU_MASK: u32 = 0x7;
const LAT_SHIFT: u32 = 3;
const LAT_MASK: u32 = 0xf;
const PIPELINED: u32 = 1 << 7;
const IS_LOAD: u32 = 1 << 8;
const IS_STORE: u32 = 1 << 9;
const HAS_MEM: u32 = 1 << 10;
const HAS_CTRL: u32 = 1 << 11;
const CTRL_SHIFT: u32 = 12;
const CTRL_MASK: u32 = 0x7;
const CTRL_TAKEN: u32 = 1 << 15;
const HAS_DST: u32 = 1 << 16;
const HAND_SHIFT: u32 = 17;
const HAND_MASK: u32 = 0x3;
const DST_HAND: u32 = 1 << 19;
const NSRC_SHIFT: u32 = 20;
/// The static instruction took a 16-bit compact encoding (size 2, not 4).
const COMPACT: u32 = 1 << 22;

const CTRL_CALL: u32 = 0;
const CTRL_RET: u32 = 1;
const CTRL_JUMP: u32 = 2;
const CTRL_IND: u32 = 3;
const CTRL_COND: u32 = 4;

fn ctrl_code(kind: CtrlKind) -> u32 {
    match kind {
        CtrlKind::Call => CTRL_CALL,
        CtrlKind::Ret => CTRL_RET,
        CtrlKind::Jump => CTRL_JUMP,
        CtrlKind::IndirectJump => CTRL_IND,
        CtrlKind::Cond => CTRL_COND,
    }
}

fn ctrl_kind(code: u32) -> CtrlKind {
    match code {
        CTRL_CALL => CtrlKind::Call,
        CTRL_RET => CtrlKind::Ret,
        CTRL_JUMP => CtrlKind::Jump,
        CTRL_IND => CtrlKind::IndirectJump,
        _ => CtrlKind::Cond,
    }
}

/// Counter totals that are a pure function of the trace, summed once at
/// build time and added to the [`Counters`] after the timing loop.
#[derive(Debug, Clone, Copy, Default)]
struct TraceTotals {
    nsrc: u64,
    dsts: u64,
    loads: u64,
    stores: u64,
    mem: u64,
    fp: u64,
    cond: u64,
    indirect: u64,
    ctrl: u64,
    hand_dsts: u64,
}

/// A committed instruction stream in structure-of-arrays layout with
/// memoized decode — the input format of [`FastEngine`].
///
/// Build it once per trace ([`SoaTrace::new`]) and reuse it across every
/// machine configuration: nothing in it depends on the simulated
/// machine. The conversion is lossless — the engine can reconstruct the
/// exact `DynInst` for tracer callbacks.
///
/// # Panics
///
/// `new` panics if the stream is not the dense, 0-based commit-order
/// sequence the functional interpreters produce (`seq == index`); the
/// engine indexes its rings by position, which is only equivalent under
/// that invariant.
#[derive(Debug, Clone, Default)]
pub struct SoaTrace {
    pc: Vec<u64>,
    srcs: Vec<[u64; 2]>,
    meta: Vec<u32>,
    class: Vec<OpClass>,
    dst: Vec<Option<DstTag>>,
    mem: Vec<MemAccess>,
    ctrl_target: Vec<u64>,
    /// Stream index of every control transfer (the `ctrl_target` rows).
    ctrl_at: Vec<u32>,
    totals: TraceTotals,
}

impl SoaTrace {
    /// Packs a `DynInst` stream into column layout (one pass).
    pub fn new<'a>(insts: impl IntoIterator<Item = &'a DynInst>) -> SoaTrace {
        let mut t = SoaTrace::default();
        for inst in insts {
            assert_eq!(
                inst.seq,
                t.pc.len() as u64,
                "SoaTrace requires the dense commit-order stream the interpreters emit"
            );
            let fu = inst.class.fu_kind();
            let nsrc = inst.sources().count() as u32;
            let mut m = fu.index() as u32
                | (inst.class.exec_latency() << LAT_SHIFT)
                | ((fu.pipelined() as u32) * PIPELINED)
                | (nsrc << NSRC_SHIFT);
            debug_assert!(
                inst.size == 4 || inst.size == 2,
                "instruction sizes are 2 or 4 bytes"
            );
            if inst.size == 2 {
                m |= COMPACT;
            }
            t.totals.nsrc += nsrc as u64;
            if inst.class == OpClass::Load {
                m |= IS_LOAD;
                t.totals.loads += 1;
            }
            if inst.class == OpClass::Store {
                m |= IS_STORE;
                t.totals.stores += 1;
            }
            if matches!(fu, FuKind::Float | FuKind::FpDiv) {
                t.totals.fp += 1;
            }
            if let Some(mem) = inst.mem {
                m |= HAS_MEM;
                t.totals.mem += 1;
                t.mem.push(mem);
            }
            if let Some(ctrl) = inst.ctrl {
                m |= HAS_CTRL | (ctrl_code(ctrl.kind) << CTRL_SHIFT);
                if ctrl.taken {
                    m |= CTRL_TAKEN;
                }
                t.totals.ctrl += 1;
                match ctrl.kind {
                    CtrlKind::Cond => t.totals.cond += 1,
                    CtrlKind::IndirectJump => t.totals.indirect += 1,
                    _ => {}
                }
                t.ctrl_at.push(t.pc.len() as u32);
                t.ctrl_target.push(ctrl.target);
            }
            if let Some(dst) = inst.dst {
                m |= HAS_DST;
                t.totals.dsts += 1;
                if let DstTag::Hand(h) = dst {
                    m |= DST_HAND | ((h as u32) << HAND_SHIFT);
                    t.totals.hand_dsts += 1;
                }
            }
            t.pc.push(inst.pc);
            t.srcs.push(inst.srcs);
            t.meta.push(m);
            t.class.push(inst.class);
            t.dst.push(inst.dst);
        }
        t
    }

    /// Number of instructions in the stream.
    pub fn len(&self) -> usize {
        self.pc.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.pc.is_empty()
    }

    /// Rebuilds the exact `DynInst` at position `i` (tracer callbacks
    /// only; `mem_idx`/`ctrl_idx` are the side-array cursors at `i`).
    fn rebuild(&self, i: usize, mem_idx: usize, ctrl_idx: usize) -> DynInst {
        let m = self.meta[i];
        DynInst {
            seq: i as u64,
            pc: self.pc[i],
            size: if m & COMPACT != 0 { 2 } else { 4 },
            class: self.class[i],
            srcs: self.srcs[i],
            dst: self.dst[i],
            mem: (m & HAS_MEM != 0).then(|| self.mem[mem_idx]),
            ctrl: (m & HAS_CTRL != 0).then(|| CtrlInfo {
                kind: ctrl_kind((m >> CTRL_SHIFT) & CTRL_MASK),
                taken: m & CTRL_TAKEN != 0,
                target: self.ctrl_target[ctrl_idx],
            }),
        }
    }
}

/// A bounded occupancy FIFO over sequence numbers, as a flat ring: the
/// reference simulator's "pop the oldest once `len()` reaches the limit,
/// then push" `VecDeque` pattern reaches its limit and stays there, so
/// it is exactly a circular buffer of `limit` slots.
#[derive(Debug)]
struct SeqRing {
    buf: Vec<u64>,
    count: u64,
}

impl SeqRing {
    fn new(limit: usize) -> SeqRing {
        SeqRing {
            buf: vec![0; limit.max(1)],
            count: 0,
        }
    }

    /// Pushes `seq`; returns the displaced oldest entry once full.
    #[inline]
    fn push(&mut self, seq: u64) -> Option<u64> {
        let cap = self.buf.len() as u64;
        let idx = (self.count % cap) as usize;
        let old = (self.count >= cap).then(|| self.buf[idx]);
        self.buf[idx] = seq;
        self.count += 1;
        old
    }
}

/// Pre-replayed front-end predictor outcomes for one trace: one flag
/// byte per control transfer.
///
/// The branch predictors (TAGE, BTB, RAS) read and write nothing but
/// their own tables, and their inputs — pc, control kind, resolved
/// direction, target — are all trace columns, never timing values. Their
/// entire effect on the timing model is two bits per control transfer:
/// *was it mispredicted* (recovery redirect after it completes) and *did
/// the BTB miss on a predicted-taken transfer* (a 2-cycle fetch bubble).
/// So the whole predictor replay is a pure function of the trace and the
/// predictor geometry, independent of machine width — compute it once
/// ([`BranchProfile::new`]) and share it across every configuration with
/// the same geometry (all width presets), instead of re-simulating the
/// predictors inside every timing run.
///
/// [`FastEngine::run`] builds a profile on the fly; the sweep path
/// ([`run_fast_profiled`]) passes a cached one in.
#[derive(Debug, Clone)]
pub struct BranchProfile {
    btb_entries: u32,
    btb_assoc: u32,
    ras_entries: u32,
    /// Parallel to `SoaTrace::ctrl_at`.
    flags: Vec<u8>,
}

/// `BranchProfile` flag bit: the transfer was mispredicted.
const BP_MISPREDICT: u8 = 1;
/// `BranchProfile` flag bit: predicted taken but the BTB missed the
/// target — a 2-cycle fetch bubble.
const BP_BUBBLE: u8 = 2;

impl BranchProfile {
    /// Replays the front-end predictors over `t` under `cfg`'s predictor
    /// geometry (the only configuration the replay depends on).
    pub fn new(cfg: &MachineConfig, t: &SoaTrace) -> BranchProfile {
        let mut tage = Tage::new();
        let mut btb = Btb::new(cfg.btb_entries as usize, cfg.btb_assoc as usize);
        let mut ras = Ras::new(cfg.ras_entries as usize);
        let mut flags = Vec::with_capacity(t.ctrl_at.len());
        for (ci, &at) in t.ctrl_at.iter().enumerate() {
            let pc = t.pc[at as usize];
            let m = t.meta[at as usize];
            let target = t.ctrl_target[ci];
            let taken = m & CTRL_TAKEN != 0;
            let mut f = 0u8;
            match (m >> CTRL_SHIFT) & CTRL_MASK {
                CTRL_COND => {
                    let pred = tage.predict_and_update(pc, taken);
                    if pred != taken {
                        f |= BP_MISPREDICT;
                    } else if taken && btb.lookup(pc) != Some(target) {
                        f |= BP_BUBBLE;
                    }
                    btb.update(pc, target);
                }
                CTRL_JUMP => {
                    if btb.lookup(pc) != Some(target) {
                        f |= BP_BUBBLE;
                        btb.update(pc, target);
                    }
                }
                CTRL_CALL => {
                    let size = if m & COMPACT != 0 { 2 } else { 4 };
                    ras.push(pc + size);
                    if btb.lookup(pc) != Some(target) {
                        f |= BP_BUBBLE;
                        btb.update(pc, target);
                    }
                }
                CTRL_RET => {
                    if ras.pop() != Some(target) {
                        f |= BP_MISPREDICT;
                    }
                }
                _ => {
                    // Indirect jump.
                    if btb.lookup(pc) != Some(target) {
                        f |= BP_MISPREDICT;
                    }
                    btb.update(pc, target);
                }
            }
            flags.push(f);
        }
        BranchProfile {
            btb_entries: cfg.btb_entries,
            btb_assoc: cfg.btb_assoc,
            ras_entries: cfg.ras_entries,
            flags,
        }
    }

    /// Whether this profile was replayed under `cfg`'s predictor
    /// geometry (TAGE geometry is compile-time constant).
    pub fn compatible(&self, cfg: &MachineConfig) -> bool {
        self.btb_entries == cfg.btb_entries
            && self.btb_assoc == cfg.btb_assoc
            && self.ras_entries == cfg.ras_entries
    }
}

/// The fast-path engine: consumes a [`SoaTrace`] and produces the same
/// [`Counters`] as the reference [`Simulator`](crate::Simulator) run on
/// the equivalent `DynInst` stream.
///
/// # Examples
///
/// ```
/// use ch_common::config::{MachineConfig, WidthClass};
/// use ch_common::IsaKind;
/// use ch_sim::{run_fast, SoaTrace};
/// use clockhands::asm::assemble;
/// use clockhands::interp::Interpreter;
///
/// let prog = assemble("li t, 100\n.l:\naddi t, t[0], -1\nbne t[0], zero, .l\nhalt t[0]")?;
/// let (insts, _) = Interpreter::new(prog)?.trace(1_000_000)?;
/// let soa = SoaTrace::new(insts.iter());
/// let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
/// let fast = run_fast(cfg.clone(), &soa);
/// let mut reference = ch_sim::Simulator::new(cfg);
/// for i in &insts {
///     reference.step(i);
/// }
/// assert_eq!(fast, reference.finish());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FastEngine<T: PipelineTracer = NullTracer> {
    cfg: MachineConfig,
    tracer: T,
}

/// Times a whole [`SoaTrace`] on one machine, untraced.
pub fn run_fast(cfg: MachineConfig, trace: &SoaTrace) -> Counters {
    FastEngine::new(cfg).run(trace).0
}

/// Times a whole [`SoaTrace`] on one machine, untraced, reusing a cached
/// [`BranchProfile`] — the sweep engine's entry point (the predictor
/// replay is per-trace work; five machine widths share one profile).
pub fn run_fast_profiled(
    cfg: MachineConfig,
    trace: &SoaTrace,
    profile: &BranchProfile,
) -> Counters {
    FastEngine::new(cfg).run_profiled(trace, profile).0
}

impl FastEngine<NullTracer> {
    /// Creates an untraced engine (the fully-dead tracing hook).
    pub fn new(cfg: MachineConfig) -> Self {
        FastEngine::with_tracer(cfg, NullTracer)
    }
}

impl<T: PipelineTracer> FastEngine<T> {
    /// Creates an engine that feeds every committed instruction's stage
    /// timestamps to `tracer` (identical stamps to the reference).
    pub fn with_tracer(cfg: MachineConfig, tracer: T) -> Self {
        FastEngine { cfg, tracer }
    }

    /// Times the whole stream, returning the final counters and the
    /// tracer. One engine times one stream (machine state is built
    /// fresh here); construct a new engine per run.
    pub fn run(self, t: &SoaTrace) -> (Counters, T) {
        let profile = BranchProfile::new(&self.cfg, t);
        self.run_profiled(t, &profile)
    }

    /// Like [`run`](FastEngine::run), with the predictor replay supplied
    /// by a pre-built (cacheable) [`BranchProfile`].
    ///
    /// # Panics
    ///
    /// Panics if `profile` was built under a different predictor
    /// geometry or for a different trace shape.
    pub fn run_profiled(mut self, t: &SoaTrace, profile: &BranchProfile) -> (Counters, T) {
        let cfg = &self.cfg;
        assert!(
            profile.compatible(cfg) && profile.flags.len() == t.ctrl_at.len(),
            "branch profile does not match this config/trace"
        );
        let n = t.len();
        let mut c = Counters::new();

        // Front end.
        let mut icache = Cache::new(&cfg.l1i);
        let mut fetch_cycle = 0u64;
        let mut group_used = 0u32;
        let mut group_bytes = 0u32;
        let mut redirect_at = 0u64;

        // Rings (same sizing and packing as the reference — see core.rs).
        let seq_mask = seq_ring_len(cfg) - 1;
        let sched_mask = sched_ring_len(cfg) - 1;
        let mut ready_ring = vec![0u64; seq_mask + 1];
        let mut commit_ring = vec![0u64; seq_mask + 1];
        let mut select_ring = vec![0u64; sched_mask + 1];
        let mut mem_late = vec![false; seq_mask + 1];
        let mut alloc_bw = vec![0u64; 1 << 14];
        let mut issue_bw = vec![0u64; issue_ring_len(cfg)];
        let mut commit_bw = vec![0u64; 1 << 14];

        // Occupancy rings and ISA allocation state.
        let mut loads_fifo = SeqRing::new(cfg.load_queue as usize);
        let mut stores_fifo = SeqRing::new(cfg.store_queue as usize);
        let dst_limit = match cfg.isa {
            IsaKind::Riscv => (cfg.phys_regs - 64) as usize,
            IsaKind::Straight => (cfg.phys_regs - cfg.max_ref_distance) as usize,
            IsaKind::Clockhands => 1,
        };
        let mut dst_ring = SeqRing::new(dst_limit);
        let hand_limits: [usize; 4] = match cfg.isa {
            IsaKind::Clockhands => {
                let quotas = cfg.hand_quotas.expect("clockhands config");
                std::array::from_fn(|h| {
                    quotas[h].saturating_sub(cfg.max_ref_distance).max(1) as usize
                })
            }
            _ => [1; 4],
        };
        let mut hand_rings: [SeqRing; 4] = std::array::from_fn(|h| SeqRing::new(hand_limits[h]));

        let mut fu_free: [Vec<u64>; 7] =
            std::array::from_fn(|k| vec![0u64; cfg.fu_counts[k].max(1) as usize]);

        // Memory.
        let mut dmem = MemHierarchy::new(
            &cfg.l1d,
            &cfg.l2,
            cfg.mem_latency,
            cfg.prefetch_distance,
            cfg.prefetch_degree,
        );
        let mut store_set = StoreSet::new(cfg.storeset_producers, cfg.storeset_ids);
        let mut store_window: VecDeque<(u64, u64, u8, u64, u64, u64)> =
            VecDeque::with_capacity(STORE_WINDOW);

        let mut last_alloc = 0u64;
        let mut last_commit = 0u64;
        let mut next_commit_slot = 0u64;
        let mut mem_cur = 0usize;
        let mut ctrl_cur = 0usize;

        let rob = cfg.rob as u64;
        let front_width = cfg.front_width;
        let fetch_budget = cfg.fetch_bytes;
        let front_latency = cfg.front_latency as u64;
        let issue_lat = cfg.issue_latency as u64;
        let issue_width = cfg.issue_width;
        let commit_width = cfg.commit_width;
        let sched = cfg.scheduler as u64;
        let line = cfg.l1i.line as u64;
        let isa = cfg.isa;

        for i in 0..n {
            let seq = i as u64;
            let pc = t.pc[i];
            let m = t.meta[i];
            let (mem_idx, ctrl_idx) = (mem_cur, ctrl_cur);

            // ---------- Fetch ----------
            let recovering = redirect_at > 0;
            if redirect_at > 0 {
                c.fetched += front_width as u64;
                fetch_cycle = fetch_cycle.max(redirect_at);
                redirect_at = 0;
                group_used = 0;
                group_bytes = 0;
            }
            let size = if m & COMPACT != 0 { 2u64 } else { 4 };
            if group_used == 0 {
                c.fetch_groups += 1;
                if !icache.access(pc) {
                    c.icache_misses += 1;
                    fetch_cycle += dmem.l2.latency as u64;
                }
                icache.prefill(pc + line);
                icache.prefill(pc + 2 * line);
            }
            // A unit straddling an I$ line boundary touches both lines
            // (impossible for the aligned fixed-width layout).
            if pc / line != (pc + size - 1) / line {
                c.icache_straddles += 1;
                if !icache.access(pc + size - 1) {
                    c.icache_misses += 1;
                    fetch_cycle += dmem.l2.latency as u64;
                }
            }
            let fetch_time = fetch_cycle;
            group_used += 1;
            group_bytes += size as u32;
            c.fetch_bytes += size;
            let mut group_break = group_used >= front_width || group_bytes >= fetch_budget;

            // ---------- Branch prediction (pre-replayed) ----------
            let mut mispredicted = false;
            if m & HAS_CTRL != 0 {
                let f = profile.flags[ctrl_idx];
                ctrl_cur += 1;
                mispredicted = f & BP_MISPREDICT != 0;
                fetch_cycle += 2 * (f & BP_BUBBLE != 0) as u64;
                if m & CTRL_TAKEN != 0 {
                    group_break = true;
                }
            }
            if group_break {
                fetch_cycle += 1;
                group_used = 0;
                group_bytes = 0;
            }

            // ---------- Allocation ----------
            let mut alloc = fetch_time + front_latency;
            let mut alloc_reason = if recovering {
                StallReason::BranchRecovery
            } else {
                StallReason::Frontend
            };
            alloc = alloc.max(last_alloc);
            if seq >= rob {
                let free_at = commit_ring[((seq - rob) as usize) & seq_mask];
                if free_at > alloc {
                    alloc = free_at;
                    alloc_reason = StallReason::RobFull;
                }
            }
            if seq >= sched {
                let free_at = select_ring[((seq - sched) as usize) & sched_mask] + 1;
                if free_at > alloc {
                    alloc = free_at;
                    alloc_reason = StallReason::SchedulerFull;
                }
            }
            // "Free at cycle 0" once the holder is at ROB distance —
            // identical short-circuit to the reference (see core.rs).
            let commit_free = |commit_ring: &[u64], seq: u64, old: u64| -> u64 {
                if seq - old >= rob {
                    0
                } else {
                    commit_ring[(old as usize) & seq_mask]
                }
            };
            if m & IS_LOAD != 0 {
                if let Some(old) = loads_fifo.push(seq) {
                    let free_at = commit_free(&commit_ring, seq, old);
                    if free_at > alloc {
                        alloc = free_at;
                        alloc_reason = StallReason::LsqFull;
                    }
                }
            }
            if m & IS_STORE != 0 {
                if let Some(old) = stores_fifo.push(seq) {
                    let free_at = commit_free(&commit_ring, seq, old);
                    if free_at > alloc {
                        alloc = free_at;
                        alloc_reason = StallReason::LsqFull;
                    }
                }
            }
            let nsrc = (m >> NSRC_SHIFT) as u64 & 0x3;
            match isa {
                IsaKind::Riscv => {
                    let same_cycle = {
                        let slot = alloc_bw[(alloc as usize) & (alloc_bw.len() - 1)];
                        if slot >> 8 == alloc {
                            slot & 0xff
                        } else {
                            0
                        }
                    };
                    c.dcl_comparisons += (nsrc + 1) * same_cycle;
                    if m & HAS_DST != 0 {
                        if let Some(old) = dst_ring.push(seq) {
                            let free_at = commit_free(&commit_ring, seq, old);
                            if free_at > alloc {
                                alloc = free_at;
                                alloc_reason = StallReason::AllocRename;
                            }
                        }
                    }
                }
                IsaKind::Straight => {
                    if let Some(old) = dst_ring.push(seq) {
                        let free_at = commit_free(&commit_ring, seq, old);
                        if free_at > alloc {
                            alloc = free_at;
                            alloc_reason = StallReason::AllocRp;
                        }
                    }
                }
                IsaKind::Clockhands => {
                    if m & DST_HAND != 0 {
                        let h = ((m >> HAND_SHIFT) & HAND_MASK) as usize;
                        if let Some(old) = hand_rings[h].push(seq) {
                            let free_at = commit_free(&commit_ring, seq, old);
                            if free_at > alloc {
                                alloc = free_at;
                                alloc_reason = StallReason::AllocRp;
                            }
                        }
                    }
                }
            }
            let alloc = bw_slot(&mut alloc_bw, alloc, front_width);
            last_alloc = alloc;
            fetch_cycle = fetch_cycle.max(alloc.saturating_sub(front_latency + 8));

            // ---------- Select / issue / execute ----------
            let mut ready = 0u64;
            let mut ready_src = NO_PRODUCER;
            for &p in &t.srcs[i] {
                if p == NO_PRODUCER {
                    continue;
                }
                let rdy = if seq - p >= rob {
                    0
                } else {
                    ready_ring[(p as usize) & seq_mask]
                };
                if rdy > ready {
                    ready = rdy;
                    ready_src = p;
                }
            }
            let data_wait = ready.saturating_sub(issue_lat);
            let data_bound = data_wait > alloc + 1;
            let mut select = (alloc + 1).max(data_wait);
            let select_floor = select;
            let fu = (m & FU_MASK) as usize;
            let exec_latency = ((m >> LAT_SHIFT) & LAT_MASK) as u64;
            let units = &mut fu_free[fu];
            loop {
                let select_c = bw_slot(&mut issue_bw, select, issue_width);
                let exec_start = select_c + issue_lat;
                let best = units
                    .iter_mut()
                    .min_by_key(|f| **f)
                    .expect("at least one unit");
                if *best <= exec_start {
                    *best = if m & PIPELINED != 0 {
                        exec_start + 1
                    } else {
                        exec_start + exec_latency
                    };
                    select = select_c;
                    break;
                }
                select = (*best).saturating_sub(issue_lat).max(select_c + 1);
            }
            select_ring[(seq as usize) & sched_mask] = select;
            let exec_resource_bound = select > select_floor;
            let exec_start = select + issue_lat;

            // ---------- Memory ----------
            let mut complete = exec_start + exec_latency;
            let mut mem_stall = false;
            if m & HAS_MEM != 0 {
                let mem = t.mem[mem_idx];
                mem_cur += 1;
                if m & IS_LOAD != 0 {
                    // Prune stores no current or future load can forward
                    // from: every future exec_start is >= alloc + 1 +
                    // issue_lat (allocation is monotone), and the scan
                    // below skips any store with scommit <= exec_start.
                    let prune_floor = alloc + 1 + issue_lat;
                    while store_window
                        .front()
                        .is_some_and(|&(.., scommit, _)| scommit <= prune_floor)
                    {
                        store_window.pop_front();
                    }
                    let mut forwarded = false;
                    let mut must_wait_until = 0u64;
                    for &(sseq, saddr, ssize, sdata, scommit, spc) in store_window.iter().rev() {
                        if sseq >= seq || scommit <= exec_start {
                            continue;
                        }
                        let overlap =
                            saddr < mem.addr + mem.size as u64 && mem.addr < saddr + ssize as u64;
                        if !overlap {
                            continue;
                        }
                        if sdata <= exec_start || store_set.must_wait(pc, spc) {
                            forwarded = true;
                            complete = exec_start.max(sdata) + 1;
                            if sdata > exec_start {
                                complete = sdata + 1;
                                mem_stall = true;
                            }
                            c.stl_forwards += 1;
                        } else {
                            c.mem_order_violations += 1;
                            c.squashes += 1;
                            store_set.train_violation(pc, spc);
                            must_wait_until = sdata + VIOLATION_PENALTY;
                            mem_stall = true;
                        }
                        break; // youngest older overlapping store decides
                    }
                    if !forwarded {
                        let r = dmem.access(mem.addr);
                        c.dcache_accesses += 1;
                        if r.l1_miss {
                            c.dcache_misses += 1;
                            c.l2_accesses += 1;
                            mem_stall = true;
                        }
                        if r.l2_miss {
                            c.l2_misses += 1;
                        }
                        c.prefetches += r.prefetches as u64;
                        complete = exec_start.max(must_wait_until) + r.latency as u64;
                    }
                } else {
                    c.dcache_accesses += 1;
                    let r = dmem.access(mem.addr);
                    if r.l1_miss {
                        c.dcache_misses += 1;
                        c.l2_accesses += 1;
                    }
                    if r.l2_miss {
                        c.l2_misses += 1;
                    }
                    complete = exec_start + 1;
                }
            }

            let seq_idx = (seq as usize) & seq_mask;
            ready_ring[seq_idx] = complete;
            mem_late[seq_idx] = mem_stall;

            if mispredicted {
                c.branch_mispredicts += 1;
                c.squashes += 1;
                redirect_at = complete + 1;
            }

            // ---------- Commit ----------
            let commit = bw_slot(
                &mut commit_bw,
                (complete + 1).max(last_commit),
                commit_width,
            );
            last_commit = commit;
            commit_ring[seq_idx] = commit;

            // ---------- Stall attribution ----------
            let dep_mem = ready_src != NO_PRODUCER
                && seq.saturating_sub(ready_src) < rob
                && mem_late[(ready_src as usize) & seq_mask];
            let stall = if mem_stall {
                StallReason::Memory
            } else if data_bound {
                if dep_mem {
                    StallReason::Memory
                } else {
                    StallReason::ExecDep
                }
            } else if exec_resource_bound {
                StallReason::ExecDep
            } else {
                alloc_reason
            };
            let lane = (commit_bw[(commit as usize) & (commit_bw.len() - 1)] & 0xff) - 1;
            let slot = (commit - 1) * commit_width as u64 + lane;
            let idle = slot - next_commit_slot;
            c.stalls.add(stall, idle);
            next_commit_slot = slot + 1;

            if T::ENABLED {
                let inst = t.rebuild(i, mem_idx, ctrl_idx);
                self.tracer.record(
                    &inst,
                    &StageStamps {
                        fetch: fetch_time,
                        alloc,
                        dispatch: alloc,
                        issue: select,
                        exec: exec_start,
                        complete,
                        commit,
                        stall,
                        idle_slots: idle,
                    },
                );
            }

            if m & IS_STORE != 0 && m & HAS_MEM != 0 {
                let mem = t.mem[mem_idx];
                if store_window.len() >= STORE_WINDOW {
                    store_window.pop_front();
                }
                store_window.push_back((seq, mem.addr, mem.size, exec_start + 1, commit, pc));
            }
        }

        // ---------- Batched trace-constant counters ----------
        let n = n as u64;
        let tt = &t.totals;
        c.fetched += n;
        c.branch_preds += tt.cond + tt.indirect;
        c.checkpoints += tt.ctrl;
        c.allocated += n;
        c.decoded += n;
        c.dispatched += n;
        c.rob_writes += n;
        c.rob_reads += n;
        c.committed += n;
        c.issued += n;
        c.regfile_reads += tt.nsrc;
        c.sched_wakeups += tt.nsrc;
        c.regfile_writes += tt.dsts;
        c.fp_ops += tt.fp;
        c.int_ops += n - tt.fp;
        c.lsq_searches += tt.mem;
        c.loads += tt.loads;
        c.stores += tt.stores;
        match isa {
            IsaKind::Riscv => {
                c.rmt_reads += tt.nsrc;
                c.rmt_writes += tt.dsts;
                c.freelist_ops += tt.dsts;
            }
            IsaKind::Straight => c.rp_updates += n,
            IsaKind::Clockhands => c.rp_updates += tt.hand_dsts,
        }

        // ---------- Finish (same close-out as the reference) ----------
        c.cycles = if c.committed == 0 { 0 } else { last_commit };
        c.checkpoint_bits = cfg.checkpoint_bits() as u64;
        c.stalls.drain = commit_width as u64 * c.cycles - next_commit_slot;
        (c, self.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use ch_common::config::WidthClass;

    fn workload() -> Vec<DynInst> {
        let prog = clockhands::asm::assemble(
            "li v, 1500
             li u, 8192
             li t, 0
         .l: mul  s, t[0], t[0]
             sd   s[0], 0(u[0])
             ld   s, 0(u[0])
             addi u, u[0], 64
             andi u, u[0], 16383
             addi u, u[0], 8192
             addi t, t[0], 1
             bne  t[0], v[0], .l
             halt t[0]",
        )
        .expect("assembles");
        clockhands::interp::Interpreter::new(prog)
            .expect("valid")
            .trace(10_000_000)
            .expect("runs")
            .0
    }

    #[test]
    fn matches_reference_counters() {
        let insts = workload();
        let soa = SoaTrace::new(insts.iter());
        for width in [WidthClass::W4, WidthClass::W8] {
            let cfg = MachineConfig::preset(width, IsaKind::Clockhands);
            let mut reference = Simulator::new(cfg.clone());
            for inst in &insts {
                reference.step(inst);
            }
            assert_eq!(run_fast(cfg, &soa), reference.finish(), "{width:?}");
        }
    }

    #[test]
    fn traced_run_matches_reference_stamps() {
        let insts = workload();
        let soa = SoaTrace::new(insts.iter());
        let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        let mut reference = Simulator::with_tracer(cfg.clone(), crate::TraceBuffer::new());
        for inst in &insts {
            reference.step(inst);
        }
        let ref_counters = reference.finish();
        let engine = FastEngine::with_tracer(cfg, crate::TraceBuffer::new());
        let (fast_counters, buf) = engine.run(&soa);
        assert_eq!(fast_counters, ref_counters);
        let ref_buf = reference.into_tracer();
        assert_eq!(buf.records().len(), ref_buf.records().len());
        for (a, b) in buf.records().iter().zip(ref_buf.records()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_stream_is_all_zero() {
        let soa = SoaTrace::new(std::iter::empty());
        let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        let c = run_fast(cfg.clone(), &soa);
        assert_eq!(c.cycles, 0);
        assert_eq!(c.committed, 0);
        assert!(c.slots_conserved(cfg.commit_width));
    }

    #[test]
    #[should_panic(expected = "dense commit-order")]
    fn sparse_sequence_numbers_are_rejected() {
        let sparse = [DynInst::new(3, 0x1000, OpClass::IntAlu)];
        let _ = SoaTrace::new(sparse.iter());
    }
}
