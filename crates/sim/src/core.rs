//! The cycle-level out-of-order core model.
//!
//! A one-pass scoreboard over the committed instruction stream: each
//! dynamic instruction is timed through fetch → allocation (rename or
//! RP-calculation) → dispatch → select/issue → execute → commit, with
//! resource constraints (fetch width and taken-branch breaks, I-cache,
//! ROB/scheduler/LSQ occupancy, per-ISA physical-register availability,
//! issue bandwidth, functional units, the D-cache hierarchy, store-to-load
//! forwarding, store-set ordering, and in-order commit width). Branches
//! are predicted with the real TAGE/BTB/RAS state and a misprediction
//! redirects fetch when the branch resolves — so the rename-free ISAs'
//! two-cycle-shorter front end shows up directly as a smaller penalty.
//!
//! Wrong-path instructions are not replayed through the cache model
//! (their first-order energy cost is accounted as wasted fetch slots);
//! see DESIGN.md for the substitution argument.
//!
//! ## Observability
//!
//! Two layers make the timing explainable (DESIGN.md § "Pipeline
//! model"):
//!
//! * **Stall attribution** — every commit slot (`commit_width` per
//!   cycle) is either consumed by a committing instruction or blamed on
//!   one [`StallReason`]; the per-reason totals accumulate in
//!   [`Counters::stalls`] and satisfy
//!   `committed + attributed == commit_width × cycles` exactly.
//! * **Pipeline tracing** — a [`PipelineTracer`] type parameter
//!   receives per-instruction [`StageStamps`]; the default
//!   [`NullTracer`] monomorphises to nothing, so tracing off is free.

use crate::cache::{Cache, MemHierarchy};
use crate::storeset::StoreSet;
use crate::tage::{Btb, Ras, Tage};
use crate::trace::{NullTracer, PipelineTracer, StageStamps};
use ch_common::config::MachineConfig;
use ch_common::inst::{CtrlKind, DstTag, DynInst, NO_PRODUCER};
use ch_common::op::{FuKind, OpClass};
use ch_common::stats::{Counters, StallReason};
use ch_common::IsaKind;
use std::collections::VecDeque;

/// In-flight stores tracked for forwarding/ordering.
pub(crate) const STORE_WINDOW: usize = 192;
/// Extra penalty when a memory-order violation squashes a load.
pub(crate) const VIOLATION_PENALTY: u64 = 10;

/// Length (power of two) of the sequence-indexed rings (`ready_ring`,
/// `commit_ring`, `mem_late`).
///
/// The ROB bounds how far back a *live* producer or resource holder can
/// sit: once `seq - old >= rob`, in-order commit plus the ROB-occupancy
/// constraint (applied to `alloc` before any ring read) guarantee
/// `commit[old] <= commit_ring[seq - rob] <= alloc`, so the old entry's
/// value can no longer bind anything — readers treat that distance as
/// "ready / free at cycle 0" instead of reading a recycled slot.
pub(crate) fn seq_ring_len(cfg: &MachineConfig) -> usize {
    (cfg.rob as usize).next_power_of_two()
}

/// Length (power of two) of `select_ring`: read at distance exactly
/// `cfg.scheduler`, and the entry for `seq` is written at the end of
/// `seq`'s own step, so a capacity of `scheduler` suffices.
pub(crate) fn sched_ring_len(cfg: &MachineConfig) -> usize {
    (cfg.scheduler as usize).next_power_of_two()
}

/// Length (power of two) of the cycle-indexed `alloc_bw` / `commit_bw`
/// rings. Both are claimed at monotonically non-decreasing cycles
/// (allocation and commit each start at the previous claim), so a
/// recycled slot always carries a strictly older tag and the tag check
/// resets it safely at *any* ring length.
const MONO_BW_RING: usize = 1 << 14;

/// Length (power of two) of the cycle-indexed `issue_bw` ring.
///
/// Issue-bandwidth claims are **not** monotone: a data-bound consumer
/// claims a far-future cycle (its producer's completion), then younger
/// independent instructions claim near cycles again. Two live claims
/// must never alias, so the ring has to cover the widest possible spread
/// of live select cycles: every claim lies in
/// `[alloc + 1, alloc + 1 + span]` where `span` is bounded by a chain of
/// dependent worst-case completions inside one ROB window — per hop at
/// most issue latency + the longest execution latency + a full memory
/// round trip + the violation penalty. Capped at 2^21 entries (16 MiB);
/// a deeper chain than that cannot arise from the preset configurations,
/// and the `debug_assert` in `bw_slot` would flag it.
pub(crate) fn issue_ring_len(cfg: &MachineConfig) -> usize {
    let per_hop = cfg.issue_latency as u64
        + 12 // longest exec_latency (IntDiv / FpDiv)
        + cfg.l1d.latency as u64
        + cfg.l2.latency as u64
        + cfg.mem_latency as u64
        + VIOLATION_PENALTY
        + 16;
    let span = (cfg.rob as u64).saturating_mul(per_hop);
    (span.clamp(MONO_BW_RING as u64, 1 << 21) as usize).next_power_of_two()
}

/// Claims one unit of bandwidth in a packed cycle-indexed ring at the
/// first cycle `>= start` with a free slot, returning that cycle. Shared
/// by the reference [`Simulator`] and the fast engine
/// (`crate::engine`) — the claim discipline is part of the timing model.
#[inline]
pub(crate) fn bw_slot(ring: &mut [u64], start: u64, width: u32) -> u64 {
    let mask = ring.len() - 1;
    let mut cycle = start;
    loop {
        let slot = &mut ring[(cycle as usize) & mask];
        let mut v = *slot;
        if v >> 8 != cycle {
            // Only strictly older (hence dead — see the ring-sizing
            // proofs above) tags may be recycled; a *newer* tag here
            // would mean two live claim windows alias.
            debug_assert!(
                v >> 8 < cycle,
                "bandwidth-ring aliasing: cycle {cycle} would destroy live slot {}",
                v >> 8
            );
            v = cycle << 8;
        }
        if v & 0xff < width as u64 {
            *slot = v + 1;
            return cycle;
        }
        cycle += 1;
    }
}

/// The simulator.
///
/// Feed it the committed instruction stream of a functional interpreter
/// and read the [`Counters`] out.
///
/// # Examples
///
/// ```
/// use ch_common::config::{MachineConfig, WidthClass};
/// use ch_common::IsaKind;
/// use ch_sim::Simulator;
/// use clockhands::asm::assemble;
/// use clockhands::interp::Interpreter;
///
/// let prog = assemble("li t, 100\n.l:\naddi t, t[0], -1\nbne t[0], zero, .l\nhalt t[0]")?;
/// let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
/// let mut sim = Simulator::new(cfg);
/// let mut cpu = Interpreter::new(prog)?;
/// let counters = sim.run(&mut cpu);
/// assert!(counters.committed > 0 && counters.cycles > 0);
/// // Top-down stall accounting is always on and conserves slots:
/// assert!(counters.slots_conserved(sim.config().commit_width));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// To additionally capture a per-instruction pipeline trace, construct
/// with [`Simulator::with_tracer`] and a
/// [`TraceBuffer`](crate::TraceBuffer); the default `T = NullTracer`
/// compiles the tracing hook away entirely.
#[derive(Debug)]
pub struct Simulator<T: PipelineTracer = NullTracer> {
    cfg: MachineConfig,
    counters: Counters,
    tracer: T,

    // Front end.
    icache: Cache,
    tage: Tage,
    btb: Btb,
    ras: Ras,
    fetch_cycle: u64,
    group_used: u32,
    group_bytes: u32,
    redirect_at: u64,

    // Rings indexed by sequence number (power-of-two lengths sized to
    // the ROB / scheduler, see `seq_ring_len` / `sched_ring_len`).
    ready_ring: Vec<u64>,
    commit_ring: Vec<u64>,
    select_ring: Vec<u64>,
    // Bandwidth rings indexed by cycle, packed `(cycle << 8) | count`
    // (the full cycle tags the slot so stale eras reset on reuse; the
    // count fits 8 bits because widths are at most 16).
    alloc_bw: Vec<u64>,
    issue_bw: Vec<u64>,
    commit_bw: Vec<u64>,

    // Occupancy FIFOs (sequence numbers).
    loads_fifo: VecDeque<u64>,
    stores_fifo: VecDeque<u64>,

    // Functional units: next-free cycle per unit instance.
    fu_free: [Vec<u64>; 7],

    // Memory.
    dmem: MemHierarchy,
    store_set: StoreSet,
    /// Recent stores: (seq, addr, size, data ready, commit, pc).
    store_window: VecDeque<(u64, u64, u8, u64, u64, u64)>,

    // ISA-specific allocation state.
    /// RISC: in-flight destination allocations (free-list pressure).
    dst_fifo: VecDeque<u64>,
    /// Clockhands: per-hand in-flight allocations.
    hand_fifos: [VecDeque<u64>; 4],

    last_alloc: u64,
    last_commit: u64,
    last_fetch_time: u64,
    /// Next unconsumed commit slot (global index `cycle-1 × width + lane`);
    /// the gap to each instruction's actual slot is the stall it explains.
    next_commit_slot: u64,
    /// Whether the instruction at each recent sequence number completed
    /// late because of the memory hierarchy (load-to-use attribution).
    mem_late: Vec<bool>,
    /// Per-instruction stage log on stderr (set `CH_SIM_TRACE=1`).
    trace_log: bool,
}

impl Simulator<NullTracer> {
    /// Creates a simulator for one machine configuration (no tracing).
    pub fn new(cfg: MachineConfig) -> Self {
        Simulator::with_tracer(cfg, NullTracer)
    }
}

impl<T: PipelineTracer> Simulator<T> {
    /// Creates a simulator that feeds every committed instruction's
    /// stage timestamps to `tracer`.
    ///
    /// Tracing is observational only: counters and cycle counts are
    /// byte-identical to an untraced run (asserted by the test-suite).
    pub fn with_tracer(cfg: MachineConfig, tracer: T) -> Self {
        let fu_free = std::array::from_fn(|k| vec![0u64; cfg.fu_counts[k].max(1) as usize]);
        Simulator {
            tracer,
            icache: Cache::new(&cfg.l1i),
            tage: Tage::new(),
            btb: Btb::new(cfg.btb_entries as usize, cfg.btb_assoc as usize),
            ras: Ras::new(cfg.ras_entries as usize),
            fetch_cycle: 0,
            group_used: 0,
            group_bytes: 0,
            redirect_at: 0,
            ready_ring: vec![0; seq_ring_len(&cfg)],
            commit_ring: vec![0; seq_ring_len(&cfg)],
            select_ring: vec![0; sched_ring_len(&cfg)],
            // Packed-zero init is a benign tag: cycle 0 is never claimed
            // (allocation starts at front_latency, commit at 1).
            alloc_bw: vec![0; MONO_BW_RING],
            issue_bw: vec![0; issue_ring_len(&cfg)],
            commit_bw: vec![0; MONO_BW_RING],
            loads_fifo: VecDeque::new(),
            stores_fifo: VecDeque::new(),
            fu_free,
            dmem: MemHierarchy::new(
                &cfg.l1d,
                &cfg.l2,
                cfg.mem_latency,
                cfg.prefetch_distance,
                cfg.prefetch_degree,
            ),
            store_set: StoreSet::new(cfg.storeset_producers, cfg.storeset_ids),
            store_window: VecDeque::new(),
            dst_fifo: VecDeque::new(),
            hand_fifos: Default::default(),
            last_alloc: 0,
            last_commit: 0,
            last_fetch_time: 0,
            next_commit_slot: 0,
            mem_late: vec![false; seq_ring_len(&cfg)],
            trace_log: std::env::var_os("CH_SIM_TRACE").is_some(),
            counters: Counters::new(),
            cfg,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The attached tracer (e.g. to inspect a
    /// [`TraceBuffer`](crate::TraceBuffer) mid-run).
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consumes the simulator, returning the tracer and its collected
    /// trace. Call [`finish`](Self::finish) first if the counters are
    /// also needed.
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Runs the whole stream to completion, returning the counters.
    pub fn run(&mut self, stream: impl Iterator<Item = DynInst>) -> Counters {
        for inst in stream {
            self.step(&inst);
        }
        self.finish()
    }

    /// Final counters (cycle count = commit time of the last instruction).
    ///
    /// Also closes the commit-slot account: the slots of the final cycle
    /// left after the last commit land in
    /// [`stalls.drain`](ch_common::stats::StallBreakdown::drain), making
    /// `committed + stalls.attributed() == commit_width × cycles` exact.
    /// An empty stream reports 0 cycles and 0 drain, so the identity
    /// holds as `0 + 0 == commit_width × 0` instead of charging a
    /// phantom drain cycle.
    pub fn finish(&self) -> Counters {
        let mut c = self.counters.clone();
        c.cycles = if c.committed == 0 {
            0
        } else {
            self.last_commit
        };
        c.checkpoint_bits = self.cfg.checkpoint_bits() as u64;
        c.stalls.drain = self.cfg.commit_width as u64 * c.cycles - self.next_commit_slot;
        c
    }

    /// Completion cycle of `producer` as seen by `seq`, or 0 when the
    /// producer is at ROB distance or beyond: the ROB constraint already
    /// forced `alloc` past such a producer's commit, so it is
    /// unconditionally ready and its recycled ring slot must not be read.
    fn ready_of(&self, seq: u64, producer: u64) -> u64 {
        if producer == NO_PRODUCER || seq.saturating_sub(producer) >= self.cfg.rob as u64 {
            0
        } else {
            self.ready_ring[(producer as usize) & (self.ready_ring.len() - 1)]
        }
    }

    /// Commit cycle of the resource-holding instruction `old`, or 0 when
    /// it sits at ROB distance or beyond (same argument as
    /// [`ready_of`](Self::ready_of): it committed at or before the cycle
    /// the ROB constraint already pushed `alloc` to, so the freed
    /// resource cannot bind allocation).
    fn commit_free_at(rob: u64, commit_ring: &[u64], seq: u64, old: u64) -> u64 {
        if seq - old >= rob {
            0
        } else {
            commit_ring[(old as usize) & (commit_ring.len() - 1)]
        }
    }

    /// Times one committed instruction.
    pub fn step(&mut self, inst: &DynInst) {
        let cfg = &self.cfg;
        let seq = inst.seq;
        let c = &mut self.counters;

        // ---------- Fetch ----------
        // First instruction on a corrected path: its bubble (if any) is
        // the squash-recovery penalty, not an ordinary front-end stall.
        let recovering = self.redirect_at > 0;
        if self.redirect_at > 0 {
            // Squashed wrong-path work: charge the lost fetch slots.
            c.fetched += cfg.front_width as u64;
            self.fetch_cycle = self.fetch_cycle.max(self.redirect_at);
            self.redirect_at = 0;
            self.group_used = 0;
            self.group_bytes = 0;
        }
        let size = inst.size as u64;
        let line = self.cfg.l1i.line as u64;
        if self.group_used == 0 {
            c.fetch_groups += 1;
            if !self.icache.access(inst.pc) {
                c.icache_misses += 1;
                // Fill from L2 (assume L2 hit for instructions).
                self.fetch_cycle += self.dmem.l2.latency as u64;
            }
            // Next-line instruction prefetch hides sequential-stream
            // misses (taken branches still pay on arrival).
            self.icache.prefill(inst.pc + line);
            self.icache.prefill(inst.pc + 2 * line);
        }
        // An instruction straddling an I$ line boundary touches both
        // lines (impossible for the aligned fixed-width layout).
        if inst.pc / line != (inst.pc + size - 1) / line {
            c.icache_straddles += 1;
            if !self.icache.access(inst.pc + size - 1) {
                c.icache_misses += 1;
                self.fetch_cycle += self.dmem.l2.latency as u64;
            }
        }
        let fetch_time = self.fetch_cycle;
        self.group_used += 1;
        self.group_bytes += size as u32;
        c.fetched += 1;
        c.fetch_bytes += size;
        let mut group_break =
            self.group_used >= cfg.front_width || self.group_bytes >= cfg.fetch_bytes;

        // ---------- Branch prediction ----------
        let mut mispredicted = false;
        if let Some(ctrl) = inst.ctrl {
            let fallthrough = inst.pc + size;
            match ctrl.kind {
                CtrlKind::Cond => {
                    c.branch_preds += 1;
                    let pred = self.tage.predict_and_update(inst.pc, ctrl.taken);
                    if pred != ctrl.taken {
                        mispredicted = true;
                    } else if ctrl.taken {
                        // Correctly-predicted taken: target from the BTB.
                        if self.btb.lookup(inst.pc) != Some(ctrl.target) {
                            // Decode-time redirect: a short bubble.
                            self.fetch_cycle += 2;
                        }
                    }
                    self.btb.update(inst.pc, ctrl.target);
                }
                CtrlKind::Jump => {
                    if self.btb.lookup(inst.pc) != Some(ctrl.target) {
                        self.fetch_cycle += 2;
                        self.btb.update(inst.pc, ctrl.target);
                    }
                }
                CtrlKind::Call => {
                    self.ras.push(fallthrough);
                    if self.btb.lookup(inst.pc) != Some(ctrl.target) {
                        self.fetch_cycle += 2;
                        self.btb.update(inst.pc, ctrl.target);
                    }
                }
                CtrlKind::Ret => {
                    if self.ras.pop() != Some(ctrl.target) {
                        mispredicted = true;
                    }
                }
                CtrlKind::IndirectJump => {
                    c.branch_preds += 1;
                    if self.btb.lookup(inst.pc) != Some(ctrl.target) {
                        mispredicted = true;
                    }
                    self.btb.update(inst.pc, ctrl.target);
                }
            }
            if ctrl.taken {
                group_break = true;
            }
        }
        if group_break {
            self.fetch_cycle += 1;
            self.group_used = 0;
            self.group_bytes = 0;
        }

        // ---------- Allocation (rename / RP-calculation) ----------
        // Each constraint below may push `alloc` later; the *last*
        // constraint to move it is remembered as the stage to blame if
        // this instruction ends up delaying commit (strictly-greater
        // updates, so ties keep the earlier pipeline stage's reason).
        let mut alloc = fetch_time + cfg.front_latency as u64;
        let mut alloc_reason = if recovering {
            StallReason::BranchRecovery
        } else {
            StallReason::Frontend
        };
        // In-order allocation behind the previous instruction (front-end
        // bandwidth): still the front end's fault.
        alloc = alloc.max(self.last_alloc);
        // ROB occupancy. This read is what licenses every later "at ROB
        // distance or beyond ⇒ free" short-circuit: from here on,
        // `alloc >= commit_ring[seq - rob]`.
        if seq >= cfg.rob as u64 {
            let free_at =
                self.commit_ring[((seq - cfg.rob as u64) as usize) & (self.commit_ring.len() - 1)];
            if free_at > alloc {
                alloc = free_at;
                alloc_reason = StallReason::RobFull;
            }
        }
        // Scheduler occupancy (entries freed at select, FIFO approx).
        if seq >= cfg.scheduler as u64 {
            let free_at = self.select_ring
                [((seq - cfg.scheduler as u64) as usize) & (self.select_ring.len() - 1)]
                + 1;
            if free_at > alloc {
                alloc = free_at;
                alloc_reason = StallReason::SchedulerFull;
            }
        }
        // Load/store queue occupancy (entries freed at commit).
        if inst.class == OpClass::Load {
            if self.loads_fifo.len() >= cfg.load_queue as usize {
                let old = self.loads_fifo.pop_front().expect("nonempty");
                let free_at = Self::commit_free_at(cfg.rob as u64, &self.commit_ring, seq, old);
                if free_at > alloc {
                    alloc = free_at;
                    alloc_reason = StallReason::LsqFull;
                }
            }
            self.loads_fifo.push_back(seq);
        }
        if inst.class == OpClass::Store {
            if self.stores_fifo.len() >= cfg.store_queue as usize {
                let old = self.stores_fifo.pop_front().expect("nonempty");
                let free_at = Self::commit_free_at(cfg.rob as u64, &self.commit_ring, seq, old);
                if free_at > alloc {
                    alloc = free_at;
                    alloc_reason = StallReason::LsqFull;
                }
            }
            self.stores_fifo.push_back(seq);
        }
        // ISA-specific physical-register availability + stage events.
        let nsrc = inst.sources().count() as u64;
        match cfg.isa {
            IsaKind::Riscv => {
                c.rmt_reads += nsrc;
                // The DCL compares this instruction's operands against the
                // destinations of every earlier instruction renamed in the
                // same cycle (quadratic in width — counted per pair).
                let same_cycle = {
                    let slot = self.alloc_bw[(alloc as usize) & (self.alloc_bw.len() - 1)];
                    if slot >> 8 == alloc {
                        slot & 0xff
                    } else {
                        0
                    }
                };
                c.dcl_comparisons += (nsrc + 1) * same_cycle;
                if inst.dst.is_some() {
                    c.rmt_writes += 1;
                    c.freelist_ops += 1;
                    let free = (cfg.phys_regs - 64) as usize;
                    if self.dst_fifo.len() >= free {
                        let old = self.dst_fifo.pop_front().expect("nonempty");
                        let free_at =
                            Self::commit_free_at(cfg.rob as u64, &self.commit_ring, seq, old);
                        if free_at > alloc {
                            alloc = free_at;
                            alloc_reason = StallReason::AllocRename;
                        }
                    }
                    self.dst_fifo.push_back(seq);
                }
            }
            IsaKind::Straight => {
                // Every instruction occupies a ring slot.
                c.rp_updates += 1;
                let limit = (cfg.phys_regs - cfg.max_ref_distance) as usize;
                if self.dst_fifo.len() >= limit {
                    let old = self.dst_fifo.pop_front().expect("nonempty");
                    let free_at = Self::commit_free_at(cfg.rob as u64, &self.commit_ring, seq, old);
                    if free_at > alloc {
                        alloc = free_at;
                        alloc_reason = StallReason::AllocRp;
                    }
                }
                self.dst_fifo.push_back(seq);
            }
            IsaKind::Clockhands => {
                if let Some(DstTag::Hand(h)) = inst.dst {
                    c.rp_updates += 1;
                    let quotas = cfg.hand_quotas.expect("clockhands config");
                    let q = quotas[h as usize].saturating_sub(cfg.max_ref_distance) as usize;
                    let fifo = &mut self.hand_fifos[h as usize];
                    if fifo.len() >= q.max(1) {
                        let old = fifo.pop_front().expect("nonempty");
                        let free_at =
                            Self::commit_free_at(cfg.rob as u64, &self.commit_ring, seq, old);
                        if free_at > alloc {
                            alloc = free_at;
                            alloc_reason = StallReason::AllocRp;
                        }
                    }
                    fifo.push_back(seq);
                }
            }
        }
        if inst.ctrl.is_some() {
            c.checkpoints += 1;
        }
        let alloc = bw_slot(&mut self.alloc_bw, alloc, cfg.front_width);
        self.last_alloc = alloc;
        c.allocated += 1;
        c.decoded += 1;
        c.dispatched += 1;
        c.rob_writes += 1;

        // Back-pressure: fetch cannot run unboundedly ahead of allocation.
        self.fetch_cycle = self
            .fetch_cycle
            .max(alloc.saturating_sub(cfg.front_latency as u64 + 8));

        // ---------- Select / issue / execute ----------
        // Last-arriving producer (remembered for load-to-use stall
        // attribution: waiting on a miss-delayed producer is a memory
        // stall, not a scheduling one).
        let mut ready = 0u64;
        let mut ready_src = NO_PRODUCER;
        for p in inst.sources() {
            let t = self.ready_of(seq, p);
            if t > ready {
                ready = t;
                ready_src = p;
            }
        }
        self.counters.regfile_reads += nsrc;
        self.counters.sched_wakeups += nsrc;
        let issue_lat = cfg.issue_latency as u64;
        // Speculative wakeup: select so execution begins when data arrives.
        let data_wait = ready.saturating_sub(issue_lat);
        let data_bound = data_wait > alloc + 1;
        let mut select = (alloc + 1).max(data_wait);
        let select_floor = select;
        // Functional unit.
        let fu = inst.class.fu_kind();
        let exec_latency = inst.class.exec_latency() as u64;
        let units = &mut self.fu_free[fu.index()];
        loop {
            let select_c = bw_slot(&mut self.issue_bw, select, cfg.issue_width);
            let exec_start = select_c + issue_lat;
            // Find a unit free at exec_start.
            let best = units
                .iter_mut()
                .min_by_key(|f| **f)
                .expect("at least one unit");
            if *best <= exec_start {
                *best = if fu.pipelined() {
                    exec_start + 1
                } else {
                    exec_start + exec_latency
                };
                select = select_c;
                break;
            }
            // Retry at the cycle the unit frees up.
            select = (*best).saturating_sub(issue_lat).max(select_c + 1);
        }
        let sel_idx = (seq as usize) & (self.select_ring.len() - 1);
        self.select_ring[sel_idx] = select;
        // Issue bandwidth or a busy functional unit pushed past the
        // dataflow-earliest cycle.
        let exec_resource_bound = select > select_floor;
        self.counters.issued += 1;
        let exec_start = select + issue_lat;
        match fu {
            FuKind::Float | FuKind::FpDiv => self.counters.fp_ops += 1,
            _ => self.counters.int_ops += 1,
        }

        // ---------- Memory ----------
        let mut complete = exec_start + exec_latency;
        // Set when the memory hierarchy (miss, store-data wait, or a
        // violation penalty) delays this instruction's completion.
        let mut mem_stall = false;
        if let Some(mem) = inst.mem {
            self.counters.lsq_searches += 1;
            if inst.class == OpClass::Load {
                self.counters.loads += 1;
                // Store-to-load: check in-flight older stores.
                let mut forwarded = false;
                let mut must_wait_until = 0u64;
                for &(sseq, saddr, ssize, sdata, scommit, spc) in self.store_window.iter().rev() {
                    if sseq >= seq || scommit <= exec_start {
                        continue;
                    }
                    let overlap =
                        saddr < mem.addr + mem.size as u64 && mem.addr < saddr + ssize as u64;
                    if !overlap {
                        continue;
                    }
                    if sdata <= exec_start || self.store_set.must_wait(inst.pc, spc) {
                        // Forward (waiting for the data if predicted).
                        forwarded = true;
                        complete = exec_start.max(sdata) + 1;
                        if sdata > exec_start {
                            complete = sdata + 1;
                            mem_stall = true;
                        }
                        self.counters.stl_forwards += 1;
                    } else {
                        // The load would have executed before the store's
                        // data: a memory-order violation.
                        self.counters.mem_order_violations += 1;
                        self.counters.squashes += 1;
                        self.store_set.train_violation(inst.pc, spc);
                        must_wait_until = sdata + VIOLATION_PENALTY;
                        mem_stall = true;
                    }
                    break; // youngest older overlapping store decides
                }
                if !forwarded {
                    let r = self.dmem.access(mem.addr);
                    self.counters.dcache_accesses += 1;
                    if r.l1_miss {
                        self.counters.dcache_misses += 1;
                        self.counters.l2_accesses += 1;
                        mem_stall = true;
                    }
                    if r.l2_miss {
                        self.counters.l2_misses += 1;
                    }
                    self.counters.prefetches += r.prefetches as u64;
                    complete = exec_start.max(must_wait_until) + r.latency as u64;
                }
            } else {
                self.counters.stores += 1;
                self.counters.dcache_accesses += 1;
                // Stores write the cache at commit; account the access now.
                let r = self.dmem.access(mem.addr);
                if r.l1_miss {
                    self.counters.dcache_misses += 1;
                    self.counters.l2_accesses += 1;
                }
                if r.l2_miss {
                    self.counters.l2_misses += 1;
                }
                complete = exec_start + 1;
            }
        }

        if inst.dst.is_some() {
            self.counters.regfile_writes += 1;
        }
        let seq_idx = (seq as usize) & (self.ready_ring.len() - 1);
        self.ready_ring[seq_idx] = complete;
        self.mem_late[seq_idx] = mem_stall;

        // Branch resolution → redirect on mispredict.
        if mispredicted {
            self.counters.branch_mispredicts += 1;
            self.counters.squashes += 1;
            self.redirect_at = complete + 1;
        }

        // ---------- Commit ----------
        let commit = bw_slot(
            &mut self.commit_bw,
            (complete + 1).max(self.last_commit),
            self.cfg.commit_width,
        );
        self.last_commit = commit;
        let commit_idx = (seq as usize) & (self.commit_ring.len() - 1);
        self.commit_ring[commit_idx] = commit;
        self.counters.committed += 1;
        self.counters.rob_reads += 1;

        // ---------- Stall attribution (top-down commit-slot account) ----------
        // This instruction occupies one commit slot; every slot skipped
        // since the previous commit was idle *because this instruction
        // arrived late*, so the whole gap is blamed on the latest stage
        // that delayed it: its own memory access, then a memory-late
        // producer, then execution dataflow/resources, then whatever
        // bound allocation.
        let dep_mem = ready_src != NO_PRODUCER
            && seq.saturating_sub(ready_src) < self.cfg.rob as u64
            && self.mem_late[(ready_src as usize) & (self.mem_late.len() - 1)];
        let stall = if mem_stall {
            StallReason::Memory
        } else if data_bound {
            if dep_mem {
                StallReason::Memory
            } else {
                StallReason::ExecDep
            }
        } else if exec_resource_bound {
            StallReason::ExecDep
        } else {
            alloc_reason
        };
        let lane = (self.commit_bw[(commit as usize) & (self.commit_bw.len() - 1)] & 0xff) - 1;
        let slot = (commit - 1) * self.cfg.commit_width as u64 + lane;
        let idle = slot - self.next_commit_slot;
        self.counters.stalls.add(stall, idle);
        self.next_commit_slot = slot + 1;

        self.tracer.record(
            inst,
            &StageStamps {
                fetch: fetch_time,
                alloc,
                dispatch: alloc,
                issue: select,
                exec: exec_start,
                complete,
                commit,
                stall,
                idle_slots: idle,
            },
        );

        if self.trace_log {
            eprintln!(
                "seq {seq} pc {:#x} {:?} fetch {fetch_time} alloc {alloc} select {select} \
exec {exec_start} complete {complete} commit {commit}",
                inst.pc, inst.class
            );
        }

        // Track stores for forwarding decisions by later loads.
        if inst.class == OpClass::Store {
            if let Some(mem) = inst.mem {
                if self.store_window.len() >= STORE_WINDOW {
                    self.store_window.pop_front();
                }
                self.store_window.push_back((
                    seq,
                    mem.addr,
                    mem.size,
                    exec_start + 1,
                    commit,
                    inst.pc,
                ));
            }
        }
        self.last_fetch_time = fetch_time;
    }
}
