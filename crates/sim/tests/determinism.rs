//! Simulator-level integration properties: determinism, monotonicity in
//! machine size, and sane behaviour of the ISA-specific allocation
//! stalls.

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::IsaKind;
use ch_sim::Simulator;
use clockhands::asm::assemble;
use clockhands::interp::Interpreter;

fn trace_of(src: &str) -> Vec<ch_common::DynInst> {
    let prog = assemble(src).expect("assembles");
    Interpreter::new(prog)
        .expect("valid")
        .trace(10_000_000)
        .expect("runs")
        .0
}

fn mixed_workload() -> Vec<ch_common::DynInst> {
    trace_of(
        "li v, 3000
         li u, 8192
         li t, 0
         li t, 1
     .l: addi t, t[1], 1
         mul  t, t[0], t[2]
         and  t, t[0], v[0]
         sd   t[0], 0(u[0])
         ld   t, 0(u[0])
         addi u, u[0], 8
         andi u, u[0], 16383
         addi u, u[1], 8192
         addi t, t[4], 1
         bne  t[0], v[0], .l
         halt t[0]",
    )
}

#[test]
fn identical_runs_are_identical() {
    let t = mixed_workload();
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let a = Simulator::new(cfg.clone()).run(t.iter().cloned());
    let b = Simulator::new(cfg).run(t.iter().cloned());
    assert_eq!(a, b, "the simulator must be deterministic");
}

#[test]
fn cycle_count_monotone_in_machine_size() {
    // A strictly larger machine must not be slower on the same trace.
    let t = mixed_workload();
    let mut prev: Option<u64> = None;
    for w in [WidthClass::W4, WidthClass::W8, WidthClass::W16] {
        let c =
            Simulator::new(MachineConfig::preset(w, IsaKind::Clockhands)).run(t.iter().cloned());
        if let Some(p) = prev {
            assert!(
                c.cycles <= p + p / 20,
                "{w:?} took {} cycles after {p}",
                c.cycles
            );
        }
        prev = Some(c.cycles);
    }
}

#[test]
fn tiny_hand_quota_stalls_allocation() {
    // Shrinking the t quota to barely above the reference distance must
    // cost cycles on a t-write-heavy trace (the Section 5.1 wrap rule):
    // with 18 registers only 2 allocations may be in flight at once.
    let t = mixed_workload();
    let base = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut tiny = base.clone();
    let q = base.phys_regs;
    tiny.hand_quotas = Some([18, q - 18 - 64 - 32, 64, 32]);
    let normal = Simulator::new(base).run(t.iter().cloned());
    let starved = Simulator::new(tiny).run(t.iter().cloned());
    assert!(
        starved.cycles > normal.cycles + normal.cycles / 10,
        "an 18-register t ring (2 usable) must stall: {} vs {}",
        starved.cycles,
        normal.cycles
    );
}

#[test]
fn small_rob_costs_cycles_on_memory_latency() {
    // With misses in flight, a 32-entry window cannot hide memory latency
    // the way a 1024-entry window can.
    let t = trace_of(
        "li v, 1500
         li u, 65536
         li t, 0
     .l: slli t, t[0], 13
         add  t, t[0], u[0]
         ld   t, 0(t[0])
         addi t, t[3], 1
         bne  t[0], v[0], .l
         halt t[0]",
    );
    let big = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut small = big.clone();
    small.rob = 32;
    let fast = Simulator::new(big).run(t.iter().cloned());
    let slow = Simulator::new(small).run(t.iter().cloned());
    assert!(
        slow.cycles > fast.cycles,
        "32-entry ROB ({}) vs 1024 ({})",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn straight_ring_counts_every_instruction() {
    // STRAIGHT allocates a slot per instruction: rp_updates == committed.
    use ch_baselines::straight::asm::assemble as st_assemble;
    use ch_baselines::straight::interp::Interpreter as StInterp;
    let prog = st_assemble(
        // The branch occupies a ring slot, so the loop-carried counter is
        // two slots back at the head (and a nop pads the first entry).
        "li 100
         nop
     .l: addi [2], -1
         bne [1], zero, .l
         halt [2]",
    )
    .expect("assembles");
    let mut cpu = StInterp::new(prog).expect("valid");
    let c = Simulator::new(MachineConfig::preset(WidthClass::W4, IsaKind::Straight)).run(&mut cpu);
    assert_eq!(c.rp_updates, c.committed);
}
