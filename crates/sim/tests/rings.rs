//! Regression tests for the simulator's ring-buffer hazards: the
//! sequence-indexed ready ring must never treat a *live* long-range
//! producer as ready-at-cycle-0, and the cycle-indexed issue-bandwidth
//! ring must never alias two live claim windows after a stall longer
//! than the old fixed ring length. Both tests are constructed so they
//! fail against the pre-fix fixed-size rings (64 Ki ready entries,
//! 16 Ki bandwidth entries).

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::inst::DynInst;
use ch_common::op::OpClass;
use ch_common::IsaKind;
use ch_sim::{Simulator, TraceBuffer};

/// Pre-fix ready-ring length: dependence distances beyond this used to
/// silently read "ready at cycle 0".
const OLD_READY_RING: u64 = 1 << 16;
/// Pre-fix bandwidth-ring length: claim cycles this far apart used to
/// alias the same slot.
const OLD_BW_RING: u64 = 1 << 14;

fn alu(seq: u64) -> DynInst {
    DynInst::new(seq, 0x1000 + seq * 4, OpClass::IntAlu)
}

/// A dependence distance larger than the old fixed ready ring (but
/// inside the ROB, so the producer is genuinely live) must still
/// serialise the consumer behind the producer's completion.
///
/// The producer is a cold-missing load with a huge memory latency; the
/// consumer is a dependent load to a second cold address. Fixed
/// behaviour: the consumer's miss starts only after the producer's miss
/// returns, so the run takes about two memory round trips. The pre-fix
/// ring reported the far producer ready at cycle 0, letting the
/// consumer's miss overlap the producer's — about one round trip.
#[test]
fn dependence_beyond_old_ready_ring_still_binds() {
    const FILLERS: u64 = 70_000; // distance 70_001 > 1 << 16
    const MEM_LAT: u32 = 500_000;
    const { assert!(FILLERS + 1 > OLD_READY_RING) };

    let mut cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    cfg.rob = 1 << 17; // keep the far producer inside the window
    cfg.mem_latency = MEM_LAT;

    let mut trace = Vec::with_capacity(FILLERS as usize + 2);
    trace.push(DynInst::new(0, 0x1000, OpClass::Load).with_mem(0x10_0000, 8));
    for seq in 1..=FILLERS {
        trace.push(alu(seq));
    }
    let last = FILLERS + 1;
    trace.push(
        DynInst::new(last, 0x1000 + last * 4, OpClass::Load)
            .with_srcs(&[0])
            .with_mem(0x90_0000, 8),
    );

    let c = Simulator::new(cfg).run(trace.into_iter());
    assert_eq!(c.committed, FILLERS + 2);
    // Two serialised memory round trips; the overlapped (buggy) schedule
    // finishes in roughly one (~510k cycles here).
    assert!(
        c.cycles > 9 * MEM_LAT as u64 / 5,
        "far producer must delay its consumer: {} cycles",
        c.cycles
    );
}

/// Issue-bandwidth claims separated by more than the old ring length
/// must not alias: under the pre-fix 16 Ki ring, a consumer group
/// waiting out a long miss claimed a far cycle `S`, an early filler
/// claim at `S mod 16384` then destroyed that slot, and a second
/// consumer group re-claimed `S` from scratch — issuing twice the
/// machine's issue width in one cycle.
///
/// The trace self-calibrates: a first run measures the consumer select
/// cycle's fixed offset from the memory latency, a second run picks the
/// latency so the select cycle lands exactly on a filler-swept residue
/// of the old ring.
#[test]
fn issue_bandwidth_survives_stalls_past_old_ring() {
    const GROUP: u64 = 8; // one issue_width worth of consumers
    const FILLERS: u64 = 240; // sweep ~30 low cycles, stay inside the scheduler

    let build = |mem_latency: u32| {
        let mut cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        cfg.mem_latency = mem_latency;
        let mut trace = Vec::new();
        trace.push(DynInst::new(0, 0x1000, OpClass::Load).with_mem(0x10_0000, 8));
        let mut seq = 1;
        // First consumer group: ALU ops claiming the far select cycle
        // (and booking the integer units there).
        for _ in 0..GROUP {
            trace.push(alu(seq).with_srcs(&[0]));
            seq += 1;
        }
        // Independent fillers on the *multiplier* units, so their issue
        // claims sweep the low cycles without contending for the units
        // the consumer groups booked in the far future.
        for _ in 0..FILLERS {
            trace.push(DynInst::new(seq, 0x1000 + seq * 4, OpClass::IntMul));
            seq += 1;
        }
        // Second consumer group on the FP units: free units at the far
        // cycle, so their issue stamps expose the bandwidth count there.
        for _ in 0..GROUP {
            trace.push(DynInst::new(seq, 0x1000 + seq * 4, OpClass::Fp).with_srcs(&[0]));
            seq += 1;
        }
        (cfg, trace)
    };

    let issue_stamps = |mem_latency: u32| -> Vec<u64> {
        let (cfg, trace) = build(mem_latency);
        let mut sim = Simulator::with_tracer(cfg.clone(), TraceBuffer::new());
        let c = sim.run(trace.into_iter());
        assert!(c.slots_conserved(cfg.commit_width));
        sim.tracer()
            .records()
            .iter()
            .map(|r| r.stamps.issue)
            .collect()
    };

    // Phase 1: the consumers select at `mem_latency + delta` for a
    // trace-constant delta (the only memory access is the seq-0 load).
    let m0 = 400_000u32;
    let s0 = issue_stamps(m0)[1];
    let delta = s0 - m0 as u64;

    // Phase 2: land the consumer select cycle on residue 20 of the old
    // ring — a cycle the independent fillers are guaranteed to claim.
    let target = 30 * OLD_BW_RING + 20;
    let m = (target - delta) as u32;
    let stamps = issue_stamps(m);
    let s = stamps[1];
    assert_eq!(s, m as u64 + delta, "select offset must be trace-constant");
    assert!(
        stamps
            .iter()
            .any(|&i| i != s && i % OLD_BW_RING == s % OLD_BW_RING),
        "a filler claim must hit the consumer cycle's old-ring slot"
    );

    // The hazard check proper: no cycle may issue more than issue_width
    // instructions. Under the aliasing ring both consumer groups claimed
    // cycle `s`, doubling its count.
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut by_cycle = std::collections::HashMap::new();
    for &i in &stamps {
        *by_cycle.entry(i).or_insert(0u32) += 1;
    }
    let (&worst_cycle, &worst) = by_cycle.iter().max_by_key(|&(_, &n)| n).expect("nonempty");
    assert!(
        worst <= cfg.issue_width,
        "cycle {worst_cycle} issued {worst} > issue width {}",
        cfg.issue_width
    );
    // Both consumer groups contend for cycle `s`: the first fills it,
    // the second must be pushed strictly past it (the aliasing ring
    // instead re-claimed `s` from a destroyed count).
    assert!(stamps[1..=GROUP as usize].iter().all(|&i| i == s));
    let late = &stamps[stamps.len() - GROUP as usize..];
    assert!(
        late.iter().all(|&i| i > s && i <= s + GROUP),
        "second group must issue after the full cycle {s}: {late:?}"
    );
}
