//! Regression tests for byte-accurate fetch: an instruction that
//! straddles an I$ line boundary must be charged against *both* lines,
//! the next-line instruction prefetch (`Cache::prefill`) must cover the
//! second line the straddle touches, and the fast engine must stay
//! byte-identical to the reference simulator once instruction sizes
//! stop being uniformly four bytes.

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::inst::{CtrlKind, DynInst};
use ch_common::op::OpClass;
use ch_common::IsaKind;
use ch_sim::{run_fast, Simulator, SoaTrace};

const BASE: u64 = 0x1_0000; // 64-byte aligned, matches TEXT_BASE

fn cfg() -> MachineConfig {
    MachineConfig::preset(WidthClass::W4, IsaKind::Clockhands)
}

/// A 4-byte instruction whose pc sits two bytes before a line boundary
/// occupies the last two bytes of one line and the first two of the
/// next: both lines are accessed, and the straddle is counted.
#[test]
fn straddling_instruction_counts_both_lines() {
    let line = cfg().l1i.line as u64;
    let pc = BASE + line - 2;
    let c = Simulator::new(cfg()).run(std::iter::once(
        DynInst::new(0, pc, OpClass::IntAlu).with_size(4),
    ));
    assert_eq!(c.icache_straddles, 1);
    // The group-start access misses on the first line; the same
    // group-start prefill that hides sequential-stream misses covers the
    // second line, so the straddle's extra access is a hit — prefill and
    // straddle accounting agree on line granularity.
    assert_eq!(c.icache_misses, 1);
    assert_eq!(c.fetch_bytes, 4);

    // Control: the same instruction fully inside one line.
    let c = Simulator::new(cfg()).run(std::iter::once(
        DynInst::new(0, BASE + line - 4, OpClass::IntAlu).with_size(4),
    ));
    assert_eq!(c.icache_straddles, 0);
    assert_eq!(c.icache_misses, 1);
}

/// `Cache::prefill` and the straddle check agree on what "the second
/// line" is: prefilling the line containing the straddler's last byte
/// turns the extra access into a hit.
#[test]
fn prefill_covers_the_straddled_line() {
    let mut cache = ch_sim::cache::Cache::new(&cfg().l1i);
    let line = cfg().l1i.line as u64;
    let pc = BASE + line - 2; // 4-byte unit: last byte in the next line
    assert_eq!(cache.line_of(pc + 3), cache.line_of(pc + line), "same line");
    assert_ne!(cache.line_of(pc), cache.line_of(pc + 3), "straddles");
    cache.prefill(pc + 3);
    assert!(cache.access(pc + 3), "prefilled straddle line must hit");
    assert!(!cache.access(pc), "first line untouched by that prefill");
}

/// The abstract fixed-width layout (aligned 4-byte instructions) can
/// never straddle, and consumes exactly four fetch bytes per commit.
#[test]
fn fixed_width_streams_never_straddle() {
    let n = 4096u64;
    let trace: Vec<DynInst> = (0..n)
        .map(|seq| DynInst::new(seq, BASE + 4 * seq, OpClass::IntAlu))
        .collect();
    let c = Simulator::new(cfg()).run(trace.into_iter());
    assert_eq!(c.icache_straddles, 0);
    assert_eq!(c.fetch_bytes, 4 * n);
}

/// A compressed-layout loop with mixed 2/4-byte instructions, a call
/// and a return: the fast engine's counters must be identical to the
/// reference simulator's, and the return-address stack must predict the
/// byte-accurate fallthrough (`pc + size`, not `pc + 4`).
#[test]
fn fast_engine_matches_reference_on_compact_sizes() {
    // Static layout (byte-accurate, 2- and 4-byte units):
    //   B+0   call  (2 bytes) -> B+8        fallthrough B+2
    //   B+2   alu   (4 bytes)
    //   B+6   halt  (2 bytes)
    //   B+8   alu   (2 bytes)               callee
    //   B+10  cond  (4 bytes) -> B+8        loop back
    //   B+14  ret   (2 bytes) -> B+2
    let mut trace: Vec<DynInst> = Vec::new();
    let mut seq = 0u64;
    let mut push = |t: &mut Vec<DynInst>, d: DynInst| {
        t.push(d);
        seq += 1;
    };
    push(
        &mut trace,
        DynInst::new(0, BASE, OpClass::CallRet)
            .with_size(2)
            .with_ctrl(CtrlKind::Call, true, BASE + 8),
    );
    for k in 0..400u64 {
        let s = trace.len() as u64;
        push(
            &mut trace,
            DynInst::new(s, BASE + 8, OpClass::IntAlu).with_size(2),
        );
        let s = trace.len() as u64;
        push(
            &mut trace,
            DynInst::new(s, BASE + 10, OpClass::CondBr)
                .with_size(4)
                .with_ctrl(CtrlKind::Cond, k != 399, BASE + 8),
        );
    }
    let s = trace.len() as u64;
    push(
        &mut trace,
        DynInst::new(s, BASE + 14, OpClass::CallRet)
            .with_size(2)
            .with_ctrl(CtrlKind::Ret, true, BASE + 2),
    );
    let s = trace.len() as u64;
    push(
        &mut trace,
        DynInst::new(s, BASE + 2, OpClass::IntAlu).with_size(4),
    );
    let s = trace.len() as u64;
    push(
        &mut trace,
        DynInst::new(s, BASE + 6, OpClass::Other).with_size(2),
    );

    let soa = SoaTrace::new(&trace);
    let fast = run_fast(cfg(), &soa);
    let bytes = trace_bytes(&trace);
    let reference = Simulator::new(cfg()).run(trace.into_iter());
    assert_eq!(fast, reference, "fast engine diverged from reference");
    assert_eq!(
        reference.fetch_bytes, bytes,
        "fetch bytes are the sum of committed sizes"
    );
}

/// The return-address stack pushes the byte-accurate fallthrough of a
/// compact call (`pc + size`); a hardwired `pc + 4` would make the
/// matching return a misprediction.
#[test]
fn ras_predicts_byte_accurate_fallthrough() {
    let trace = vec![
        DynInst::new(0, BASE, OpClass::CallRet)
            .with_size(2)
            .with_ctrl(CtrlKind::Call, true, BASE + 8),
        DynInst::new(1, BASE + 8, OpClass::IntAlu).with_size(2),
        DynInst::new(2, BASE + 10, OpClass::CallRet)
            .with_size(2)
            .with_ctrl(CtrlKind::Ret, true, BASE + 2),
        DynInst::new(3, BASE + 2, OpClass::Other).with_size(4),
    ];
    let c = Simulator::new(cfg()).run(trace.into_iter());
    assert_eq!(c.branch_mispredicts, 0);
}

fn trace_bytes(trace: &[DynInst]) -> u64 {
    trace.iter().map(|d| d.size as u64).sum()
}
