//! Observability-layer integration properties: the stall-attribution
//! account must be *conservative* (every commit slot is either a
//! committed instruction or an attributed stall — no slot counted twice,
//! none dropped), and tracing must be purely observational (counters
//! byte-identical with tracing on and off).

use ch_common::config::{MachineConfig, WidthClass};
use ch_common::stats::StallReason;
use ch_common::IsaKind;
use ch_sim::{Simulator, TraceBuffer};
use clockhands::asm::assemble;
use clockhands::interp::Interpreter;

fn trace_of(src: &str) -> Vec<ch_common::DynInst> {
    let prog = assemble(src).expect("assembles");
    Interpreter::new(prog)
        .expect("valid")
        .trace(10_000_000)
        .expect("runs")
        .0
}

/// Loads, stores, multiplies, a dependent chain, and a loop branch —
/// enough to touch every stall category's machinery.
fn mixed_workload() -> Vec<ch_common::DynInst> {
    trace_of(
        "li v, 3000
         li u, 8192
         li t, 0
         li t, 1
     .l: addi t, t[1], 1
         mul  t, t[0], t[2]
         and  t, t[0], v[0]
         sd   t[0], 0(u[0])
         ld   t, 0(u[0])
         addi u, u[0], 8
         andi u, u[0], 16383
         addi u, u[1], 8192
         addi t, t[4], 1
         bne  t[0], v[0], .l
         halt t[0]",
    )
}

#[test]
fn commit_slots_are_conserved_across_widths() {
    let t = mixed_workload();
    for width in [WidthClass::W4, WidthClass::W8, WidthClass::W16] {
        let cfg = MachineConfig::preset(width, IsaKind::Clockhands);
        let commit_width = cfg.commit_width;
        let c = Simulator::new(cfg).run(t.iter().cloned());
        assert!(
            c.slots_conserved(commit_width),
            "{width:?}: committed {} + attributed {} != {} x {}",
            c.committed,
            c.stalls.attributed(),
            commit_width,
            c.cycles
        );
        assert!(
            c.stalls.drain < commit_width as u64,
            "drain is a final-cycle remainder"
        );
    }
}

#[test]
fn attribution_uses_isa_exclusive_categories() {
    // The allocation-stage stall category must match the ISA: RISC may
    // only ever report renamer (free-list) stalls, the distance ISAs
    // only RP-wrap stalls.
    let t = mixed_workload();
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let c = Simulator::new(cfg).run(t.iter().cloned());
    assert_eq!(c.stalls.alloc_rename, 0, "no renamer on Clockhands");
    // The mixed workload is dependence- and store-heavy: the dominant
    // categories must be populated.
    assert!(
        c.stalls.exec_dep > 0 || c.stalls.memory > 0,
        "a dependent chain with memory traffic must show backend stalls"
    );
}

#[test]
fn squash_recovery_is_attributed() {
    // A data-dependent unpredictable branch pattern forces mispredicts;
    // their recovery bubbles must land in `branch_recovery`.
    let t = trace_of(
        "li v, 2000
         li v, 1103515245
         li u, 777
         li t, 0
     .l: mul  u, u[0], v[0]
         addi u, u[0], 12345
         srli s, u[0], 9
         andi s, s[0], 1
         beq  s[0], zero, .e
         addi u, u[0], 1
     .e: addi t, t[0], 1
         bne  t[0], v[1], .l
         halt t[0]",
    );
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let commit_width = cfg.commit_width;
    let c = Simulator::new(cfg).run(t.iter().cloned());
    assert!(c.branch_mispredicts > 50, "pattern must mispredict");
    assert!(
        c.stalls.branch_recovery > 0,
        "mispredict recovery must be attributed: {:?}",
        c.stalls
    );
    assert!(c.slots_conserved(commit_width));
}

#[test]
fn tiny_hand_quota_shows_up_as_rp_stall() {
    // The Section 5.1 wrap rule: starving the t hand must surface as
    // alloc-rp attributed slots, and conservation must still hold.
    let t = mixed_workload();
    let base = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut tiny = base.clone();
    let q = base.phys_regs;
    tiny.hand_quotas = Some([18, q - 18 - 64 - 32, 64, 32]);
    let commit_width = tiny.commit_width;
    let normal = Simulator::new(base).run(t.iter().cloned());
    let starved = Simulator::new(tiny).run(t.iter().cloned());
    assert!(
        starved.stalls.alloc_rp > normal.stalls.alloc_rp,
        "starved quota must increase RP-wrap stalls ({} vs {})",
        starved.stalls.alloc_rp,
        normal.stalls.alloc_rp
    );
    assert!(starved.slots_conserved(commit_width));
}

#[test]
fn empty_stream_reports_zero_cycles() {
    // No instructions means no cycles: the conservation identity closes
    // as 0 + 0 == commit_width × 0, with no phantom drain slots.
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let commit_width = cfg.commit_width;
    let c = Simulator::new(cfg).run(std::iter::empty());
    assert_eq!(c.cycles, 0, "an empty stream must not report cycles");
    assert_eq!(c.committed, 0);
    assert_eq!(c.stalls.drain, 0, "no commit slots were ever offered");
    assert_eq!(c.stalls.attributed(), 0);
    assert!(c.slots_conserved(commit_width));
    assert_eq!(c.ipc(), 0.0);
}

#[test]
fn tracing_does_not_change_results() {
    let t = mixed_workload();
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let plain = Simulator::new(cfg.clone()).run(t.iter().cloned());
    let mut traced_sim = Simulator::with_tracer(cfg, TraceBuffer::new());
    let traced = traced_sim.run(t.iter().cloned());
    assert_eq!(plain, traced, "tracing must be purely observational");
    let buf = traced_sim.into_tracer();
    assert_eq!(buf.records().len() as u64, traced.committed);
}

#[test]
fn stage_stamps_are_monotone() {
    let t = mixed_workload();
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut sim = Simulator::with_tracer(cfg, TraceBuffer::new());
    sim.run(t.iter().cloned());
    let mut last_commit = 0;
    for r in sim.tracer().records() {
        let s = &r.stamps;
        assert!(s.fetch < s.alloc, "front-end latency separates the two");
        assert_eq!(s.alloc, s.dispatch, "alloc and dispatch share a cycle");
        assert!(s.dispatch < s.issue);
        assert!(s.issue <= s.exec);
        assert!(s.exec < s.complete);
        assert!(s.complete < s.commit);
        assert!(s.commit >= last_commit, "commit is in order");
        last_commit = s.commit;
    }
}

#[test]
fn trace_idle_slots_match_breakdown() {
    // The per-instruction idle_slots recorded in the trace are the same
    // account as the aggregate breakdown (minus the final drain).
    let t = mixed_workload();
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut sim = Simulator::with_tracer(cfg, TraceBuffer::new());
    let c = sim.run(t.iter().cloned());
    let per_inst: u64 = sim
        .tracer()
        .records()
        .iter()
        .map(|r| r.stamps.idle_slots)
        .sum();
    assert_eq!(per_inst + c.stalls.drain, c.stalls.attributed());
    // And each reason's total matches the per-record sum.
    for reason in StallReason::ALL {
        let from_trace: u64 = sim
            .tracer()
            .records()
            .iter()
            .filter(|r| r.stamps.stall == reason)
            .map(|r| r.stamps.idle_slots)
            .sum();
        assert_eq!(from_trace, c.stalls.get(reason), "{}", reason.label());
    }
}

#[test]
fn kanata_output_is_well_formed() {
    let t = mixed_workload();
    let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
    let mut sim = Simulator::with_tracer(cfg, TraceBuffer::with_limit(100));
    sim.run(t.iter().cloned());
    let k = sim.tracer().to_kanata();
    assert!(k.starts_with("Kanata\t0004\n"));
    assert_eq!(k.lines().filter(|l| l.starts_with("I\t")).count(), 100);
    assert_eq!(k.lines().filter(|l| l.starts_with("R\t")).count(), 100);
    // Cycle advances are strictly positive (monotone timeline).
    assert!(k
        .lines()
        .filter(|l| l.starts_with("C\t"))
        .all(|l| l[2..].parse::<u64>().map(|d| d > 0).unwrap_or(false)));

    let j = sim.tracer().to_jsonl();
    assert_eq!(j.lines().count(), 100);
    assert!(j
        .lines()
        .all(|l| l.starts_with("{\"seq\":") && l.ends_with('}')));
}
