//! Property tests for the RISC renaming model: renamed physical dataflow
//! must be exactly the architectural dataflow (no false dependencies, no
//! lost true dependencies), and snapshot/restore must recover mappings.

use ch_baselines::riscv::rename::Renamer;
use proptest::prelude::*;

/// A tiny logical instruction: optional dst, up to two sources, over 8
/// logical registers (1..=8; 0 is the zero register and never used here).
fn arb_group() -> impl Strategy<Value = Vec<(Option<u8>, Vec<u8>)>> {
    let inst = (
        proptest::option::of(1u8..9),
        proptest::collection::vec(1u8..9, 0..2),
    );
    proptest::collection::vec(inst, 1..8)
}

proptest! {
    #[test]
    fn renamed_dataflow_matches_architectural(groups in proptest::collection::vec(arb_group(), 1..20)) {
        let mut renamer = Renamer::new(512);
        // Architectural model: logical reg -> id of the defining write.
        let mut arch: [u64; 9] = [0; 9];
        // Physical model: phys reg -> id of the defining write.
        let mut phys_def: std::collections::HashMap<u32, u64> =
            (0..9u32).map(|r| (r, 0u64)).collect();
        let mut write_id = 1u64;
        for group in &groups {
            let Some((outs, _)) = renamer.rename_group(group) else {
                // Free list exhausted (we never commit): stop cleanly.
                return Ok(());
            };
            for ((dst, srcs), renamed) in group.iter().zip(&outs) {
                // Each renamed source must map to the write that the
                // architectural state says produced it.
                for (l, p) in srcs.iter().zip(&renamed.srcs) {
                    let want = arch[*l as usize];
                    let got = phys_def.get(p).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "logical x{} via phys {}", l, p);
                }
                if let Some(l) = dst {
                    let p = renamed.dst.expect("dst renamed");
                    // No false dependency: a fresh physical register.
                    prop_assert!(
                        phys_def.get(&p).copied().unwrap_or(0) == 0
                            || renamed.prev_dst.is_some(),
                        "fresh register expected"
                    );
                    phys_def.insert(p, write_id);
                    arch[*l as usize] = write_id;
                    write_id += 1;
                }
            }
        }
    }

    #[test]
    fn snapshot_restore_recovers_all_mappings(
        before in arb_group(),
        after in arb_group(),
    ) {
        let mut r = Renamer::new(512);
        let _ = r.rename_group(&before);
        let snap = r.snapshot();
        let mappings: Vec<u32> = (0..64).map(|l| r.mapping(l)).collect();
        let speculated = r.rename_group(&after);
        r.restore(&snap);
        if let Some((outs, _)) = speculated {
            for o in outs {
                if let Some(p) = o.dst {
                    r.release(p);
                }
            }
        }
        for (l, want) in mappings.iter().enumerate() {
            prop_assert_eq!(r.mapping(l as u8), *want);
        }
    }
}

#[test]
fn sustained_rename_commit_throughput() {
    // Renaming forever with prompt commit must never exhaust the free
    // list (the release path is sound).
    let mut r = Renamer::new(96); // 32 free registers
    for i in 0..10_000u64 {
        let l = (1 + (i % 30)) as u8;
        let (outs, _) = r
            .rename_group(&[(Some(l), vec![l])])
            .expect("free list stable under commit");
        r.release(outs[0].prev_dst.expect("always a previous mapping"));
    }
    assert_eq!(r.free_count(), 32);
}
