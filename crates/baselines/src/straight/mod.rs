//! STRAIGHT baseline: operands by inter-instruction distance.
//!
//! Every executed instruction is implicitly assigned the next slot of a
//! single ring buffer (so *inter-instruction* distance equals
//! *inter-register* distance), and a source operand `[d]` names the result
//! of the instruction `d` positions earlier in program order. The maximum
//! reference distance is 127 (Table 2: 127 unified logical registers).
//! The stack pointer lives in a special register updated only by
//! `SPADDi` (Section 4.2).

pub mod asm;
pub mod interp;

use crate::prog::{CheckInst, Prog};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use ch_common::op::OpClass;

/// Maximum source reference distance (M in the paper).
pub const MAX_DISTANCE: u8 = 127;

/// A STRAIGHT source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StSrc {
    /// `[d]`: the result of the instruction `d` back in program order
    /// (`1..=127`).
    Dist(u8),
    /// The special stack-pointer register.
    Sp,
    /// The hardwired zero register.
    Zero,
}

impl StSrc {
    /// Whether the operand is statically valid.
    pub fn is_valid(self) -> bool {
        match self {
            StSrc::Dist(d) => (1..=MAX_DISTANCE).contains(&d),
            StSrc::Sp | StSrc::Zero => true,
        }
    }
}

impl std::fmt::Display for StSrc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StSrc::Dist(d) => write!(f, "[{d}]"),
            StSrc::Sp => f.write_str("sp"),
            StSrc::Zero => f.write_str("zero"),
        }
    }
}

/// One STRAIGHT instruction. Destinations are implicit (the next ring
/// slot), so no instruction carries a destination field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StInst {
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// First source.
        src1: StSrc,
        /// Second source.
        src2: StSrc,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Source.
        src1: StSrc,
        /// Immediate.
        imm: i32,
    },
    /// Load immediate.
    Li {
        /// Immediate value.
        imm: i64,
    },
    /// Memory load.
    Load {
        /// Width/extension.
        op: LoadOp,
        /// Base address source.
        base: StSrc,
        /// Byte offset.
        offset: i32,
    },
    /// Memory store (produces no value; still occupies a ring slot).
    Store {
        /// Value source.
        value: StSrc,
        /// Base address source.
        base: StSrc,
        /// Byte offset.
        offset: i32,
        /// Width.
        op: StoreOp,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        cond: BrCond,
        /// First source.
        src1: StSrc,
        /// Second source.
        src2: StSrc,
        /// Taken target (instruction index).
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target (instruction index).
        target: u32,
    },
    /// Direct call: the return address is the produced value.
    Call {
        /// Callee entry (instruction index).
        target: u32,
    },
    /// Indirect jump / return (`ret [d]` in Fig. 1(c)).
    JumpReg {
        /// Target address source.
        src: StSrc,
    },
    /// Add an immediate to the special SP register (`spaddi`).
    SpAddi {
        /// Immediate added to SP.
        imm: i32,
    },
    /// Register move (the relay instruction STRAIGHT needs so often).
    Mv {
        /// Source.
        src: StSrc,
    },
    /// No-operation (convergence-point padding).
    Nop,
    /// Stop execution, reporting `src` as the exit value.
    Halt {
        /// Exit-value source.
        src: StSrc,
    },
}

impl StInst {
    /// Whether the instruction produces a meaningful result value in its
    /// ring slot (every instruction *occupies* a slot, but only these
    /// write the register file).
    pub fn produces_value(&self) -> bool {
        matches!(
            self,
            StInst::Alu { .. }
                | StInst::AluImm { .. }
                | StInst::Li { .. }
                | StInst::Load { .. }
                | StInst::Call { .. }
                | StInst::Mv { .. }
        )
    }

    /// Source operands in operand order.
    pub fn srcs(&self) -> Vec<StSrc> {
        match *self {
            StInst::Alu { src1, src2, .. } => vec![src1, src2],
            StInst::AluImm { src1, .. } => vec![src1],
            StInst::Li { .. }
            | StInst::Jump { .. }
            | StInst::Call { .. }
            | StInst::SpAddi { .. }
            | StInst::Nop => vec![],
            StInst::Load { base, .. } => vec![base],
            StInst::Store { value, base, .. } => vec![value, base],
            StInst::Branch { src1, src2, .. } => vec![src1, src2],
            StInst::JumpReg { src } => vec![src],
            StInst::Mv { src } => vec![src],
            StInst::Halt { src } => vec![src],
        }
    }

    /// Coarse operation class.
    pub fn class(&self) -> OpClass {
        match *self {
            StInst::Alu { op, .. } | StInst::AluImm { op, .. } => op.class(),
            StInst::Li { .. } | StInst::SpAddi { .. } => OpClass::IntAlu,
            StInst::Load { .. } => OpClass::Load,
            StInst::Store { .. } => OpClass::Store,
            StInst::Branch { .. } => OpClass::CondBr,
            StInst::Jump { .. } => OpClass::Jump,
            StInst::Call { .. } | StInst::JumpReg { .. } => OpClass::CallRet,
            StInst::Mv { .. } => OpClass::Move,
            StInst::Nop => OpClass::Nop,
            StInst::Halt { .. } => OpClass::Other,
        }
    }
}

impl CheckInst for StInst {
    fn check(&self, _at: u32, len: u32) -> Result<(), String> {
        for s in self.srcs() {
            if !s.is_valid() {
                return Err(format!("invalid source operand {s}"));
            }
        }
        let target = match *self {
            StInst::Branch { target, .. } | StInst::Jump { target } | StInst::Call { target } => {
                Some(target)
            }
            _ => None,
        };
        if let Some(t) = target {
            if t >= len {
                return Err(format!("target {t} out of range"));
            }
        }
        Ok(())
    }
}

/// A STRAIGHT program.
pub type StProgram = Prog<StInst>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_zero_is_invalid() {
        // An instruction cannot reference itself: distances start at 1.
        assert!(!StSrc::Dist(0).is_valid());
        assert!(StSrc::Dist(1).is_valid());
        assert!(StSrc::Dist(127).is_valid());
        assert!(!StSrc::Dist(128).is_valid());
    }

    #[test]
    fn every_instruction_occupies_a_slot_but_few_produce() {
        assert!(StInst::Li { imm: 3 }.produces_value());
        assert!(StInst::Mv {
            src: StSrc::Dist(1)
        }
        .produces_value());
        assert!(StInst::Call { target: 0 }.produces_value());
        assert!(!StInst::Nop.produces_value());
        assert!(!StInst::SpAddi { imm: -8 }.produces_value());
        assert!(!StInst::Store {
            value: StSrc::Dist(1),
            base: StSrc::Sp,
            offset: 0,
            op: StoreOp::Sd
        }
        .produces_value());
    }

    #[test]
    fn validation_rejects_bad_distance() {
        let mut p = StProgram::new();
        p.insts.push(StInst::Mv {
            src: StSrc::Dist(0),
        });
        assert!(p.validate().is_err());
    }
}
