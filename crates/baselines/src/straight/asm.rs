//! Textual assembler / disassembler for STRAIGHT (Fig. 1(c) syntax).
//!
//! Destinations are implicit, so instructions simply omit them:
//! `addi [2], 1`, `sd [4], 0(sp)`, `mv [6]`, `spaddi -8`, `ret [2]`.

use super::{StInst, StProgram, StSrc, MAX_DISTANCE};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use std::collections::BTreeMap;

pub use ch_common::error::AsmError;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError::new(line, message))
}

fn parse_src(tok: &str, line: usize) -> Result<StSrc, AsmError> {
    match tok {
        "sp" => return Ok(StSrc::Sp),
        "zero" => return Ok(StSrc::Zero),
        _ => {}
    }
    if tok.starts_with('[') && tok.ends_with(']') {
        // Parse wider than u8 so `[256]` reports a range problem rather
        // than a generic parse failure, then enforce the architectural
        // 1..=127 reach here instead of deferring to validate().
        if let Ok(d) = tok[1..tok.len() - 1].parse::<u32>() {
            if d == 0 || d > MAX_DISTANCE as u32 {
                return err(
                    line,
                    format!("distance {d} in `{tok}` out of range (1..={MAX_DISTANCE})"),
                );
            }
            return Ok(StSrc::Dist(d as u8));
        }
    }
    err(line, format!("bad source operand `{tok}`"))
}

fn parse_imm<T: TryFrom<i64>>(tok: &str, line: usize) -> Result<T, AsmError> {
    let v = if let Some(hex) = tok.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| ())
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v).map_err(|_| ())
    } else {
        tok.parse::<i64>().map_err(|_| ())
    };
    match v.ok().and_then(|v| T::try_from(v).ok()) {
        Some(v) => Ok(v),
        None => err(line, format!("bad immediate `{tok}`")),
    }
}

fn parse_mem(tok: &str, line: usize) -> Result<(i32, StSrc), AsmError> {
    let open = tok.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected off(base), got `{tok}`"),
    })?;
    if !tok.ends_with(')') {
        return err(line, format!("expected off(base), got `{tok}`"));
    }
    let off = if tok[..open].is_empty() {
        0
    } else {
        parse_imm(&tok[..open], line)?
    };
    Ok((off, parse_src(&tok[open + 1..tok.len() - 1], line)?))
}

fn alu_op(m: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match m {
        "add" => Add,
        "sub" => Sub,
        "sll" => Sll,
        "slt" => Slt,
        "sltu" => Sltu,
        "xor" => Xor,
        "srl" => Srl,
        "sra" => Sra,
        "or" => Or,
        "and" => And,
        "addw" => Addw,
        "subw" => Subw,
        "sllw" => Sllw,
        "srlw" => Srlw,
        "sraw" => Sraw,
        "mul" => Mul,
        "div" => Div,
        "divu" => Divu,
        "rem" => Rem,
        "remu" => Remu,
        "mulw" => Mulw,
        "divw" => Divw,
        "remw" => Remw,
        "fadd" => Fadd,
        "fsub" => Fsub,
        "fmul" => Fmul,
        "fdiv" => Fdiv,
        "fmin" => Fmin,
        "fmax" => Fmax,
        "feq" => Feq,
        "flt" => Flt,
        "fle" => Fle,
        "fcvt.d.l" => Fcvtdl,
        "fcvt.l.d" => Fcvtld,
        "fmv.d.x" => Fmvdx,
        _ => return None,
    })
}

fn alu_imm_op(m: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match m {
        "addi" => Add,
        "slti" => Slt,
        "sltiu" => Sltu,
        "xori" => Xor,
        "ori" => Or,
        "andi" => And,
        "slli" => Sll,
        "srli" => Srl,
        "srai" => Sra,
        "addiw" => Addw,
        "slliw" => Sllw,
        "srliw" => Srlw,
        "sraiw" => Sraw,
        _ => return None,
    })
}

fn load_op(m: &str) -> Option<LoadOp> {
    Some(match m {
        "lb" => LoadOp::Lb,
        "lh" => LoadOp::Lh,
        "lw" => LoadOp::Lw,
        "ld" => LoadOp::Ld,
        "lbu" => LoadOp::Lbu,
        "lhu" => LoadOp::Lhu,
        "lwu" => LoadOp::Lwu,
        _ => return None,
    })
}

fn store_op(m: &str) -> Option<StoreOp> {
    Some(match m {
        "sb" => StoreOp::Sb,
        "sh" => StoreOp::Sh,
        "sw" => StoreOp::Sw,
        "sd" => StoreOp::Sd,
        _ => return None,
    })
}

fn br_cond(m: &str) -> Option<BrCond> {
    Some(match m {
        "beq" => BrCond::Eq,
        "bne" => BrCond::Ne,
        "blt" => BrCond::Lt,
        "bge" => BrCond::Ge,
        "bltu" => BrCond::Ltu,
        "bgeu" => BrCond::Geu,
        _ => return None,
    })
}

/// Assembles STRAIGHT source text.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line.
///
/// # Examples
///
/// ```
/// use ch_baselines::straight::asm::assemble;
///
/// let p = assemble("li 42\nhalt [1]")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), ch_baselines::straight::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<StProgram, AsmError> {
    let mut prog = StProgram::new();
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending: Vec<(usize, usize, String)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) || label.contains('[') {
                break;
            }
            if labels
                .insert(label.to_string(), prog.insts.len() as u32)
                .is_some()
            {
                return err(line, format!("duplicate label `{label}`"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".data") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.is_empty() {
                return err(line, ".data needs an address");
            }
            let addr: i64 = parse_imm(toks[0], line)?;
            let mut bytes = Vec::new();
            for t in &toks[1..] {
                let v: i64 = parse_imm(t, line)?;
                bytes.extend_from_slice(&(v as u64).to_le_bytes());
            }
            prog.data.push((addr as u64, bytes));
            continue;
        }
        let (mnem, ops_text) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<String> = if ops_text.is_empty() {
            Vec::new()
        } else {
            ops_text.split(',').map(|s| s.trim().to_string()).collect()
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(
                    line,
                    format!("`{mnem}` expects {n} operands, got {}", ops.len()),
                )
            }
        };

        let mut label_ref: Option<String> = None;
        let inst = if let Some(op) = alu_op(mnem) {
            need(2)?;
            StInst::Alu {
                op,
                src1: parse_src(&ops[0], line)?,
                src2: parse_src(&ops[1], line)?,
            }
        } else if let Some(op) = alu_imm_op(mnem) {
            need(2)?;
            StInst::AluImm {
                op,
                src1: parse_src(&ops[0], line)?,
                imm: parse_imm(&ops[1], line)?,
            }
        } else if let Some(op) = load_op(mnem) {
            need(1)?;
            let (offset, base) = parse_mem(&ops[0], line)?;
            StInst::Load { op, base, offset }
        } else if let Some(op) = store_op(mnem) {
            need(2)?;
            let (offset, base) = parse_mem(&ops[1], line)?;
            StInst::Store {
                op,
                value: parse_src(&ops[0], line)?,
                base,
                offset,
            }
        } else if let Some(cond) = br_cond(mnem) {
            need(3)?;
            label_ref = Some(ops[2].clone());
            StInst::Branch {
                cond,
                src1: parse_src(&ops[0], line)?,
                src2: parse_src(&ops[1], line)?,
                target: 0,
            }
        } else {
            match mnem {
                "li" => {
                    need(1)?;
                    StInst::Li {
                        imm: parse_imm(&ops[0], line)?,
                    }
                }
                "mv" => {
                    need(1)?;
                    StInst::Mv {
                        src: parse_src(&ops[0], line)?,
                    }
                }
                "j" => {
                    need(1)?;
                    label_ref = Some(ops[0].clone());
                    StInst::Jump { target: 0 }
                }
                "call" => {
                    need(1)?;
                    label_ref = Some(ops[0].clone());
                    StInst::Call { target: 0 }
                }
                "jr" | "ret" => {
                    need(1)?;
                    StInst::JumpReg {
                        src: parse_src(&ops[0], line)?,
                    }
                }
                "spaddi" => {
                    need(1)?;
                    StInst::SpAddi {
                        imm: parse_imm(&ops[0], line)?,
                    }
                }
                "nop" => {
                    need(0)?;
                    StInst::Nop
                }
                "halt" => {
                    need(1)?;
                    StInst::Halt {
                        src: parse_src(&ops[0], line)?,
                    }
                }
                _ => return err(line, format!("unknown mnemonic `{mnem}`")),
            }
        };
        if let Some(l) = label_ref {
            pending.push((prog.insts.len(), line, l));
        }
        prog.insts.push(inst);
    }

    for (idx, line, label) in pending {
        let t = match labels.get(&label) {
            Some(&t) => t,
            None => return err(line, format!("undefined label `{label}`")),
        };
        match &mut prog.insts[idx] {
            StInst::Branch { target, .. } | StInst::Jump { target } | StInst::Call { target } => {
                *target = t
            }
            _ => unreachable!("pending target on non-branch"),
        }
    }
    prog.labels = labels;
    Ok(prog)
}

/// Disassembles a program back to source text.
pub fn disassemble(prog: &StProgram) -> String {
    let mut by_index: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for (name, &idx) in &prog.labels {
        by_index.entry(idx).or_default().push(name);
    }
    let target_name = |t: u32| -> String {
        for (name, &idx) in &prog.labels {
            if idx == t {
                return name.clone();
            }
        }
        format!("@{t}")
    };
    let mut out = String::new();
    for (i, inst) in prog.insts.iter().enumerate() {
        if let Some(names) = by_index.get(&(i as u32)) {
            for n in names {
                out.push_str(&format!("{n}:\n"));
            }
        }
        out.push_str("    ");
        let s = match *inst {
            StInst::Alu { op, src1, src2 } => format!("{} {src1}, {src2}", op.mnemonic()),
            StInst::AluImm { op, src1, imm } => {
                let m = match op {
                    AluOp::Add => "addi",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    AluOp::Addw => "addiw",
                    AluOp::Sllw => "slliw",
                    AluOp::Srlw => "srliw",
                    AluOp::Sraw => "sraiw",
                    other => other.mnemonic(),
                };
                format!("{m} {src1}, {imm}")
            }
            StInst::Li { imm } => format!("li {imm}"),
            StInst::Load { op, base, offset } => format!("{} {offset}({base})", op.mnemonic()),
            StInst::Store {
                op,
                value,
                base,
                offset,
            } => {
                format!("{} {value}, {offset}({base})", op.mnemonic())
            }
            StInst::Branch {
                cond,
                src1,
                src2,
                target,
            } => {
                format!(
                    "{} {src1}, {src2}, {}",
                    cond.mnemonic(),
                    target_name(target)
                )
            }
            StInst::Jump { target } => format!("j {}", target_name(target)),
            StInst::Call { target } => format!("call {}", target_name(target)),
            StInst::JumpReg { src } => format!("ret {src}"),
            StInst::SpAddi { imm } => format!("spaddi {imm}"),
            StInst::Mv { src } => format!("mv {src}"),
            StInst::Nop => "nop".to_string(),
            StInst::Halt { src } => format!("halt {src}"),
        };
        out.push_str(&s);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1c_shapes_assemble() {
        let p = assemble(
            "iota:
                 spaddi -8
                 addi zero, 0
                 sd [4], 0(sp)
                 mv [6]
                 j .L3
             .L2:
                 addi [6], 4
                 mv [6]
                 nop
             .L3:
                 sw [5], 0([3])
                 addiw [6], 1
                 bne [1], [4], .L2
                 ld 0(sp)
                 spaddi 8
                 ret [2]",
        )
        .unwrap();
        assert_eq!(p.len(), 14);
        assert_eq!(p.labels[".L2"], 5);
    }

    #[test]
    fn rejects_malformed_operands() {
        for bad in [
            "li 1\nadd [0], [1]\nhalt [1]", // distance 0: the producing slot itself
            "li 1\nadd [128], [1]\nhalt [1]", // distance past the ring horizon
            "li 1\nadd [x], [1]\nhalt [1]", // non-numeric distance
            "li 1\nadd 1, [1]\nhalt [1]",   // bare number is not an operand
            "li 1\nadd [1]\nhalt [1]",      // wrong operand count
            "li 1\nfrob [1], [1]\nhalt [1]", // unknown mnemonic
        ] {
            assert!(assemble(bad).is_err(), "assembler accepted: {bad}");
        }
    }

    #[test]
    fn roundtrip() {
        let src = "start:
    li 5
.loop:
    addi [1], -1
    sw [1], 8(sp)
    bne [2], zero, .loop
    spaddi -16
    call start
    ret [1]
    halt [3]";
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&disassemble(&p1)).unwrap();
        assert_eq!(p1.insts, p2.insts);
    }

    #[test]
    fn labels_with_brackets_not_confused() {
        // `[1]:` must not be treated as a label.
        let p = assemble("li 1\nmv [1]\nhalt [1]").unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn distance_boundary_at_exactly_127() {
        // 127 is the architectural maximum reach and must assemble...
        assert!(assemble("li 1\nhalt [127]").is_ok());
        // ...while 128 (formerly accepted and deferred to validate()) and
        // 256 (formerly a generic parse error) both name the range.
        for bad in ["[128]", "[256]", "[0]"] {
            let e = assemble(&format!("li 1\nhalt {bad}")).unwrap_err();
            assert_eq!(e.line, 2, "{bad}");
            assert!(e.message.contains("out of range"), "{bad}: {}", e.message);
        }
    }
}
