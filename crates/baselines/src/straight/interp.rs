//! Functional interpreter for STRAIGHT.

use super::{StInst, StProgram, StSrc, MAX_DISTANCE};
use ch_common::inst::{CtrlKind, DstTag, DynInst, NO_PRODUCER};
use ch_common::mem::Memory;

/// Default initial stack pointer (matches the other interpreters).
pub const STACK_TOP: u64 = 0x8000_0000;

/// Ring capacity for the functional model (≥ MAX_DISTANCE+1, power of 2).
const RING: usize = 256;

/// A runtime error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StError {
    /// Execution ran past the end of the program.
    PcOffEnd {
        /// The out-of-range instruction index.
        pc: u32,
    },
    /// The instruction limit was reached before the program halted.
    LimitReached,
    /// A source referenced further back than instructions executed.
    ReadBeforeWrite {
        /// Instruction index performing the read.
        at: u32,
    },
    /// The program failed static validation.
    Invalid(String),
}

impl std::fmt::Display for StError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StError::PcOffEnd { pc } => write!(f, "execution ran off the end at index {pc}"),
            StError::LimitReached => f.write_str("instruction limit reached before halt"),
            StError::ReadBeforeWrite { at } => {
                write!(f, "instruction {at} reads a slot older than the program")
            }
            StError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for StError {}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Value of the `halt` source.
    pub exit_value: u64,
    /// Instructions committed.
    pub committed: u64,
}

/// Functional STRAIGHT interpreter.
///
/// # Examples
///
/// ```
/// use ch_baselines::straight::asm::assemble;
/// use ch_baselines::straight::interp::Interpreter;
///
/// let prog = assemble(
///     "li 6
///      li 7
///      mul [2], [1]
///      halt [1]",
/// )?;
/// let mut cpu = Interpreter::new(prog)?;
/// assert_eq!(cpu.run(1000)?.exit_value, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    prog: StProgram,
    ring: [u64; RING],
    producers: [u64; RING],
    sp: u64,
    mem: Memory,
    pc: u32,
    seq: u64,
    halted: Option<u64>,
    error: Option<StError>,
}

impl Interpreter {
    /// Creates an interpreter, validating the program, loading its data
    /// image, and seeding the SP special register.
    ///
    /// # Errors
    ///
    /// Returns [`StError::Invalid`] if the program fails validation.
    pub fn new(prog: StProgram) -> Result<Self, StError> {
        prog.validate().map_err(StError::Invalid)?;
        let mut mem = Memory::new();
        for (base, bytes) in &prog.data {
            mem.write_bytes(*base, bytes);
        }
        let pc = prog.entry;
        Ok(Interpreter {
            prog,
            ring: [0; RING],
            producers: [NO_PRODUCER; RING],
            sp: STACK_TOP,
            mem,
            pc,
            seq: 0,
            halted: None,
            error: None,
        })
    }

    /// Shared memory view.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory view (for preloading inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Exit value once halted.
    pub fn exit_value(&self) -> Option<u64> {
        self.halted
    }

    /// Error that stopped the iterator stream, if any.
    pub fn error(&self) -> Option<&StError> {
        self.error.as_ref()
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    /// Current SP special-register value.
    pub fn sp(&self) -> u64 {
        self.sp
    }

    fn read(&self, src: StSrc) -> Result<u64, StError> {
        match src {
            StSrc::Dist(d) => {
                debug_assert!((1..=MAX_DISTANCE).contains(&d));
                if (d as u64) > self.seq {
                    return Err(StError::ReadBeforeWrite { at: self.pc });
                }
                Ok(self.ring[(self.seq - d as u64) as usize & (RING - 1)])
            }
            StSrc::Sp => Ok(self.sp),
            StSrc::Zero => Ok(0),
        }
    }

    fn producer_of(&self, src: StSrc) -> u64 {
        match src {
            StSrc::Dist(d) if (d as u64) <= self.seq => {
                self.producers[(self.seq - d as u64) as usize & (RING - 1)]
            }
            _ => NO_PRODUCER,
        }
    }

    /// Executes one instruction; `Ok(None)` once halted.
    ///
    /// # Errors
    ///
    /// Returns [`StError`] on bad control flow or a read of a slot older
    /// than the program.
    pub fn step(&mut self) -> Result<Option<DynInst>, StError> {
        if self.halted.is_some() {
            return Ok(None);
        }
        if self.pc as usize >= self.prog.len() {
            return Err(StError::PcOffEnd { pc: self.pc });
        }
        let inst = self.prog.insts[self.pc as usize];
        let seq = self.seq;
        let mut rec = DynInst::new(seq, self.prog.pc_of(self.pc), inst.class());

        let srcs = inst.srcs();
        let mut producers = [NO_PRODUCER; 2];
        for (i, s) in srcs.iter().take(2).enumerate() {
            producers[i] = self.producer_of(*s);
        }
        rec.srcs = producers;

        let mut next_pc = self.pc + 1;
        // Result value this instruction deposits in its ring slot.
        let mut result: u64 = 0;
        let mut result_producer = NO_PRODUCER;
        match inst {
            StInst::Alu { op, src1, src2 } => {
                result = op.eval(self.read(src1)?, self.read(src2)?);
                result_producer = seq;
                rec.dst = Some(DstTag::RingSlot);
            }
            StInst::AluImm { op, src1, imm } => {
                result = op.eval(self.read(src1)?, imm as i64 as u64);
                result_producer = seq;
                rec.dst = Some(DstTag::RingSlot);
            }
            StInst::Li { imm } => {
                result = imm as u64;
                result_producer = seq;
                rec.dst = Some(DstTag::RingSlot);
            }
            StInst::Load { op, base, offset } => {
                let addr = self.read(base)?.wrapping_add(offset as i64 as u64);
                result = op.extend(self.mem.read(addr, op.size()));
                result_producer = seq;
                rec.dst = Some(DstTag::RingSlot);
                rec = rec.with_mem(addr, op.size());
            }
            StInst::Store {
                value,
                base,
                offset,
                op,
            } => {
                let addr = self.read(base)?.wrapping_add(offset as i64 as u64);
                self.mem.write(addr, op.size(), self.read(value)?);
                rec = rec.with_mem(addr, op.size());
            }
            StInst::Branch {
                cond,
                src1,
                src2,
                target,
            } => {
                let taken = cond.eval(self.read(src1)?, self.read(src2)?);
                if taken {
                    next_pc = target;
                }
                rec = rec.with_ctrl(CtrlKind::Cond, taken, self.prog.pc_of(target));
            }
            StInst::Jump { target } => {
                next_pc = target;
                rec = rec.with_ctrl(CtrlKind::Jump, true, self.prog.pc_of(target));
            }
            StInst::Call { target } => {
                result = self.prog.pc_of(self.pc + 1);
                result_producer = seq;
                rec.dst = Some(DstTag::RingSlot);
                next_pc = target;
                rec = rec.with_ctrl(CtrlKind::Call, true, self.prog.pc_of(target));
            }
            StInst::JumpReg { src } => {
                let target_pc = self.read(src)?;
                next_pc = self.index_of_pc(target_pc)?;
                rec = rec.with_ctrl(CtrlKind::Ret, true, target_pc);
            }
            StInst::SpAddi { imm } => {
                self.sp = self.sp.wrapping_add(imm as i64 as u64);
            }
            StInst::Mv { src } => {
                result = self.read(src)?;
                result_producer = seq;
                rec.dst = Some(DstTag::RingSlot);
            }
            StInst::Nop => {}
            StInst::Halt { src } => {
                self.halted = Some(self.read(src)?);
                return Ok(None);
            }
        }
        // Every instruction occupies the next ring slot (this is what
        // couples distance with execution and forces the relay insts).
        let slot = (seq as usize) & (RING - 1);
        self.ring[slot] = result;
        self.producers[slot] = result_producer;
        self.pc = next_pc;
        self.seq += 1;
        Ok(Some(rec))
    }

    fn index_of_pc(&self, pc_val: u64) -> Result<u32, StError> {
        let base = self.prog.pc_of(0);
        if pc_val < base || !(pc_val - base).is_multiple_of(4) {
            return Err(StError::PcOffEnd { pc: u32::MAX });
        }
        let idx = ((pc_val - base) / 4) as u32;
        if idx as usize >= self.prog.len() {
            return Err(StError::PcOffEnd { pc: idx });
        }
        Ok(idx)
    }

    /// Runs to completion (at most `limit` instructions).
    ///
    /// # Errors
    ///
    /// Returns [`StError::LimitReached`] if the program does not halt in
    /// time, or any error from [`Interpreter::step`].
    pub fn run(&mut self, limit: u64) -> Result<RunResult, StError> {
        for _ in 0..limit {
            if self.step()?.is_none() {
                break;
            }
        }
        // Uniform limit-boundary rule across all three ISA interpreters:
        // once the step budget is spent, the outcome depends only on
        // whether the machine has halted — not on which loop exit we took.
        match self.halted {
            Some(exit_value) => Ok(RunResult {
                exit_value,
                committed: self.seq,
            }),
            None => Err(StError::LimitReached),
        }
    }

    /// Runs to completion, collecting the full trace.
    ///
    /// # Errors
    ///
    /// As for [`Interpreter::run`].
    pub fn trace(&mut self, limit: u64) -> Result<(Vec<DynInst>, RunResult), StError> {
        let mut out = Vec::new();
        for _ in 0..limit {
            match self.step()? {
                Some(rec) => out.push(rec),
                None => break,
            }
        }
        match self.halted {
            Some(exit_value) => Ok((
                out,
                RunResult {
                    exit_value,
                    committed: self.seq,
                },
            )),
            None => Err(StError::LimitReached),
        }
    }
}

/// Streaming adapter; errors are stashed for [`Interpreter::error`].
impl Iterator for Interpreter {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        match self.step() {
            Ok(opt) => opt,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

// Experiment drivers run interpreters on worker threads (compile-time audit).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Interpreter>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::straight::asm::assemble;

    fn run_src(src: &str) -> RunResult {
        let prog = assemble(src).expect("assembles");
        Interpreter::new(prog)
            .expect("valid")
            .run(1_000_000)
            .expect("runs")
    }

    #[test]
    fn limit_boundary_is_uniform() {
        // Regression (cross-ISA fuzz finding): the three interpreters must
        // agree on limit-boundary behaviour — Ok iff halted once the step
        // budget is spent, LimitReached otherwise.
        let prog = assemble("li 7\nhalt [1]").expect("assembles");
        let mut it = Interpreter::new(prog.clone()).expect("valid");
        assert!(matches!(it.run(0), Err(StError::LimitReached)));
        assert_eq!(it.run(100).expect("halts").exit_value, 7);
        assert_eq!(it.run(0).expect("still halted").exit_value, 7);
        let mut it = Interpreter::new(prog).expect("valid");
        assert!(matches!(it.trace(1), Err(StError::LimitReached)));
        // Resuming after the budget ran out only replays what's left —
        // here just the (record-free) halt step.
        let (rest, res) = it.trace(100).expect("halts");
        assert_eq!(res.exit_value, 7);
        assert!(rest.is_empty());
    }

    #[test]
    fn distances_count_all_instructions() {
        // The store between producer and consumer still occupies a slot,
        // so the add must reach back over it.
        let r = run_src(
            "li 5            # slot 0
             li 4096         # slot 1
             sd [2], 0([1])  # slot 2 (no value)
             add [3], [3]    # [3] = slot 0 = 5 -> 10
             halt [1]",
        );
        assert_eq!(r.exit_value, 10);
    }

    #[test]
    fn loop_needs_relay_mv() {
        // Fig. 2(a): a loop constant must be relayed every iteration so
        // its distance stays the same at the loop head, and the pre-loop
        // code needs a nop so first-entry distances match the steady
        // state. Sum 1..=3 = 6.
        let r = run_src(
            "li 3            # N    (slot 0)
             li 0            # i    (slot 1)
             li 0            # sum  (slot 2)
             nop             # distance adjust (slot 3)
         .loop:
             mv [4]          # relay N
             addi [4], 1     # i+1
             add [4], [1]    # sum + (i+1)
             bne [2], [3], .loop
             halt [2]",
        );
        assert_eq!(r.exit_value, 6);
    }

    #[test]
    fn spaddi_and_sp_loads() {
        let r = run_src(
            "spaddi -16
             li 77
             sd [1], 8(sp)
             ld 8(sp)
             spaddi 16
             halt [2]",
        );
        assert_eq!(r.exit_value, 77);
    }

    #[test]
    fn call_and_ret_by_distance() {
        let r = run_src(
            "li 21           # arg        slot 0
             call .f         # ret addr   slot 1
             halt [2]        # mv result two slots back (ret occupies [1])
         .f:
             add [2], [2]    # arg+arg    slot 2
             mv [1]          # result     slot 3
             ret [3]         # ret addr at distance 3 (call was slot 1)
            ",
        );
        // halt executes after ret (slot 4), so the mv result sits at [2].
        assert_eq!(r.exit_value, 42);
    }

    #[test]
    fn read_before_write_detected() {
        let prog = assemble("mv [5]\nhalt zero").unwrap();
        let err = Interpreter::new(prog).unwrap().run(10).unwrap_err();
        assert!(matches!(err, StError::ReadBeforeWrite { .. }));
    }

    #[test]
    fn dataflow_skips_valueless_slots() {
        let prog = assemble(
            "li 1
             nop
             mv [2]
             halt [1]",
        )
        .unwrap();
        let (trace, _) = Interpreter::new(prog).unwrap().trace(100).unwrap();
        // mv reads slot of `li` (distance 2): producer is seq 0.
        assert_eq!(trace[2].srcs[0], 0);
        // nop produced nothing: its slot has no producer.
        assert_eq!(trace[1].dst, None);
    }
}
