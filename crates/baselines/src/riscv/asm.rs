//! Textual assembler / disassembler for the RISC baseline.
//!
//! Accepts `x0..x31` / `f0..f31` and the usual ABI names (`zero`, `ra`,
//! `sp`, `a0-a7`, `t0-t6`, `s0-s11`, `fa0..`, `ft0..`, `fs0..`).

use super::{Reg, RvInst, RvProgram};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use std::collections::BTreeMap;

pub use ch_common::error::AsmError;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError::new(line, message))
}

/// Parses a register name.
pub fn parse_reg(tok: &str) -> Option<Reg> {
    let abi = [
        ("zero", 0),
        ("ra", 1),
        ("sp", 2),
        ("gp", 3),
        ("tp", 4),
        ("t0", 5),
        ("t1", 6),
        ("t2", 7),
        ("s0", 8),
        ("fp", 8),
        ("s1", 9),
        ("a0", 10),
        ("a1", 11),
        ("a2", 12),
        ("a3", 13),
        ("a4", 14),
        ("a5", 15),
        ("a6", 16),
        ("a7", 17),
        ("s2", 18),
        ("s3", 19),
        ("s4", 20),
        ("s5", 21),
        ("s6", 22),
        ("s7", 23),
        ("s8", 24),
        ("s9", 25),
        ("s10", 26),
        ("s11", 27),
        ("t3", 28),
        ("t4", 29),
        ("t5", 30),
        ("t6", 31),
    ];
    for (name, n) in abi {
        if tok == name {
            return Some(Reg(n));
        }
    }
    if let Some(n) = tok.strip_prefix('x').and_then(|s| s.parse::<u8>().ok()) {
        if n < 32 {
            return Some(Reg(n));
        }
    }
    for (prefix, base) in [("ft", 32u8), ("fa", 42), ("fs", 50)] {
        if let Some(n) = tok.strip_prefix(prefix).and_then(|s| s.parse::<u8>().ok()) {
            let idx = base + n;
            if idx < 64 {
                return Some(Reg(idx));
            }
        }
    }
    if let Some(n) = tok.strip_prefix('f').and_then(|s| s.parse::<u8>().ok()) {
        if n < 32 {
            return Some(Reg(32 + n));
        }
    }
    None
}

fn reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    parse_reg(tok).ok_or_else(|| AsmError {
        line,
        message: format!("unknown register `{tok}`"),
    })
}

fn parse_imm<T: TryFrom<i64>>(tok: &str, line: usize) -> Result<T, AsmError> {
    let v = if let Some(hex) = tok.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| ())
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).map(|v| -v).map_err(|_| ())
    } else {
        tok.parse::<i64>().map_err(|_| ())
    };
    match v.ok().and_then(|v| T::try_from(v).ok()) {
        Some(v) => Ok(v),
        None => err(line, format!("bad immediate `{tok}`")),
    }
}

fn parse_mem(tok: &str, line: usize) -> Result<(i32, Reg), AsmError> {
    let open = tok.find('(').ok_or_else(|| AsmError {
        line,
        message: format!("expected off(base), got `{tok}`"),
    })?;
    if !tok.ends_with(')') {
        return err(line, format!("expected off(base), got `{tok}`"));
    }
    let off = if tok[..open].is_empty() {
        0
    } else {
        parse_imm(&tok[..open], line)?
    };
    Ok((off, reg(&tok[open + 1..tok.len() - 1], line)?))
}

fn alu_op(m: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match m {
        "add" => Add,
        "sub" => Sub,
        "sll" => Sll,
        "slt" => Slt,
        "sltu" => Sltu,
        "xor" => Xor,
        "srl" => Srl,
        "sra" => Sra,
        "or" => Or,
        "and" => And,
        "addw" => Addw,
        "subw" => Subw,
        "sllw" => Sllw,
        "srlw" => Srlw,
        "sraw" => Sraw,
        "mul" => Mul,
        "div" => Div,
        "divu" => Divu,
        "rem" => Rem,
        "remu" => Remu,
        "mulw" => Mulw,
        "divw" => Divw,
        "remw" => Remw,
        "fadd" => Fadd,
        "fsub" => Fsub,
        "fmul" => Fmul,
        "fdiv" => Fdiv,
        "fmin" => Fmin,
        "fmax" => Fmax,
        "feq" => Feq,
        "flt" => Flt,
        "fle" => Fle,
        "fcvt.d.l" => Fcvtdl,
        "fcvt.l.d" => Fcvtld,
        "fmv.d.x" => Fmvdx,
        _ => return None,
    })
}

fn alu_imm_op(m: &str) -> Option<AluOp> {
    use AluOp::*;
    Some(match m {
        "addi" => Add,
        "slti" => Slt,
        "sltiu" => Sltu,
        "xori" => Xor,
        "ori" => Or,
        "andi" => And,
        "slli" => Sll,
        "srli" => Srl,
        "srai" => Sra,
        "addiw" => Addw,
        "slliw" => Sllw,
        "srliw" => Srlw,
        "sraiw" => Sraw,
        _ => return None,
    })
}

fn load_op(m: &str) -> Option<LoadOp> {
    Some(match m {
        "lb" => LoadOp::Lb,
        "lh" => LoadOp::Lh,
        "lw" => LoadOp::Lw,
        "ld" | "fld" => LoadOp::Ld,
        "lbu" => LoadOp::Lbu,
        "lhu" => LoadOp::Lhu,
        "lwu" => LoadOp::Lwu,
        _ => return None,
    })
}

fn store_op(m: &str) -> Option<StoreOp> {
    Some(match m {
        "sb" => StoreOp::Sb,
        "sh" => StoreOp::Sh,
        "sw" => StoreOp::Sw,
        "sd" | "fsd" => StoreOp::Sd,
        _ => return None,
    })
}

fn br_cond(m: &str) -> Option<BrCond> {
    Some(match m {
        "beq" => BrCond::Eq,
        "bne" => BrCond::Ne,
        "blt" => BrCond::Lt,
        "bge" => BrCond::Ge,
        "bltu" => BrCond::Ltu,
        "bgeu" => BrCond::Geu,
        _ => return None,
    })
}

/// Assembles RISC source text.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line.
///
/// # Examples
///
/// ```
/// use ch_baselines::riscv::asm::assemble;
///
/// let p = assemble("li a0, 42\nhalt a0")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), ch_baselines::riscv::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<RvProgram, AsmError> {
    let mut prog = RvProgram::new();
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut pending: Vec<(usize, usize, String)> = Vec::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find('#') {
            text = &text[..i];
        }
        let mut text = text.trim();
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if labels
                .insert(label.to_string(), prog.insts.len() as u32)
                .is_some()
            {
                return err(line, format!("duplicate label `{label}`"));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix(".data") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.is_empty() {
                return err(line, ".data needs an address");
            }
            let addr: i64 = parse_imm(toks[0], line)?;
            let mut bytes = Vec::new();
            for t in &toks[1..] {
                let v: i64 = parse_imm(t, line)?;
                bytes.extend_from_slice(&(v as u64).to_le_bytes());
            }
            prog.data.push((addr as u64, bytes));
            continue;
        }
        let (mnem, ops_text) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let ops: Vec<String> = if ops_text.is_empty() {
            Vec::new()
        } else {
            ops_text.split(',').map(|s| s.trim().to_string()).collect()
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(
                    line,
                    format!("`{mnem}` expects {n} operands, got {}", ops.len()),
                )
            }
        };

        let mut label_ref: Option<String> = None;
        let inst = if let Some(op) = alu_op(mnem) {
            need(3)?;
            RvInst::Alu {
                op,
                rd: reg(&ops[0], line)?,
                rs1: reg(&ops[1], line)?,
                rs2: reg(&ops[2], line)?,
            }
        } else if let Some(op) = alu_imm_op(mnem) {
            need(3)?;
            RvInst::AluImm {
                op,
                rd: reg(&ops[0], line)?,
                rs1: reg(&ops[1], line)?,
                imm: parse_imm(&ops[2], line)?,
            }
        } else if let Some(op) = load_op(mnem) {
            need(2)?;
            let (offset, base) = parse_mem(&ops[1], line)?;
            RvInst::Load {
                op,
                rd: reg(&ops[0], line)?,
                base,
                offset,
            }
        } else if let Some(op) = store_op(mnem) {
            need(2)?;
            let (offset, base) = parse_mem(&ops[1], line)?;
            RvInst::Store {
                op,
                rs: reg(&ops[0], line)?,
                base,
                offset,
            }
        } else if let Some(cond) = br_cond(mnem) {
            need(3)?;
            label_ref = Some(ops[2].clone());
            RvInst::Branch {
                cond,
                rs1: reg(&ops[0], line)?,
                rs2: reg(&ops[1], line)?,
                target: 0,
            }
        } else {
            match mnem {
                "li" => {
                    need(2)?;
                    RvInst::Li {
                        rd: reg(&ops[0], line)?,
                        imm: parse_imm(&ops[1], line)?,
                    }
                }
                "mv" => {
                    need(2)?;
                    RvInst::Mv {
                        rd: reg(&ops[0], line)?,
                        rs: reg(&ops[1], line)?,
                    }
                }
                "j" => {
                    need(1)?;
                    label_ref = Some(ops[0].clone());
                    RvInst::Jump { target: 0 }
                }
                "call" => {
                    need(2)?;
                    label_ref = Some(ops[1].clone());
                    RvInst::Call {
                        rd: reg(&ops[0], line)?,
                        target: 0,
                    }
                }
                "jalr" => {
                    need(2)?;
                    RvInst::CallReg {
                        rd: reg(&ops[0], line)?,
                        rs: reg(&ops[1], line)?,
                    }
                }
                "jr" | "ret" => {
                    need(1)?;
                    RvInst::JumpReg {
                        rs: reg(&ops[0], line)?,
                    }
                }
                "nop" => {
                    need(0)?;
                    RvInst::Nop
                }
                "halt" => {
                    need(1)?;
                    RvInst::Halt {
                        rs: reg(&ops[0], line)?,
                    }
                }
                _ => return err(line, format!("unknown mnemonic `{mnem}`")),
            }
        };
        if let Some(l) = label_ref {
            pending.push((prog.insts.len(), line, l));
        }
        prog.insts.push(inst);
    }

    for (idx, line, label) in pending {
        let t = match labels.get(&label) {
            Some(&t) => t,
            None => return err(line, format!("undefined label `{label}`")),
        };
        match &mut prog.insts[idx] {
            RvInst::Branch { target, .. }
            | RvInst::Jump { target }
            | RvInst::Call { target, .. } => *target = t,
            _ => unreachable!("pending target on non-branch"),
        }
    }
    prog.labels = labels;
    Ok(prog)
}

/// Disassembles a program back to source text.
pub fn disassemble(prog: &RvProgram) -> String {
    let mut by_index: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for (name, &idx) in &prog.labels {
        by_index.entry(idx).or_default().push(name);
    }
    let target_name = |t: u32| -> String {
        for (name, &idx) in &prog.labels {
            if idx == t {
                return name.clone();
            }
        }
        format!("@{t}")
    };
    let mut out = String::new();
    for (i, inst) in prog.insts.iter().enumerate() {
        if let Some(names) = by_index.get(&(i as u32)) {
            for n in names {
                out.push_str(&format!("{n}:\n"));
            }
        }
        out.push_str("    ");
        let s = match *inst {
            RvInst::Alu { op, rd, rs1, rs2 } => {
                format!("{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            RvInst::AluImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluOp::Add => "addi",
                    AluOp::Slt => "slti",
                    AluOp::Sltu => "sltiu",
                    AluOp::Xor => "xori",
                    AluOp::Or => "ori",
                    AluOp::And => "andi",
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    AluOp::Addw => "addiw",
                    AluOp::Sllw => "slliw",
                    AluOp::Srlw => "srliw",
                    AluOp::Sraw => "sraiw",
                    other => other.mnemonic(),
                };
                format!("{m} {rd}, {rs1}, {imm}")
            }
            RvInst::Li { rd, imm } => format!("li {rd}, {imm}"),
            RvInst::Load {
                op,
                rd,
                base,
                offset,
            } => {
                format!("{} {rd}, {offset}({base})", op.mnemonic())
            }
            RvInst::Store {
                op,
                rs,
                base,
                offset,
            } => {
                format!("{} {rs}, {offset}({base})", op.mnemonic())
            }
            RvInst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                format!("{} {rs1}, {rs2}, {}", cond.mnemonic(), target_name(target))
            }
            RvInst::Jump { target } => format!("j {}", target_name(target)),
            RvInst::Call { rd, target } => format!("call {rd}, {}", target_name(target)),
            RvInst::CallReg { rd, rs } => format!("jalr {rd}, {rs}"),
            RvInst::JumpReg { rs } => format!("jr {rs}"),
            RvInst::Mv { rd, rs } => format!("mv {rd}, {rs}"),
            RvInst::Nop => "nop".to_string(),
            RvInst::Halt { rs } => format!("halt {rs}"),
        };
        out.push_str(&s);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_resolve() {
        assert_eq!(parse_reg("zero"), Some(Reg(0)));
        assert_eq!(parse_reg("ra"), Some(Reg(1)));
        assert_eq!(parse_reg("a0"), Some(Reg(10)));
        assert_eq!(parse_reg("s11"), Some(Reg(27)));
        assert_eq!(parse_reg("t6"), Some(Reg(31)));
        assert_eq!(parse_reg("x17"), Some(Reg(17)));
        assert_eq!(parse_reg("f5"), Some(Reg(37)));
        assert_eq!(parse_reg("fa0"), Some(Reg(42)));
        assert_eq!(parse_reg("q9"), None);
    }

    #[test]
    fn roundtrip() {
        let src = "main:
    li a0, 5
.loop:
    addi a0, a0, -1
    sw a0, 8(sp)
    bne a0, zero, .loop
    fadd f0, f1, f2
    call ra, main
    jr ra
    halt a0";
        let p1 = assemble(src).unwrap();
        let p2 = assemble(&disassemble(&p1)).unwrap();
        assert_eq!(p1.insts, p2.insts);
    }

    #[test]
    fn error_line_reported() {
        let e = assemble("nop\nfoo a0").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn rejects_malformed_operands() {
        for bad in [
            "add q9, a0, a1\nhalt a0",  // unknown destination register
            "add a0, a9x, a1\nhalt a0", // unknown source register
            "add a0, a1\nhalt a0",      // wrong operand count
            "li a0, zz\nhalt a0",       // bad immediate
            "lw a0, 8[sp]\nhalt a0",    // memory operand must be off(base)
            "frob a0, a1, a2\nhalt a0", // unknown mnemonic
        ] {
            assert!(assemble(bad).is_err(), "assembler accepted: {bad}");
        }
    }
}
