//! The register-renaming machinery a conventional RISC forces on an
//! out-of-order core (Section 2.1 of the paper).
//!
//! * **RMT** (register map table): logical → physical mapping, read twice
//!   and written once per instruction; its multi-port RAM area grows with
//!   the square of the rename width.
//! * **Free list**: out-of-life physical registers available for
//!   allocation; a register is freed when the instruction that
//!   *overwrites* its logical register commits.
//! * **DCL** (dependency-check logic): comparators that detect
//!   same-group read-after-write and write-after-write on logical
//!   registers; the comparator count also grows quadratically in width.
//! * **Checkpoints**: the full RMT (~570 bits, Table 1) captured per
//!   branch for misprediction recovery.

use super::NUM_REGS;
use std::collections::VecDeque;

/// Outcome of renaming one instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Renamed {
    /// Physical destination, if the instruction writes a register.
    pub dst: Option<u32>,
    /// The previous mapping of the destination's logical register; must be
    /// freed when this instruction commits.
    pub prev_dst: Option<u32>,
    /// Physical sources in operand order.
    pub srcs: Vec<u32>,
}

/// Event counts produced while renaming (feed the energy model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenameEvents {
    /// RMT read ports exercised.
    pub rmt_reads: u64,
    /// RMT write ports exercised.
    pub rmt_writes: u64,
    /// DCL comparisons performed.
    pub dcl_comparisons: u64,
    /// Free-list pops.
    pub freelist_pops: u64,
}

/// A full-RMT checkpoint (what RISC must save per branch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmtSnapshot {
    rmt: [u32; NUM_REGS as usize],
}

impl RmtSnapshot {
    /// Checkpoint size in bits given the physical register count
    /// (Table 1: 63 × ~9 bits ≈ 570 for RISC).
    pub fn bits(phys_regs: u32) -> u32 {
        let prbits = 32 - (phys_regs - 1).leading_zeros();
        (NUM_REGS as u32 - 1) * prbits
    }
}

/// The rename stage state: RMT + free list.
///
/// # Examples
///
/// ```
/// use ch_baselines::riscv::rename::Renamer;
///
/// let mut r = Renamer::new(256);
/// // `add x5, x5, x6` : reads the old mappings, allocates a new x5.
/// let (out, ev) = r
///     .rename_group(&[(Some(5), vec![5, 6])])
///     .expect("free registers available");
/// assert_ne!(out[0].dst, out[0].prev_dst);
/// assert_eq!(ev.rmt_reads, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Renamer {
    rmt: [u32; NUM_REGS as usize],
    free: VecDeque<u32>,
    phys_regs: u32,
}

impl Renamer {
    /// Creates a renamer for `phys_regs` physical registers; logical
    /// register `i` initially maps to physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs` is not larger than the logical register count.
    pub fn new(phys_regs: u32) -> Self {
        assert!(
            phys_regs > NUM_REGS as u32,
            "need more physical than logical registers"
        );
        let mut rmt = [0u32; NUM_REGS as usize];
        for (i, m) in rmt.iter_mut().enumerate() {
            *m = i as u32;
        }
        Renamer {
            rmt,
            free: (NUM_REGS as u32..phys_regs).collect(),
            phys_regs,
        }
    }

    /// Physical registers currently on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Total physical registers.
    pub fn phys_regs(&self) -> u32 {
        self.phys_regs
    }

    /// Renames a group of instructions, each `(dst logical, src logicals)`
    /// with `dst = None` for instructions without a destination.
    ///
    /// Returns `None` (stall, nothing changed) if the free list cannot
    /// supply every destination in the group. Within the group,
    /// same-register dependencies are forwarded exactly as the DCL would.
    pub fn rename_group(
        &mut self,
        group: &[(Option<u8>, Vec<u8>)],
    ) -> Option<(Vec<Renamed>, RenameEvents)> {
        let needed = group.iter().filter(|(d, _)| d.is_some()).count();
        if needed > self.free.len() {
            return None;
        }
        let mut ev = RenameEvents::default();
        let mut out = Vec::with_capacity(group.len());
        // Same-group forwarding state: logical -> phys written earlier in
        // this group (what the DCL computes with its comparators).
        let mut local: Vec<(u8, u32)> = Vec::new();
        for (i, (dst, srcs)) in group.iter().enumerate() {
            // Each source is compared against every preceding dst in the
            // group; each dst against preceding dsts (WAW ordering).
            ev.dcl_comparisons += ((srcs.len() + dst.is_some() as usize) * i) as u64;
            let srcs_phys = srcs
                .iter()
                .map(|&l| {
                    ev.rmt_reads += 1;
                    local
                        .iter()
                        .rev()
                        .find(|&&(ll, _)| ll == l)
                        .map(|&(_, p)| p)
                        .unwrap_or(self.rmt[l as usize])
                })
                .collect();
            let (dst_phys, prev) = match dst {
                Some(l) => {
                    ev.rmt_writes += 1;
                    ev.freelist_pops += 1;
                    let p = self.free.pop_front().expect("checked above");
                    let prev = local
                        .iter()
                        .rev()
                        .find(|&&(ll, _)| ll == *l)
                        .map(|&(_, pp)| pp)
                        .unwrap_or(self.rmt[*l as usize]);
                    local.push((*l, p));
                    (Some(p), Some(prev))
                }
                None => (None, None),
            };
            out.push(Renamed {
                dst: dst_phys,
                prev_dst: prev,
                srcs: srcs_phys,
            });
        }
        // Commit the group's final mappings to the RMT.
        for (l, p) in local {
            self.rmt[l as usize] = p;
        }
        Some((out, ev))
    }

    /// Releases a physical register back to the free list (called when
    /// the overwriting instruction commits, or when a squashed
    /// instruction's allocation is rolled back).
    pub fn release(&mut self, phys: u32) {
        debug_assert!(phys < self.phys_regs);
        self.free.push_back(phys);
    }

    /// Captures an RMT checkpoint.
    pub fn snapshot(&self) -> RmtSnapshot {
        RmtSnapshot { rmt: self.rmt }
    }

    /// Restores an RMT checkpoint. The caller must separately release the
    /// physical registers allocated by squashed instructions.
    pub fn restore(&mut self, snap: &RmtSnapshot) {
        self.rmt = snap.rmt;
    }

    /// Current mapping of a logical register (test/debug aid).
    pub fn mapping(&self, logical: u8) -> u32 {
        self.rmt[logical as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_dependency_removed() {
        let mut r = Renamer::new(128);
        // Two writers of x5: they must get different physical registers.
        let (out, _) = r
            .rename_group(&[(Some(5), vec![]), (Some(5), vec![])])
            .unwrap();
        assert_ne!(out[0].dst, out[1].dst);
        // The second's prev is the first's dst (WAW chain for freeing).
        assert_eq!(out[1].prev_dst, out[0].dst);
    }

    #[test]
    fn same_group_forwarding() {
        let mut r = Renamer::new(128);
        // `add x5,...; add x6, x5, ...` — the read of x5 must see the
        // in-group writer, not the stale RMT entry.
        let (out, _) = r
            .rename_group(&[(Some(5), vec![]), (Some(6), vec![5])])
            .unwrap();
        assert_eq!(out[1].srcs[0], out[0].dst.unwrap());
    }

    #[test]
    fn stall_when_freelist_exhausted() {
        let mut r = Renamer::new(66); // only 2 free registers
        assert!(r
            .rename_group(&[(Some(1), vec![]), (Some(2), vec![])])
            .is_some());
        assert!(r.rename_group(&[(Some(3), vec![])]).is_none());
        r.release(64);
        assert!(r.rename_group(&[(Some(3), vec![])]).is_some());
    }

    #[test]
    fn dcl_comparisons_grow_quadratically() {
        let mut r = Renamer::new(1024);
        let g4: Vec<(Option<u8>, Vec<u8>)> = (0..4)
            .map(|i| (Some(i as u8 + 1), vec![i as u8 + 1, 20]))
            .collect();
        let g8: Vec<(Option<u8>, Vec<u8>)> = (0..8)
            .map(|i| (Some(i as u8 + 1), vec![i as u8 + 1, 20]))
            .collect();
        let (_, e4) = r.rename_group(&g4).unwrap();
        let (_, e8) = r.rename_group(&g8).unwrap();
        // 3 comparisons per (inst, predecessor) pair: W(W-1)/2 pairs.
        assert_eq!(e4.dcl_comparisons, 3 * 6);
        assert_eq!(e8.dcl_comparisons, 3 * 28);
    }

    #[test]
    fn snapshot_restore() {
        let mut r = Renamer::new(128);
        let snap = r.snapshot();
        let before = r.mapping(7);
        let (out, _) = r.rename_group(&[(Some(7), vec![])]).unwrap();
        assert_ne!(r.mapping(7), before);
        r.restore(&snap);
        r.release(out[0].dst.unwrap());
        assert_eq!(r.mapping(7), before);
    }

    #[test]
    fn checkpoint_bits_table1() {
        // 1024 physical registers -> 10 bits; 63 writable logicals.
        assert_eq!(RmtSnapshot::bits(1024), 630);
        // ~570 bits at 512 physical registers (9 bits each).
        assert_eq!(RmtSnapshot::bits(512), 567);
    }

    #[test]
    fn release_and_reuse_cycle() {
        let mut r = Renamer::new(66);
        for _ in 0..100 {
            let (out, _) = r.rename_group(&[(Some(5), vec![5])]).unwrap();
            // Commit immediately: free the overwritten register.
            r.release(out[0].prev_dst.unwrap());
        }
        assert_eq!(r.free_count(), 2);
    }
}
