//! Functional interpreter for the RISC baseline.

use super::{Reg, RvInst, RvProgram};
use ch_common::inst::{CtrlKind, DstTag, DynInst, NO_PRODUCER};
use ch_common::mem::Memory;

/// Default initial stack pointer (matches the Clockhands interpreter).
pub const STACK_TOP: u64 = 0x8000_0000;

/// A runtime error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RvError {
    /// Execution ran past the end of the program.
    PcOffEnd {
        /// The out-of-range instruction index.
        pc: u32,
    },
    /// The instruction limit was reached before the program halted.
    LimitReached,
    /// The program failed static validation.
    Invalid(String),
}

impl std::fmt::Display for RvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RvError::PcOffEnd { pc } => write!(f, "execution ran off the end at index {pc}"),
            RvError::LimitReached => f.write_str("instruction limit reached before halt"),
            RvError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for RvError {}

/// Outcome of a completed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Value of the `halt` source register.
    pub exit_value: u64,
    /// Instructions committed (the halt is not counted).
    pub committed: u64,
}

/// Functional RISC interpreter.
///
/// # Examples
///
/// ```
/// use ch_baselines::riscv::asm::assemble;
/// use ch_baselines::riscv::interp::Interpreter;
///
/// let prog = assemble(
///     "li a0, 6
///      li a1, 7
///      mul a0, a0, a1
///      halt a0",
/// )?;
/// let mut cpu = Interpreter::new(prog)?;
/// assert_eq!(cpu.run(1000)?.exit_value, 42);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter {
    prog: RvProgram,
    regs: [u64; 64],
    producers: [u64; 64],
    mem: Memory,
    pc: u32,
    seq: u64,
    halted: Option<u64>,
    error: Option<RvError>,
}

impl Interpreter {
    /// Creates an interpreter, validating the program, loading its data
    /// image, and seeding `sp`.
    ///
    /// # Errors
    ///
    /// Returns [`RvError::Invalid`] if the program fails validation.
    pub fn new(prog: RvProgram) -> Result<Self, RvError> {
        prog.validate().map_err(RvError::Invalid)?;
        let mut mem = Memory::new();
        for (base, bytes) in &prog.data {
            mem.write_bytes(*base, bytes);
        }
        let mut regs = [0u64; 64];
        regs[Reg::SP.0 as usize] = STACK_TOP;
        let pc = prog.entry;
        Ok(Interpreter {
            prog,
            regs,
            producers: [NO_PRODUCER; 64],
            mem,
            pc,
            seq: 0,
            halted: None,
            error: None,
        })
    }

    /// Shared memory view.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory view (for preloading inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Exit value once halted.
    pub fn exit_value(&self) -> Option<u64> {
        self.halted
    }

    /// Error that stopped the iterator stream, if any.
    pub fn error(&self) -> Option<&RvError> {
        self.error.as_ref()
    }

    /// Instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.seq
    }

    fn read(&self, r: Reg) -> u64 {
        self.regs[r.0 as usize]
    }

    fn write(&mut self, r: Reg, v: u64, producer: u64) {
        if !r.is_zero() {
            self.regs[r.0 as usize] = v;
            self.producers[r.0 as usize] = producer;
        }
    }

    fn producer_of(&self, r: Reg) -> u64 {
        if r.is_zero() {
            NO_PRODUCER
        } else {
            self.producers[r.0 as usize]
        }
    }

    /// Executes one instruction; `Ok(None)` once halted.
    ///
    /// # Errors
    ///
    /// Returns [`RvError::PcOffEnd`] if control leaves the program.
    pub fn step(&mut self) -> Result<Option<DynInst>, RvError> {
        if self.halted.is_some() {
            return Ok(None);
        }
        if self.pc as usize >= self.prog.len() {
            return Err(RvError::PcOffEnd { pc: self.pc });
        }
        let inst = self.prog.insts[self.pc as usize];
        let seq = self.seq;
        let mut rec = DynInst::new(seq, self.prog.pc_of(self.pc), inst.class());

        let srcs = inst.srcs();
        let mut producers = [NO_PRODUCER; 2];
        for (i, r) in srcs.iter().take(2).enumerate() {
            producers[i] = self.producer_of(*r);
        }
        rec.srcs = producers;
        if let Some(rd) = inst.dst() {
            rec.dst = Some(DstTag::Reg(rd.0));
        }

        let mut next_pc = self.pc + 1;
        match inst {
            RvInst::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.read(rs1), self.read(rs2));
                self.write(rd, v, seq);
            }
            RvInst::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.read(rs1), imm as i64 as u64);
                self.write(rd, v, seq);
            }
            RvInst::Li { rd, imm } => self.write(rd, imm as u64, seq),
            RvInst::Load {
                op,
                rd,
                base,
                offset,
            } => {
                let addr = self.read(base).wrapping_add(offset as i64 as u64);
                let v = op.extend(self.mem.read(addr, op.size()));
                self.write(rd, v, seq);
                rec = rec.with_mem(addr, op.size());
            }
            RvInst::Store {
                op,
                rs,
                base,
                offset,
            } => {
                let addr = self.read(base).wrapping_add(offset as i64 as u64);
                self.mem.write(addr, op.size(), self.read(rs));
                rec = rec.with_mem(addr, op.size());
            }
            RvInst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.read(rs1), self.read(rs2));
                if taken {
                    next_pc = target;
                }
                rec = rec.with_ctrl(CtrlKind::Cond, taken, self.prog.pc_of(target));
            }
            RvInst::Jump { target } => {
                next_pc = target;
                rec = rec.with_ctrl(CtrlKind::Jump, true, self.prog.pc_of(target));
            }
            RvInst::Call { rd, target } => {
                self.write(rd, self.prog.pc_of(self.pc + 1), seq);
                next_pc = target;
                rec = rec.with_ctrl(CtrlKind::Call, true, self.prog.pc_of(target));
            }
            RvInst::CallReg { rd, rs } => {
                let target_pc = self.read(rs);
                self.write(rd, self.prog.pc_of(self.pc + 1), seq);
                next_pc = self.index_of_pc(target_pc)?;
                rec = rec.with_ctrl(CtrlKind::Call, true, target_pc);
            }
            RvInst::JumpReg { rs } => {
                let target_pc = self.read(rs);
                next_pc = self.index_of_pc(target_pc)?;
                rec = rec.with_ctrl(CtrlKind::Ret, true, target_pc);
            }
            RvInst::Mv { rd, rs } => {
                let v = self.read(rs);
                self.write(rd, v, seq);
            }
            RvInst::Nop => {}
            RvInst::Halt { rs } => {
                self.halted = Some(self.read(rs));
                return Ok(None);
            }
        }
        self.pc = next_pc;
        self.seq += 1;
        Ok(Some(rec))
    }

    fn index_of_pc(&self, pc_val: u64) -> Result<u32, RvError> {
        let base = self.prog.pc_of(0);
        if pc_val < base || !(pc_val - base).is_multiple_of(4) {
            return Err(RvError::PcOffEnd { pc: u32::MAX });
        }
        let idx = ((pc_val - base) / 4) as u32;
        if idx as usize >= self.prog.len() {
            return Err(RvError::PcOffEnd { pc: idx });
        }
        Ok(idx)
    }

    /// Runs to completion (at most `limit` instructions).
    ///
    /// # Errors
    ///
    /// Returns [`RvError::LimitReached`] if the program does not halt in
    /// time, or any error from [`Interpreter::step`].
    pub fn run(&mut self, limit: u64) -> Result<RunResult, RvError> {
        for _ in 0..limit {
            if self.step()?.is_none() {
                break;
            }
        }
        // Uniform limit-boundary rule across all three ISA interpreters:
        // once the step budget is spent, the outcome depends only on
        // whether the machine has halted — not on which loop exit we took.
        match self.halted {
            Some(exit_value) => Ok(RunResult {
                exit_value,
                committed: self.seq,
            }),
            None => Err(RvError::LimitReached),
        }
    }

    /// Runs to completion, collecting the full trace.
    ///
    /// # Errors
    ///
    /// As for [`Interpreter::run`].
    pub fn trace(&mut self, limit: u64) -> Result<(Vec<DynInst>, RunResult), RvError> {
        let mut out = Vec::new();
        for _ in 0..limit {
            match self.step()? {
                Some(rec) => out.push(rec),
                None => break,
            }
        }
        match self.halted {
            Some(exit_value) => Ok((
                out,
                RunResult {
                    exit_value,
                    committed: self.seq,
                },
            )),
            None => Err(RvError::LimitReached),
        }
    }
}

/// Streaming adapter; errors are stashed for [`Interpreter::error`].
impl Iterator for Interpreter {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        match self.step() {
            Ok(opt) => opt,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

// Experiment drivers run interpreters on worker threads (compile-time audit).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Interpreter>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::riscv::asm::assemble;

    fn run_src(src: &str) -> RunResult {
        let prog = assemble(src).expect("assembles");
        Interpreter::new(prog)
            .expect("valid")
            .run(1_000_000)
            .expect("runs")
    }

    #[test]
    fn limit_boundary_is_uniform() {
        // Regression (cross-ISA fuzz finding): the three interpreters must
        // agree on limit-boundary behaviour — Ok iff halted once the step
        // budget is spent, LimitReached otherwise.
        let prog = assemble("li a0, 7\nhalt a0").expect("assembles");
        let mut it = Interpreter::new(prog.clone()).expect("valid");
        assert!(matches!(it.run(0), Err(RvError::LimitReached)));
        assert_eq!(it.run(100).expect("halts").exit_value, 7);
        assert_eq!(it.run(0).expect("still halted").exit_value, 7);
        let mut it = Interpreter::new(prog).expect("valid");
        assert!(matches!(it.trace(1), Err(RvError::LimitReached)));
        // Resuming after the budget ran out only replays what's left —
        // here just the (record-free) halt step.
        let (rest, res) = it.trace(100).expect("halts");
        assert_eq!(res.exit_value, 7);
        assert!(rest.is_empty());
    }

    #[test]
    fn iota_loop_matches_fig1() {
        // Fig. 1(b) shape: arr[i] = i for i in 0..N, then checksum.
        let r = run_src(
            "li a0, 4096      # arr
             li a1, 10        # N
             li a5, 0         # i
         .L3:
             sw a5, 0(a0)
             addiw a5, a5, 1
             addi a0, a0, 4
             bne a1, a5, .L3
             lw a2, -4(a0)    # arr[9]
             halt a2",
        );
        assert_eq!(r.exit_value, 9);
    }

    #[test]
    fn call_return_with_ra() {
        let r = run_src(
            "li a0, 21
             call ra, .double
             halt a0
         .double:
             add a0, a0, a0
             jr ra",
        );
        assert_eq!(r.exit_value, 42);
    }

    #[test]
    fn x0_reads_zero_even_after_write() {
        let r = run_src(
            "addi x0, x0, 99
             mv a0, x0
             halt a0",
        );
        assert_eq!(r.exit_value, 0);
    }

    #[test]
    fn sp_seeded() {
        let r = run_src("halt sp");
        assert_eq!(r.exit_value, STACK_TOP);
    }

    #[test]
    fn dataflow_producers() {
        let prog = assemble(
            "li a0, 1
             li a1, 2
             add a2, a0, a1
             halt a2",
        )
        .unwrap();
        let (trace, _) = Interpreter::new(prog).unwrap().trace(100).unwrap();
        assert_eq!(trace[2].srcs, [0, 1]);
    }

    #[test]
    fn fp_roundtrip() {
        let r = run_src(
            "li a0, 3
             fcvt.d.l f0, a0, x0
             fadd f1, f0, f0
             fcvt.l.d a1, f1, x0
             halt a1",
        );
        assert_eq!(r.exit_value, 6);
    }
}
