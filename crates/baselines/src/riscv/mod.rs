//! A conventional RISC baseline: RISC-V-like register-name ISA.
//!
//! Operand specification is by logical register number (Fig. 5, top row),
//! which creates false dependencies through register reuse and therefore
//! requires the renaming hardware modelled in [`rename`].

pub mod asm;
pub mod interp;
pub mod rename;

use crate::prog::{CheckInst, Prog};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use ch_common::op::OpClass;

/// Number of logical registers (32 integer + 32 floating point).
pub const NUM_REGS: u8 = 64;

/// A logical register: `0..32` are the integer registers (`x0` hardwired
/// to zero), `32..64` the floating-point registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The hardwired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address `ra` (`x1`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer `sp` (`x2`).
    pub const SP: Reg = Reg(2);
    /// First integer argument/return register `a0` (`x10`).
    pub const A0: Reg = Reg(10);

    /// Integer register `xN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn x(n: u8) -> Reg {
        assert!(n < 32, "x{n} out of range");
        Reg(n)
    }

    /// Floating-point register `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn f(n: u8) -> Reg {
        assert!(n < 32, "f{n} out of range");
        Reg(32 + n)
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Whether this is a floating-point register.
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - 32)
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

/// One RISC instruction. The shapes mirror the Clockhands instruction set
/// exactly (Fig. 5: only the operand fields differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RvInst {
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// Load immediate (`lui`+`addi` class pseudo-instruction).
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Memory load.
    Load {
        /// Width/extension.
        op: LoadOp,
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Value register.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        cond: BrCond,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Taken target (instruction index).
        target: u32,
    },
    /// Unconditional jump.
    Jump {
        /// Target (instruction index).
        target: u32,
    },
    /// Direct call (`jal rd, target`).
    Call {
        /// Link register.
        rd: Reg,
        /// Callee entry (instruction index).
        target: u32,
    },
    /// Indirect call (`jalr rd, rs`).
    CallReg {
        /// Link register.
        rd: Reg,
        /// Target address register.
        rs: Reg,
    },
    /// Indirect jump / return (`jr rs`).
    JumpReg {
        /// Target address register.
        rs: Reg,
    },
    /// Register move.
    Mv {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// No-operation.
    Nop,
    /// Stop execution, reporting `rs` as the exit value.
    Halt {
        /// Exit-value register.
        rs: Reg,
    },
}

impl RvInst {
    /// The destination register, if the instruction writes one (writes to
    /// `x0` count as no destination).
    pub fn dst(&self) -> Option<Reg> {
        let rd = match *self {
            RvInst::Alu { rd, .. }
            | RvInst::AluImm { rd, .. }
            | RvInst::Li { rd, .. }
            | RvInst::Load { rd, .. }
            | RvInst::Call { rd, .. }
            | RvInst::CallReg { rd, .. }
            | RvInst::Mv { rd, .. } => rd,
            _ => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// Source registers in operand order (the zero register included —
    /// it reads as zero but exercises no dataflow).
    pub fn srcs(&self) -> Vec<Reg> {
        match *self {
            RvInst::Alu { rs1, rs2, .. } => vec![rs1, rs2],
            RvInst::AluImm { rs1, .. } => vec![rs1],
            RvInst::Li { .. } | RvInst::Jump { .. } | RvInst::Call { .. } | RvInst::Nop => vec![],
            RvInst::Load { base, .. } => vec![base],
            RvInst::Store { rs, base, .. } => vec![rs, base],
            RvInst::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            RvInst::CallReg { rs, .. } | RvInst::JumpReg { rs } => vec![rs],
            RvInst::Mv { rs, .. } => vec![rs],
            RvInst::Halt { rs } => vec![rs],
        }
    }

    /// Coarse operation class.
    pub fn class(&self) -> OpClass {
        match *self {
            RvInst::Alu { op, .. } | RvInst::AluImm { op, .. } => op.class(),
            RvInst::Li { .. } => OpClass::IntAlu,
            RvInst::Load { .. } => OpClass::Load,
            RvInst::Store { .. } => OpClass::Store,
            RvInst::Branch { .. } => OpClass::CondBr,
            RvInst::Jump { .. } => OpClass::Jump,
            RvInst::Call { .. } | RvInst::CallReg { .. } | RvInst::JumpReg { .. } => {
                OpClass::CallRet
            }
            RvInst::Mv { .. } => OpClass::Move,
            RvInst::Nop => OpClass::Nop,
            RvInst::Halt { .. } => OpClass::Other,
        }
    }
}

impl CheckInst for RvInst {
    fn check(&self, _at: u32, len: u32) -> Result<(), String> {
        let target = match *self {
            RvInst::Branch { target, .. }
            | RvInst::Jump { target }
            | RvInst::Call { target, .. } => Some(target),
            _ => None,
        };
        if let Some(t) = target {
            if t >= len {
                return Err(format!("target {t} out of range"));
            }
        }
        Ok(())
    }
}

/// A RISC program.
pub type RvProgram = Prog<RvInst>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_not_a_destination() {
        let i = RvInst::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::x(5),
            imm: 1,
        };
        assert_eq!(i.dst(), None);
        let j = RvInst::AluImm {
            op: AluOp::Add,
            rd: Reg::x(5),
            rs1: Reg::ZERO,
            imm: 1,
        };
        assert_eq!(j.dst(), Some(Reg::x(5)));
    }

    #[test]
    fn fp_register_mapping() {
        assert!(Reg::f(0).is_fp());
        assert!(!Reg::x(31).is_fp());
        assert_eq!(Reg::f(3).to_string(), "f3");
        assert_eq!(Reg::x(3).to_string(), "x3");
    }

    #[test]
    fn target_validation() {
        let mut p = RvProgram::new();
        p.insts.push(RvInst::Jump { target: 2 });
        assert!(p.validate().is_err());
        p.insts.push(RvInst::Nop);
        p.insts.push(RvInst::Halt { rs: Reg::A0 });
        assert!(p.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_constructor_bounds() {
        let _ = Reg::x(32);
    }
}
