//! Generic program container shared by the two baseline ISAs.

use std::collections::BTreeMap;

/// Base address instructions live at (matches the Clockhands layout so
/// PC-indexed structures behave identically across ISAs).
pub const TEXT_BASE: u64 = 0x1_0000;

/// Per-instruction static validity check.
pub trait CheckInst {
    /// Validates the instruction at index `at` in a program of `len`
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the problem.
    fn check(&self, at: u32, len: u32) -> Result<(), String>;
}

/// A program for either baseline ISA: code, labels, and initial data.
#[derive(Debug, Clone, PartialEq)]
pub struct Prog<I> {
    /// Instructions in layout order.
    pub insts: Vec<I>,
    /// Entry point (instruction index).
    pub entry: u32,
    /// Label name → instruction index.
    pub labels: BTreeMap<String, u32>,
    /// Initial data segments: (base address, bytes).
    pub data: Vec<(u64, Vec<u8>)>,
}

impl<I> Default for Prog<I> {
    fn default() -> Self {
        Prog {
            insts: Vec::new(),
            entry: 0,
            labels: BTreeMap::new(),
            data: Vec::new(),
        }
    }
}

impl<I> Prog<I> {
    /// Creates an empty program.
    pub fn new() -> Self {
        Prog::default()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// PC of the instruction at `index`.
    pub fn pc_of(&self, index: u32) -> u64 {
        TEXT_BASE + 4 * index as u64
    }
}

impl<I: CheckInst> Prog<I> {
    /// Validates every instruction.
    ///
    /// # Errors
    ///
    /// Returns `"<index>: <problem>"` for the first invalid instruction,
    /// or an error for an empty program.
    pub fn validate(&self) -> Result<(), String> {
        if self.insts.is_empty() {
            return Err("program has no instructions".to_string());
        }
        let len = self.insts.len() as u32;
        for (i, inst) in self.insts.iter().enumerate() {
            inst.check(i as u32, len).map_err(|e| format!("{i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(bool);
    impl CheckInst for Dummy {
        fn check(&self, _at: u32, _len: u32) -> Result<(), String> {
            if self.0 {
                Ok(())
            } else {
                Err("bad".into())
            }
        }
    }

    #[test]
    fn validation_flows_through() {
        let mut p: Prog<Dummy> = Prog::new();
        assert!(p.validate().is_err());
        p.insts.push(Dummy(true));
        assert!(p.validate().is_ok());
        p.insts.push(Dummy(false));
        assert_eq!(p.validate().unwrap_err(), "1: bad");
    }

    #[test]
    fn pc_layout_matches_clockhands() {
        let p: Prog<Dummy> = Prog::new();
        assert_eq!(p.pc_of(2), TEXT_BASE + 8);
    }
}
