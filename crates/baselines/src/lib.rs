#![warn(missing_docs)]

//! Baseline ISAs for the Clockhands reproduction.
//!
//! The paper compares Clockhands against two architectures, both rebuilt
//! here from scratch:
//!
//! * [`riscv`] — a conventional RISC: a RISC-V-like register-name ISA
//!   together with the renaming machinery it forces on an out-of-order
//!   core (register map table, free list, dependency-check logic, and
//!   per-branch checkpoints — Section 2.1).
//! * [`straight`] — STRAIGHT: operands are inter-instruction distances,
//!   destinations come implicitly from a single ring buffer, and the
//!   stack pointer is a special register updated with `SPADDi`
//!   (Section 2.2).
//!
//! Both provide a functional interpreter emitting the same
//! [`ch_common::inst::DynInst`] stream as the Clockhands interpreter, so
//! the timing simulator and trace analyses treat all three uniformly.

pub mod prog;
pub mod riscv;
pub mod straight;

pub use prog::Prog;
