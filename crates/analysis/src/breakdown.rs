//! Executed-instruction breakdowns: class mix (Fig. 15) and per-hand
//! read/write usage (Fig. 16).

use ch_common::inst::{DstTag, DynInst, NO_PRODUCER};
use ch_common::op::OpClass;

/// Instruction counts per Fig. 15 class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstructionMix {
    /// Count per [`OpClass`], indexed by position in [`OpClass::ALL`].
    pub counts: [u64; 13],
    /// Total instructions.
    pub total: u64,
}

impl InstructionMix {
    /// The count for one class.
    pub fn count(&self, class: OpClass) -> u64 {
        let idx = OpClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("known class");
        self.counts[idx]
    }

    /// Counts merged into the Fig. 15 legend categories
    /// (Mul+Div and FLOPs merge two classes each).
    pub fn by_label(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for (i, class) in OpClass::ALL.iter().enumerate() {
            let label = class.label();
            match out.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += self.counts[i],
                None => out.push((label, self.counts[i])),
            }
        }
        out
    }
}

/// Classifies a trace (Fig. 15).
pub fn instruction_mix<'a>(trace: impl Iterator<Item = &'a DynInst>) -> InstructionMix {
    let mut mix = InstructionMix::default();
    for inst in trace {
        let idx = OpClass::ALL
            .iter()
            .position(|&c| c == inst.class)
            .expect("known class");
        mix.counts[idx] += 1;
        mix.total += 1;
    }
    mix
}

/// Per-hand read/write counts (Fig. 16). Reads attribute to the hand the
/// producer wrote (a `t[2]` read is a read of hand t); instructions
/// without a destination count in `no_dst_writes`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HandUsage {
    /// Writes per hand (t, u, v, s).
    pub writes: [u64; 4],
    /// Reads per hand (t, u, v, s).
    pub reads: [u64; 4],
    /// Instructions with no destination hand.
    pub no_dst_writes: u64,
    /// Total instructions.
    pub total: u64,
}

/// Computes hand usage from a Clockhands trace.
pub fn hand_usage<'a>(trace: impl Iterator<Item = &'a DynInst> + Clone) -> HandUsage {
    let mut u = HandUsage::default();
    // Producer seq -> hand written, for read attribution.
    let mut dst_hand: Vec<i8> = Vec::new();
    for inst in trace {
        u.total += 1;
        while dst_hand.len() <= inst.seq as usize {
            dst_hand.push(-1);
        }
        for p in inst.sources() {
            if p != NO_PRODUCER {
                if let Some(&h) = dst_hand.get(p as usize) {
                    if h >= 0 {
                        u.reads[h as usize] += 1;
                    }
                }
            }
        }
        match inst.dst {
            Some(DstTag::Hand(h)) => {
                u.writes[h as usize] += 1;
                dst_hand[inst.seq as usize] = h as i8;
            }
            Some(_) => {
                dst_hand[inst.seq as usize] = -1;
            }
            None => u.no_dst_writes += 1,
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_compiler::compile;
    use clockhands::interp::Interpreter;

    fn ch_trace(src: &str) -> Vec<DynInst> {
        let set = compile(src).expect("compiles");
        Interpreter::new(set.clockhands)
            .expect("valid")
            .trace(50_000_000)
            .expect("runs")
            .0
    }

    #[test]
    fn mix_sums_to_total() {
        let t = ch_trace(
            "fn main() -> int {
                 var s: int = 0;
                 for (var i: int = 0; i < 50; i += 1) { s += i; }
                 return s;
             }",
        );
        let mix = instruction_mix(t.iter());
        assert_eq!(mix.counts.iter().sum::<u64>(), mix.total);
        assert!(mix.count(OpClass::CondBr) >= 50);
        let labels: Vec<&str> = mix.by_label().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels.len(), 11, "Fig. 15 has 11 legend entries");
    }

    #[test]
    fn t_hand_is_written_most_v_read_heavy() {
        // Fig. 16's qualitative claims on a loop-heavy kernel.
        let t = ch_trace(
            "global a: int[64];
             fn main() -> int {
                 var s: int = 0;
                 for (var i: int = 0; i < 64; i += 1) { s += a[i] * 3; }
                 return s;
             }",
        );
        let u = hand_usage(t.iter());
        let t_writes = u.writes[0];
        let v_writes = u.writes[2];
        let v_reads = u.reads[2];
        assert!(t_writes > v_writes, "t written most: {:?}", u.writes);
        assert!(
            v_reads > v_writes * 4,
            "v read-heavy: r={v_reads} w={v_writes}"
        );
    }

    #[test]
    fn s_hand_rarely_written_in_leaf_code() {
        let t = ch_trace(
            "fn main() -> int { var s: int = 0;
            for (var i: int = 0; i < 100; i += 1) { s += i; } return s; }",
        );
        let u = hand_usage(t.iter());
        assert!(
            u.writes[3] < u.total / 20,
            "s writes {:?} of {}",
            u.writes[3],
            u.total
        );
    }
}
