//! Register lifetime distributions (Fig. 4, 17, 18).
//!
//! The lifetime of a definition is the number of dynamic instructions
//! between it and its last read (0 if never read). The paper plots the
//! *definition frequency of registers with lifetime > k* — a CCDF over
//! definitions — and observes an `O(1/N)` power law.

use ch_common::inst::{DstTag, DynInst, NO_PRODUCER};

/// Per-definition lifetimes extracted from a trace.
#[derive(Debug, Clone, Default)]
pub struct LifetimeDist {
    /// (definition seq, destination tag, lifetime in instructions).
    pub defs: Vec<(u64, DstTag, u64)>,
    /// Total committed instructions in the trace.
    pub total_insts: u64,
}

/// Computes every definition's lifetime over a full trace.
///
/// # Examples
///
/// ```
/// use ch_analysis::lifetimes_of;
/// use ch_common::inst::{DstTag, DynInst};
/// use ch_common::op::OpClass;
///
/// let trace = vec![
///     DynInst::new(0, 0, OpClass::IntAlu).with_dst(DstTag::Reg(1)),
///     DynInst::new(1, 4, OpClass::IntAlu).with_srcs(&[0]).with_dst(DstTag::Reg(2)),
///     DynInst::new(2, 8, OpClass::IntAlu).with_srcs(&[0]),
/// ];
/// let d = lifetimes_of(trace.iter());
/// assert_eq!(d.defs[0].2, 2); // def 0 last read at seq 2
/// ```
pub fn lifetimes_of<'a>(trace: impl Iterator<Item = &'a DynInst>) -> LifetimeDist {
    let mut defs: Vec<(u64, DstTag)> = Vec::new();
    let mut last_use: Vec<u64> = Vec::new(); // indexed by def order
    let mut def_index: Vec<i64> = Vec::new(); // seq -> def order (-1 none)
    let mut total = 0u64;
    for inst in trace {
        total += 1;
        for p in inst.sources() {
            if p != NO_PRODUCER {
                if let Some(&di) = def_index.get(p as usize) {
                    if di >= 0 {
                        last_use[di as usize] = inst.seq;
                    }
                }
            }
        }
        while def_index.len() <= inst.seq as usize {
            def_index.push(-1);
        }
        if let Some(tag) = inst.dst {
            def_index[inst.seq as usize] = defs.len() as i64;
            defs.push((inst.seq, tag));
            last_use.push(inst.seq);
        }
    }
    LifetimeDist {
        defs: defs
            .into_iter()
            .zip(last_use)
            .map(|((seq, tag), lu)| (seq, tag, lu - seq))
            .collect(),
        total_insts: total,
    }
}

/// CCDF over definitions: for each power-of-two bucket `k`, the fraction
/// of definitions with lifetime ≥ `k` (the y-axis of Fig. 4/17/18),
/// normalised by the total definition count.
///
/// `filter` selects which definitions participate (e.g. one hand for
/// Fig. 18); pass `|_| true` for all.
pub fn lifetime_ccdf(dist: &LifetimeDist, filter: impl Fn(DstTag) -> bool) -> Vec<(u64, f64)> {
    let mut lifetimes: Vec<u64> = dist
        .defs
        .iter()
        .filter(|(_, tag, _)| filter(*tag))
        .map(|&(_, _, l)| l)
        .collect();
    lifetimes.sort_unstable();
    let n = lifetimes.len().max(1) as f64;
    let mut out = Vec::new();
    let mut k = 1u64;
    let max = lifetimes.last().copied().unwrap_or(0).max(1);
    // Pad one zero bucket past the maximum so consumers see the cutoff
    // (STRAIGHT's distribution ends exactly at 127).
    while k <= max * 2 {
        let idx = lifetimes.partition_point(|&l| l < k);
        out.push((k, (lifetimes.len() - idx) as f64 / n));
        k *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::inst::DstTag;
    use ch_common::op::OpClass;

    fn inst(seq: u64, srcs: &[u64], dst: Option<DstTag>) -> DynInst {
        let mut i = DynInst::new(seq, seq * 4, OpClass::IntAlu).with_srcs(srcs);
        i.dst = dst;
        i
    }

    #[test]
    fn unread_definition_has_zero_lifetime() {
        let t = [inst(0, &[], Some(DstTag::Reg(1)))];
        let d = lifetimes_of(t.iter());
        assert_eq!(d.defs[0].2, 0);
    }

    #[test]
    fn lifetime_spans_to_last_use() {
        let t = [
            inst(0, &[], Some(DstTag::Reg(1))),
            inst(1, &[0], None),
            inst(2, &[], Some(DstTag::Reg(2))),
            inst(3, &[0], None), // reads def 0 again
        ];
        let d = lifetimes_of(t.iter());
        assert_eq!(d.defs[0].2, 3);
        assert_eq!(d.defs[1].2, 0);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let mut t = Vec::new();
        // defs with lifetimes 1, 2, 4, ..., 64 (geometric).
        let mut seq = 0u64;
        for e in 0..7u64 {
            let def = seq;
            t.push(inst(def, &[], Some(DstTag::Reg(1))));
            seq += 1 << e;
            t.push(inst(seq, &[def], None));
            seq += 1;
        }
        // renumber sequentially
        for (i, inst) in t.iter_mut().enumerate() {
            inst.seq = i as u64;
        }
        // (lifetimes distort, but monotonicity must hold regardless)
        let d = lifetimes_of(t.iter());
        let ccdf = lifetime_ccdf(&d, |_| true);
        for w in ccdf.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert!((ccdf[0].1 - 1.0).abs() < 1e-9 || ccdf[0].1 <= 1.0);
    }

    #[test]
    fn filter_selects_hands() {
        let t = [
            inst(0, &[], Some(DstTag::Hand(0))),
            inst(1, &[0], Some(DstTag::Hand(2))),
            inst(2, &[1], None),
        ];
        let d = lifetimes_of(t.iter());
        let only_t = lifetime_ccdf(&d, |tag| tag.hand() == Some(0));
        let only_v = lifetime_ccdf(&d, |tag| tag.hand() == Some(2));
        assert!(!only_t.is_empty());
        assert!(!only_v.is_empty());
    }
}
