//! The inevitable STRAIGHT instruction increase, from a RISC trace
//! (Fig. 3 of the paper).
//!
//! The paper converts a RISC-V trace "as is" and counts the mv/nop
//! instructions STRAIGHT would be forced to add:
//!
//! * **mv-MaxDistance** — a value with lifetime `k` needs `⌊k/M⌋` relay
//!   moves (M = 127),
//! * **mv-LoopConstant** — a value defined before a loop and read inside
//!   it needs one relay per iteration,
//! * **nop** — a convergence point entered by fall-through needs padding.

use crate::lifetime::lifetimes_of;
use ch_common::inst::{DynInst, NO_PRODUCER};
use std::collections::{HashMap, HashSet};

/// STRAIGHT's maximum reference distance.
const M: u64 = 127;

/// Counts of inevitable additional instructions (Fig. 3 categories).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StraightIncrease {
    /// Relay moves to keep long-life values within the reference window.
    pub mv_max_distance: u64,
    /// Relay moves to keep loop constants at a fixed distance.
    pub mv_loop_constant: u64,
    /// Padding at fall-through convergence points.
    pub nop_convergence: u64,
    /// Instructions in the analysed trace.
    pub total_insts: u64,
}

impl StraightIncrease {
    /// The total relative increase (the paper reports ≈35% on average
    /// over SPEC).
    pub fn relative(&self) -> f64 {
        (self.mv_max_distance + self.mv_loop_constant + self.nop_convergence) as f64
            / self.total_insts.max(1) as f64
    }
}

/// Analyses a RISC trace for the lower bound of Fig. 3.
///
/// Loops are recovered from the trace as backward taken branches; an
/// iteration's loop constants are the distinct producers defined before
/// the loop was entered but read during the iteration.
pub fn straight_increase(trace: &[DynInst]) -> StraightIncrease {
    let mut out = StraightIncrease {
        total_insts: trace.len() as u64,
        ..Default::default()
    };

    // ---- mv-MaxDistance: per definition, floor(lifetime / M). ----
    let dist = lifetimes_of(trace.iter());
    out.mv_max_distance = dist.defs.iter().map(|&(_, _, l)| l / M).sum();

    // ---- mv-LoopConstant: per iteration, constants referenced. ----
    // A backward taken branch marks a loop; its target PC identifies it.
    // We track the innermost active loop: entry seq + per-iteration set
    // of outside-defined producers read.
    struct Loop {
        head_pc: u64,
        entry_seq: u64,
        consts_this_iter: HashSet<u64>,
    }
    let mut stack: Vec<Loop> = Vec::new();
    for inst in trace {
        if let Some(l) = stack.last_mut() {
            for p in inst.sources() {
                if p != NO_PRODUCER && p < l.entry_seq {
                    l.consts_this_iter.insert(p);
                }
            }
        }
        if let Some(ctrl) = inst.ctrl {
            if ctrl.taken && ctrl.target <= inst.pc {
                // Backward taken branch: iteration boundary.
                if let Some(pos) = stack.iter().position(|l| l.head_pc == ctrl.target) {
                    // Exiting any nested loops that did not close.
                    stack.truncate(pos + 1);
                    let l = stack.last_mut().expect("nonempty");
                    out.mv_loop_constant += l.consts_this_iter.len() as u64;
                    l.consts_this_iter.clear();
                } else {
                    stack.push(Loop {
                        head_pc: ctrl.target,
                        entry_seq: inst.seq,
                        consts_this_iter: HashSet::new(),
                    });
                }
            }
        }
        // Bound the stack (irreducible traces).
        if stack.len() > 64 {
            stack.remove(0);
        }
    }

    // ---- nop at convergence points entered by fall-through. ----
    // A PC is a convergence point if it is both a branch target and
    // reachable by fall-through. Count fall-through entries to such PCs.
    let mut targets: HashSet<u64> = HashSet::new();
    for inst in trace {
        if let Some(c) = inst.ctrl {
            targets.insert(c.target);
        }
    }
    let mut fallthrough_entries: HashMap<u64, u64> = HashMap::new();
    let mut prev: Option<&DynInst> = None;
    for inst in trace {
        if let Some(p) = prev {
            let fell_through = p.pc + 4 == inst.pc && !p.ctrl.map(|c| c.taken).unwrap_or(false);
            if fell_through && targets.contains(&inst.pc) {
                *fallthrough_entries.entry(inst.pc).or_default() += 1;
            }
        }
        prev = Some(inst);
    }
    out.nop_convergence = fallthrough_entries.values().sum();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_baselines::riscv::asm::assemble;
    use ch_baselines::riscv::interp::Interpreter;

    fn trace_of(src: &str) -> Vec<DynInst> {
        let prog = assemble(src).expect("assembles");
        Interpreter::new(prog)
            .expect("valid")
            .trace(10_000_000)
            .expect("runs")
            .0
    }

    #[test]
    fn loop_constant_counted_per_iteration() {
        // `a1` (the bound) is defined before the loop and read each
        // iteration: one relay per iteration.
        let t = trace_of(
            "li a1, 50
             li a0, 0
         .l: addi a0, a0, 1
             bne a0, a1, .l
             halt a0",
        );
        let inc = straight_increase(&t);
        // 49 back-edge iterations observe the constant a1 (and the
        // loop-carried a0 whose def moves inside).
        assert!(inc.mv_loop_constant >= 45, "got {}", inc.mv_loop_constant);
        assert!(inc.mv_loop_constant <= 110, "got {}", inc.mv_loop_constant);
    }

    #[test]
    fn long_life_values_need_distance_relays() {
        // A value read after ~1000 instructions needs ⌊1000/127⌋ relays.
        let mut src = String::from("li a1, 77\nli a0, 0\n");
        for _ in 0..1000 {
            src.push_str("addi a0, a0, 1\n");
        }
        src.push_str("add a0, a0, a1\nhalt a0");
        let t = trace_of(&src);
        let inc = straight_increase(&t);
        assert!(
            (7..=9).contains(&inc.mv_max_distance),
            "expected ≈ 1002/127 relays, got {}",
            inc.mv_max_distance
        );
    }

    #[test]
    fn straightline_code_needs_nothing() {
        let t = trace_of("li a0, 1\naddi a0, a0, 2\nhalt a0");
        let inc = straight_increase(&t);
        assert_eq!(inc.mv_loop_constant, 0);
        assert_eq!(inc.mv_max_distance, 0);
        assert_eq!(inc.nop_convergence, 0);
    }

    #[test]
    fn convergence_points_counted() {
        // A join entered by fall-through on one path and by a jump on the
        // other, alternating over a loop: half the entries need the nop.
        let t = trace_of(
            "li a2, 10
             li a0, 0
         .loop:
             andi a3, a0, 1
             beq a3, zero, .even
             addi a1, zero, 5
             j .join
         .even:
             addi a1, zero, 6
         .join:
             addi a0, a0, 1
             bne a0, a2, .loop
             halt a1",
        );
        let inc = straight_increase(&t);
        // 5 even iterations fall into .join, plus the initial
        // fall-through entry into .loop (also a branch target).
        assert_eq!(inc.nop_convergence, 6);
    }

    #[test]
    fn relative_increase_is_bounded() {
        let t = trace_of(
            "li a1, 100
             li a0, 0
         .l: addi a0, a0, 1
             bne a0, a1, .l
             halt a0",
        );
        let inc = straight_increase(&t);
        let r = inc.relative();
        assert!(r > 0.0 && r < 1.5, "relative increase {r}");
    }
}
