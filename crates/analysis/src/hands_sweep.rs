//! The appropriate number of hands (Fig. 7).
//!
//! The paper counts, from RISC-V traces, how many loop-constant relay
//! moves remain when `k` hands are available: a constant of a loop at
//! nesting depth `d` can live in its own hand as long as a hand is free
//! for every enclosing loop level. With one hand reserved for changing
//! values, `k` hands eliminate the relays of constants at depth ≤ `k−1`
//! (and one more level is lost when a hand is pinned to SP/args).

use ch_common::inst::{CtrlKind, DynInst, NO_PRODUCER};
use std::collections::HashSet;

/// Relay-move counts per hand count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HandsSweep {
    /// Total loop-constant relays with a single ring (= STRAIGHT).
    pub baseline: u64,
    /// Remaining relays for k = 1..=8 hands, all general-purpose.
    pub remaining_general: [u64; 8],
    /// Remaining relays for k = 1..=8 hands with one hand fixed to SP.
    pub remaining_with_sp: [u64; 8],
}

impl HandsSweep {
    /// Remaining fraction for `k` hands (the Fig. 7 y-axis).
    pub fn fraction(&self, k: usize, with_sp: bool) -> f64 {
        let rem = if with_sp {
            self.remaining_with_sp[k - 1]
        } else {
            self.remaining_general[k - 1]
        };
        rem as f64 / self.baseline.max(1) as f64
    }
}

/// Runs the sweep over a RISC trace.
///
/// Loop nesting is recovered from backward taken branches; each
/// iteration contributes one relay per distinct outside-defined producer
/// read at each nesting level.
pub fn hands_sweep(trace: &[DynInst]) -> HandsSweep {
    struct Loop {
        head_pc: u64,
        entry_seq: u64,
        call_depth: u32,
        consts: HashSet<u64>,
    }
    let mut stack: Vec<Loop> = Vec::new();
    let mut call_depth = 0u32;
    // relays_by_depth[d] = relays needed for constants of loops at
    // nesting depth d+1 (1-based, counted within the enclosing function —
    // the hand assignment of Section 6.2 is a per-function decision).
    let mut relays_by_depth = [0u64; 64];
    for inst in trace {
        // A read of a producer defined before level-L's entry counts as a
        // level-L constant; the paper assigns it to the innermost loop
        // holding it (the relay an extra hand would remove first).
        if !stack.is_empty() {
            for p in inst.sources() {
                if p == NO_PRODUCER {
                    continue;
                }
                if let Some(l) = stack.iter_mut().rev().find(|l| p < l.entry_seq) {
                    l.consts.insert(p);
                }
            }
        }
        if let Some(ctrl) = inst.ctrl {
            match ctrl.kind {
                CtrlKind::Call => call_depth += 1,
                CtrlKind::Ret => {
                    call_depth = call_depth.saturating_sub(1);
                    // Loops of the returning function are finished.
                    while stack
                        .last()
                        .map(|l| l.call_depth > call_depth)
                        .unwrap_or(false)
                    {
                        stack.pop();
                    }
                }
                _ => {}
            }
            if ctrl.taken
                && ctrl.target <= inst.pc
                && !ctrl.kind.is_indirect()
                && ctrl.kind != CtrlKind::Call
            {
                if let Some(pos) = stack.iter().position(|l| l.head_pc == ctrl.target) {
                    stack.truncate(pos + 1);
                    let l_call_depth = stack[pos].call_depth;
                    // Nesting within this function only.
                    let depth = stack
                        .iter()
                        .filter(|l| l.call_depth == l_call_depth)
                        .count()
                        .clamp(1, 64);
                    let l = stack.last_mut().expect("nonempty");
                    relays_by_depth[depth - 1] += l.consts.len() as u64;
                    l.consts.clear();
                } else if stack.len() < 64 {
                    stack.push(Loop {
                        head_pc: ctrl.target,
                        entry_seq: inst.seq,
                        call_depth,
                        consts: HashSet::new(),
                    });
                }
            }
        }
    }
    let baseline: u64 = relays_by_depth.iter().sum();
    let mut out = HandsSweep {
        baseline,
        ..Default::default()
    };
    for k in 1..=8usize {
        // k hands, one for changing values: constants of loops nested
        // deeper than k-1 still need relays.
        let covered_general = k.saturating_sub(1);
        let covered_sp = k.saturating_sub(2);
        out.remaining_general[k - 1] = relays_by_depth.iter().skip(covered_general).sum();
        out.remaining_with_sp[k - 1] = relays_by_depth.iter().skip(covered_sp).sum();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_baselines::riscv::asm::assemble;
    use ch_baselines::riscv::interp::Interpreter;

    fn trace_of(src: &str) -> Vec<DynInst> {
        let prog = assemble(src).expect("assembles");
        Interpreter::new(prog)
            .expect("valid")
            .trace(10_000_000)
            .expect("runs")
            .0
    }

    fn nested(levels: usize) -> String {
        // `levels` nested loops, each with a per-level constant bound.
        let mut src = String::new();
        for l in 0..levels {
            src.push_str(&format!("li s{l}, 4\n"));
        }
        for l in 0..levels {
            src.push_str(&format!("li a{l}, 0\n.l{l}:\n"));
        }
        src.push_str("addi t0, t0, 1\n");
        for l in (0..levels).rev() {
            src.push_str(&format!("addi a{l}, a{l}, 1\nbne a{l}, s{l}, .l{l}\n"));
            if l > 0 {
                src.push_str(&format!("li a{l}, 0\n"));
            }
        }
        src.push_str("halt t0");
        src
    }

    #[test]
    fn more_hands_remove_more_relays() {
        let t = trace_of(&nested(3));
        let sweep = hands_sweep(&t);
        assert!(sweep.baseline > 0);
        for k in 1..8 {
            assert!(
                sweep.remaining_general[k] <= sweep.remaining_general[k - 1],
                "remaining must be non-increasing in k"
            );
        }
        // With enough hands everything is covered.
        assert_eq!(sweep.remaining_general[7], 0);
        assert!((sweep.fraction(1, false) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sp_hand_costs_one_level() {
        let t = trace_of(&nested(3));
        let sweep = hands_sweep(&t);
        for k in 2..=8 {
            assert_eq!(
                sweep.remaining_with_sp[k - 1],
                sweep.remaining_general[k - 2]
            );
        }
    }

    #[test]
    fn flat_loop_needs_only_two_hands() {
        let t = trace_of(&nested(1));
        let sweep = hands_sweep(&t);
        assert!(sweep.baseline > 0);
        assert_eq!(
            sweep.remaining_general[1], 0,
            "depth-1 constants covered by k=2"
        );
    }
}
