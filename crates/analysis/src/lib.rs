#![warn(missing_docs)]

//! # ch-analysis — trace analyses behind the paper's studies
//!
//! * [`lifetime`] — register lifetime distributions (Fig. 4, 17, 18),
//! * [`mod@straight_increase`] — the inevitable STRAIGHT instruction-count
//!   increase, split into nop / mv-MaxDistance / mv-LoopConstant (Fig. 3),
//! * [`mod@hands_sweep`] — remaining relay moves versus hand count (Fig. 7),
//! * [`breakdown`] — executed-instruction class mix (Fig. 15) and
//!   per-hand read/write usage (Fig. 16).
//!
//! Every analysis consumes the committed [`ch_common::inst::DynInst`]
//! stream the interpreters produce — the same trace-driven methodology
//! the paper used (its Fig. 3/4/7 come from RISC-V traces, not from a
//! STRAIGHT compiler).

pub mod breakdown;
pub mod hands_sweep;
pub mod lifetime;
pub mod straight_increase;

pub use breakdown::{hand_usage, instruction_mix, HandUsage, InstructionMix};
pub use hands_sweep::{hands_sweep, HandsSweep};
pub use lifetime::{lifetime_ccdf, lifetimes_of, LifetimeDist};
pub use straight_increase::{straight_increase, StraightIncrease};
