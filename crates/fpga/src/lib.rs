#![warn(missing_docs)]

//! # ch-fpga — analytical FPGA resource model (Table 3)
//!
//! The paper synthesises three variants of the RSD out-of-order soft
//! processor on a Xilinx Virtex UltraScale and reports LUT/FF counts for
//! the physical-register-allocation stage and the whole core at front-end
//! widths 4, 8, and 16. Without the RTL + toolchain, this crate provides
//! an *analytical* model with the structural scaling of each design —
//!
//! * RISC renamer: multi-ported RMT (port count ∝ width, area superlinear
//!   in width) + quadratic dependency-check comparators → fitted as a
//!   power law ≈ `W^1.9`,
//! * STRAIGHT / Clockhands RP calculation: a prefix-sum tree,
//!   `O(W log W)` LUTs and `O(W)` registers,
//! * everything else (shared across ISAs) ≈ linear in width —
//!
//! with coefficients least-squares calibrated to the published RSD
//! numbers. EXPERIMENTS.md reports the per-cell deviation from Table 3.

use ch_common::IsaKind;

/// LUT/FF estimates for one soft-processor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaResources {
    /// Look-up tables in the physical-register-allocation stage.
    pub alloc_luts: f64,
    /// Flip-flops in the physical-register-allocation stage.
    pub alloc_ffs: f64,
    /// Whole-core look-up tables.
    pub total_luts: f64,
    /// Whole-core flip-flops.
    pub total_ffs: f64,
}

/// Estimates the resources for `width` ∈ {4, 8, 16, ...} and one ISA.
///
/// # Examples
///
/// ```
/// use ch_common::IsaKind;
/// use ch_fpga::resources;
///
/// let risc = resources(8, IsaKind::Riscv);
/// let ch = resources(8, IsaKind::Clockhands);
/// // The rename-free allocation stage is an order of magnitude smaller.
/// assert!(risc.alloc_luts > 8.0 * ch.alloc_luts);
/// ```
pub fn resources(width: u32, isa: IsaKind) -> FpgaResources {
    let w = width as f64;
    let lg = w.log2().max(1.0);
    // Physical-register address width grows with the Table 2 scaling.
    let prbits = match width {
        0..=4 => 8.0,
        5..=8 => 10.0,
        _ => 12.0,
    };
    let (alloc_luts, alloc_ffs) = match isa {
        IsaKind::Riscv => {
            // Multi-port RMT + quadratic DCL, power-law fit to RSD.
            (176.7 * w.powf(1.855), 21.5 * w * w + 603.0 * w)
        }
        IsaKind::Straight => (
            // Prefix-sum tree over one register pointer.
            0.932 * w * lg * prbits + 45.25 * w + 201.4,
            130.0 * w + 52.0,
        ),
        IsaKind::Clockhands => (
            // Four pointers, but narrower adders per hand.
            0.136 * w * lg * prbits + 90.0 * w + 44.0,
            125.5 * w + 49.3 + 0.136 * w * lg * prbits,
        ),
    };
    // The rest of the core is identical hardware across the ISAs:
    // near-linear in width (fitted to the Table 3 residuals).
    let rest_luts = 17_695.0 + 20_149.0 * w;
    let rest_ffs = 22_023.0 + 1_885.0 * w;
    FpgaResources {
        alloc_luts,
        alloc_ffs,
        total_luts: alloc_luts + rest_luts,
        total_ffs: alloc_ffs + rest_ffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 of the paper (alloc-stage LUTs/FFs, overall LUTs/FFs).
    const TABLE3: [(u32, IsaKind, f64, f64, f64, f64); 9] = [
        (4, IsaKind::Riscv, 2310.0, 998.0, 101_483.0, 31_081.0),
        (4, IsaKind::Straight, 442.0, 572.0, 96_631.0, 28_769.0),
        (4, IsaKind::Clockhands, 401.0, 560.0, 99_913.0, 30_968.0),
        (8, IsaKind::Riscv, 12_309.0, 7_521.0, 190_380.0, 45_708.0),
        (8, IsaKind::Straight, 787.0, 1_092.0, 188_118.0, 43_928.0),
        (8, IsaKind::Clockhands, 761.0, 1_086.0, 185_701.0, 42_254.0),
        (16, IsaKind::Riscv, 30_230.0, 14_938.0, 350_377.0, 63_338.0),
        (16, IsaKind::Straight, 1_641.0, 2_132.0, 354_105.0, 57_214.0),
        (
            16,
            IsaKind::Clockhands,
            1_432.0,
            2_162.0,
            349_074.0,
            55_220.0,
        ),
    ];

    #[test]
    fn rename_free_alloc_stage_is_small_at_every_width() {
        for w in [4, 8, 16] {
            let r = resources(w, IsaKind::Riscv);
            let s = resources(w, IsaKind::Straight);
            let c = resources(w, IsaKind::Clockhands);
            assert!(r.alloc_luts > 3.0 * s.alloc_luts, "width {w}");
            assert!(r.alloc_luts > 3.0 * c.alloc_luts, "width {w}");
            // The paper: "this property is universal regardless of width"
            // and the gap grows.
        }
        let gap4 =
            resources(4, IsaKind::Riscv).alloc_luts / resources(4, IsaKind::Clockhands).alloc_luts;
        let gap16 = resources(16, IsaKind::Riscv).alloc_luts
            / resources(16, IsaKind::Clockhands).alloc_luts;
        assert!(
            gap16 > 2.0 * gap4,
            "gap must grow with width: {gap4:.1} → {gap16:.1}"
        );
    }

    #[test]
    fn model_tracks_table3_within_tolerance() {
        // Alloc-stage entries within 55% (the RSD data is not a clean
        // function of width; see EXPERIMENTS.md), overall within 15%.
        for (w, isa, al, af, tl, tf) in TABLE3 {
            let m = resources(w, isa);
            let pct = |got: f64, want: f64| (got - want).abs() / want;
            assert!(
                pct(m.alloc_luts, al) < 0.55,
                "{isa:?}@{w} alloc LUTs {} vs {al}",
                m.alloc_luts
            );
            assert!(
                pct(m.alloc_ffs, af) < 1.8,
                "{isa:?}@{w} alloc FFs {} vs {af}",
                m.alloc_ffs
            );
            assert!(
                pct(m.total_luts, tl) < 0.15,
                "{isa:?}@{w} total LUTs {} vs {tl}",
                m.total_luts
            );
            assert!(
                pct(m.total_ffs, tf) < 0.15,
                "{isa:?}@{w} total FFs {} vs {tf}",
                m.total_ffs
            );
        }
    }

    #[test]
    fn overall_core_is_comparable_across_isas() {
        // Table 3's second claim: a Clockhands core costs no more than a
        // RISC core overall.
        for w in [4, 8, 16] {
            let r = resources(w, IsaKind::Riscv);
            let c = resources(w, IsaKind::Clockhands);
            assert!(c.total_luts < 1.02 * r.total_luts, "width {w}");
        }
    }
}
