//! Kern language conformance: every language feature, executed on all
//! three backends, must agree with the expected value.

use ch_baselines::{riscv, straight};
use ch_compiler::compile;
use clockhands::interp::Interpreter as ChInterp;

/// Compiles and runs `src` on all three ISAs, asserting they all return
/// `expect`.
fn check(src: &str, expect: u64) {
    let set = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
    let r = riscv::interp::Interpreter::new(set.riscv)
        .expect("valid riscv")
        .run(200_000_000)
        .unwrap_or_else(|e| panic!("riscv run: {e}"));
    assert_eq!(r.exit_value, expect, "riscv");
    let s = straight::interp::Interpreter::new(set.straight)
        .expect("valid straight")
        .run(200_000_000)
        .unwrap_or_else(|e| panic!("straight run: {e}"));
    assert_eq!(s.exit_value, expect, "straight");
    let c = ChInterp::new(set.clockhands)
        .expect("valid clockhands")
        .run(200_000_000)
        .unwrap_or_else(|e| panic!("clockhands run: {e}"));
    assert_eq!(c.exit_value, expect, "clockhands");
}

#[test]
fn arithmetic_operators() {
    check("fn main() -> int { return 7 + 3 * 2 - 4 / 2; }", 11);
    check("fn main() -> int { var a: int = 17; return a % 5; }", 2);
    check(
        "fn main() -> int { var a: int = 0 - 17; return a % 5 + 10; }",
        8,
    );
    check(
        "fn main() -> int { var a: int = 0 - 20; return a / 6 + 10; }",
        7,
    );
}

#[test]
fn bitwise_and_shifts() {
    check(
        "fn main() -> int { var a: int = 0xf0; return (a >> 4) | (a << 4) & 0xf00; }",
        0xf0f,
    );
    check(
        "fn main() -> int { var a: int = 0 - 8; return (a >> 1) + 100; }",
        96,
    );
    check("fn main() -> int { return (~5) & 0xff; }", 250);
    check("fn main() -> int { return 0x3c ^ 0xff; }", 0xc3);
}

#[test]
fn comparisons_as_values() {
    check(
        "fn main() -> int { var a: int = 3; return (a < 5) * 10 + (a > 5); }",
        10,
    );
    check(
        "fn main() -> int { var a: int = 5; return (a <= 5) + (a >= 5) + (a == 5) + (a != 5); }",
        3,
    );
    check(
        "fn main() -> int { var a: int = 0 - 1; return (a < 0) * 2; }",
        2,
    );
}

#[test]
fn logical_operators_short_circuit() {
    // The right side of && must not run when the left is false (the
    // division by zero would change the value under RISC-V semantics).
    check(
        "global touched: int;
         fn side() -> int { touched = 1; return 1; }
         fn main() -> int {
             var zero: int = 0;
             if (zero != 0 && side() == 1) { return 100; }
             return touched;
         }",
        0,
    );
    check(
        "fn main() -> int { var a: int = 0; return (a || 7) + (a && 9); }",
        1,
    );
    check(
        "fn main() -> int { var a: int = 2; return (a || 0) + (a && 9); }",
        2,
    );
    check("fn main() -> int { var a: int = 1; return !a + !0; }", 1);
}

#[test]
fn control_flow_shapes() {
    check(
        "fn main() -> int {
             var x: int = 7;
             if (x > 10) { return 1; }
             else if (x > 5) { return 2; }
             else { return 3; }
         }",
        2,
    );
    check(
        "fn main() -> int {
             var s: int = 0;
             for (var i: int = 0; i < 20; i += 1) {
                 if (i % 3 == 0) { continue; }
                 if (i > 15) { break; }
                 s += i;
             }
             return s;
         }",
        1 + 2 + 4 + 5 + 7 + 8 + 10 + 11 + 13 + 14,
    );
    check(
        "fn main() -> int {
             var n: int = 0;
             while (n * n < 150) { n += 1; }
             return n;
         }",
        13,
    );
}

#[test]
fn nested_loops_with_breaks() {
    check(
        "fn main() -> int {
             var found: int = 0 - 1;
             for (var i: int = 0; i < 10; i += 1) {
                 for (var j: int = 0; j < 10; j += 1) {
                     if (i * j == 42) { found = i * 100 + j; break; }
                 }
                 if (found >= 0) { break; }
             }
             return found;
         }",
        607,
    );
}

#[test]
fn functions_and_recursion() {
    check(
        "fn gcd(a: int, b: int) -> int {
             if (b == 0) { return a; }
             return gcd(b, a % b);
         }
         fn main() -> int { return gcd(1071, 462); }",
        21,
    );
    check(
        "fn ack(m: int, n: int) -> int {
             if (m == 0) { return n + 1; }
             if (n == 0) { return ack(m - 1, 1); }
             return ack(m - 1, ack(m, n - 1));
         }
         fn main() -> int { return ack(2, 3); }",
        9,
    );
    check(
        "fn five() -> int { return 5; }
         fn add3(a: int, b: int, c: int) -> int { return a + b + c; }
         fn main() -> int { return add3(five(), five() * 2, five() * 4); }",
        35,
    );
}

#[test]
fn many_arguments() {
    check(
        "fn sum6(a: int, b: int, c: int, d: int, e: int, f: int) -> int {
             return a + b + c + d + e + f;
         }
         fn main() -> int { return sum6(1, 2, 3, 4, 5, 6); }",
        21,
    );
}

#[test]
fn global_scalars_and_arrays() {
    check(
        "global counter: int;
         global table: int[16];
         fn tick() { counter += 1; }
         fn main() -> int {
             for (var i: int = 0; i < 16; i += 1) { table[i] = i * i; tick(); }
             return table[15] + counter;
         }",
        225 + 16,
    );
}

#[test]
fn byte_arrays_wrap() {
    check(
        "global b: byte[8];
         fn main() -> int {
             b[0] = 200;
             b[1] = b[0] + 100;   // 300 wraps to 44
             b[2] = 0 - 1;        // wraps to 255
             return b[1] + b[2];
         }",
        44 + 255,
    );
}

#[test]
fn local_arrays_and_aliasing_via_calls() {
    check(
        "fn fill(p: int, n: int) {
             for (var i: int = 0; i < n; i += 1) { p[i] = i + 1; }
         }
         fn sum(p: int, n: int) -> int {
             var s: int = 0;
             for (var i: int = 0; i < n; i += 1) { s += p[i]; }
             return s;
         }
         fn main() -> int {
             var a: int[10];
             fill(a, 10);
             return sum(a, 10);
         }",
        55,
    );
}

#[test]
fn real_arithmetic_and_conversion() {
    check(
        "fn main() -> int {
             var x: real = 0.0;
             for (var i: int = 1; i <= 100; i += 1) { x = x + real(i); }
             return int(x);
         }",
        5050,
    );
    check(
        "fn main() -> int {
             var a: real = 10.0;
             var b: real = 4.0;
             return int(a / b * 100.0);   // 250
         }",
        250,
    );
    check(
        "fn mean(a: real, b: real) -> real { return (a + b) / 2.0; }
         fn main() -> int { return int(mean(3.0, 8.0) * 10.0); }",
        55,
    );
    check(
        "fn main() -> int {
             var x: real = 0.5;
             return (x < 1.0) + (x > 0.1) * 2 + (x == 0.5) * 4;
         }",
        7,
    );
}

#[test]
fn compound_assignment_operators() {
    check(
        "fn main() -> int {
             var a: int = 100;
             a += 5; a -= 3; a *= 2; a /= 4; a %= 13;
             a <<= 2; a >>= 1; a |= 8; a &= 0xe; a ^= 3;
             return a;
         }",
        11, // 100→105→102→204→51→12→48→24→24→8→11
    );
}

#[test]
fn shadowing_in_blocks() {
    check(
        "fn main() -> int {
             var x: int = 1;
             if (x == 1) {
                 var y: int = 10;
                 x += y;
             }
             for (var y: int = 0; y < 3; y += 1) { x += y; }
             return x;
         }",
        14,
    );
}

#[test]
#[allow(clippy::identity_op)] // expected value mirrors the source expression term-for-term
fn deep_expression_trees() {
    // Stress the t-hand rotation with a wide, deep expression.
    check(
        "fn main() -> int {
             var a: int = 1; var b: int = 2; var c: int = 3; var d: int = 4;
             return ((a + b) * (c + d) + (a * c - b * d)
                     + ((a + c) * (b + d) - (a + d) * (b + c)))
                    * ((a | b) + (c & d) + (a ^ d));
         }",
        ((1 + 2) * (3 + 4) + (3 - 8) + ((1 + 3) * (2 + 4) - (1 + 4) * (2 + 3))) as u64
            * ((1 | 2) + (3 & 4) + (1 ^ 4)) as u64,
    );
}

#[test]
fn hex_literals_and_large_constants() {
    check("fn main() -> int { return 0xdeadbeef & 0xffff; }", 0xbeef);
    check(
        "fn main() -> int {
             var big: int = 1103515245;
             return (big * 3) % 1000000;
         }",
        (1103515245i64 * 3 % 1000000) as u64,
    );
}

#[test]
fn void_functions_and_side_effects() {
    check(
        "global log: int[4];
         global n: int;
         fn push(v: int) { log[n] = v; n += 1; }
         fn main() -> int {
             push(3); push(5); push(7);
             return log[0] * 100 + log[1] * 10 + log[2] + n * 1000;
         }",
        3357,
    );
}

#[test]
fn early_returns_from_loops() {
    check(
        "fn find(limit: int) -> int {
             for (var i: int = 2; i < limit; i += 1) {
                 var divisible: int = 0;
                 for (var j: int = 2; j * j <= i; j += 1) {
                     if (i % j == 0) { divisible = 1; break; }
                 }
                 if (divisible == 0 && i > 90) { return i; }
             }
             return 0 - 1;
         }
         fn main() -> int { return find(200); }",
        97,
    );
}
