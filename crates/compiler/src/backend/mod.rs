//! The three register-assignment backends (Fig. 10 of the paper).

pub mod clockhands;
pub mod opt;
pub mod riscv;
pub mod straight;
