//! STRAIGHT backend: distance fixing with a single ring.
//!
//! The central constraint (Section 2.2.2 of the paper): a source's dynamic
//! inter-instruction distance must be statically fixed and ≤ 127. This
//! first-step compiler enforces it with an **edge-relay** scheme:
//!
//! * Within a block, every value's ring position is tracked exactly (every
//!   instruction occupies one slot).
//! * On every CFG edge into a block `S`, the values live into `S` are
//!   re-emitted with relay `mv`s in a canonical order followed by one
//!   jump, so every predecessor delivers them at identical distances —
//!   these are the paper's *mv-LoopConstant* relays, plus the Fig. 2(c)
//!   `j`/`nop` padding, materialised as real instructions.
//! * A value whose in-block distance approaches the 127 limit is
//!   re-relayed in place (*mv-MaxDistance*).
//! * A call invalidates every caller distance (the callee executes an
//!   unknown number of slots), so values live across a call are spilled
//!   to the stack and reloaded — the paper's observed load/store
//!   increase in STRAIGHT.
//!
//! Calling convention (matching Fig. 1(c) and Section 4.2): args are the
//! last writes before the `call` (arg1 innermost), the return address is
//! the `call`'s own slot, SP is the special register updated by `spaddi`,
//! and the return value is written immediately before `ret` (distance 2
//! at the resume point).

use super::opt::{schedule_function, OptConfig};
use crate::cfg::{liveness, loop_info, rpo, BitSet};
use crate::ir::{Function, Ins, Module, Term, VReg};
use ch_baselines::straight::{StInst, StProgram, StSrc};
use ch_common::exec::{AluOp, LoadOp, StoreOp};
use std::collections::HashMap;

/// Relay proactively once a live value's distance reaches this threshold.
const RELAY_AT: i64 = 120;
/// Hard ISA limit.
const MAX_DIST: i64 = 127;

/// Compiles a module to a STRAIGHT program (with a `_start` stub)
/// using the process-wide optimization configuration.
///
/// # Errors
///
/// Returns a description of any unsatisfiable constraint.
pub fn compile(module: &Module) -> Result<StProgram, String> {
    compile_with(module, &OptConfig::current())
}

/// Compiles a module with an explicit optimization configuration.
///
/// STRAIGHT consumes the shared analyses through one lever: the
/// distance-aware local scheduler ([`schedule_function`]). Shorter
/// def-use spans mean fewer *mv-MaxDistance* relays against the 127
/// limit and tighter edge-relay sequences. As in the Clockhands
/// backend, the scheduled variant is accepted per function only when
/// it strictly shrinks the emitted code — the heuristic is measured,
/// not trusted.
///
/// # Errors
///
/// Returns a description of any unsatisfiable constraint.
pub fn compile_with(module: &Module, opt: &OptConfig) -> Result<StProgram, String> {
    let mut prog = StProgram::new();
    let mut call_fixups: Vec<(usize, usize)> = Vec::new();
    let mut fn_starts: Vec<u32> = Vec::new();

    prog.insts.push(StInst::Call { target: 0 });
    call_fixups.push((0, module.main_index()));
    prog.insts.push(StInst::Halt {
        src: StSrc::Dist(2),
    });
    prog.labels.insert("_start".to_string(), 0);

    for f in &module.funcs {
        fn_starts.push(prog.insts.len() as u32);
        prog.labels.insert(f.name.clone(), prog.insts.len() as u32);
        let scheduled;
        let mut chosen = f;
        if opt.schedule {
            scheduled = schedule_function(f);
            let emitted = |func: &Function| -> Option<usize> {
                let mut tmp = StProgram::new();
                let mut fx = Vec::new();
                FnCg::new(func, module, &mut tmp, &mut fx)
                    .run()
                    .ok()
                    .map(|()| tmp.insts.len())
            };
            if let (Some(base), Some(sched)) = (emitted(f), emitted(&scheduled)) {
                if sched < base {
                    chosen = &scheduled;
                }
            }
        }
        FnCg::new(chosen, module, &mut prog, &mut call_fixups).run()?;
    }
    for (at, func) in call_fixups {
        if let StInst::Call { target } = &mut prog.insts[at] {
            *target = fn_starts[func];
        }
    }
    prog.entry = 0;
    Ok(prog)
}

struct FnCg<'a> {
    f: &'a Function,
    module: &'a Module,
    out: &'a mut StProgram,
    call_fixups: &'a mut Vec<(usize, usize)>,
    /// Ring-slot position of each live vreg (counter units; negative =
    /// written before the current block).
    loc: HashMap<VReg, i64>,
    /// Monotone slot counter within the current path segment.
    counter: i64,
    /// Vregs whose sole definition is integer constant zero.
    zero_vregs: BitSet,
    /// Frame offsets for values spilled around calls.
    spill_off: HashMap<VReg, i32>,
    frame_size: i32,
    ra_off: i32,
    array_offsets: Vec<i32>,
    /// Start index (in `out.insts`) of each block's body.
    block_starts: Vec<u32>,
    /// Jump/branch fixups: (inst index, target block).
    fixups: Vec<(usize, usize)>,
    /// Canonical live-in order per block.
    entry_order: Vec<Vec<VReg>>,
    live_out: Vec<BitSet>,
    /// Predecessor counts (single-pred blocks inherit state, no relays).
    preds_count: Vec<usize>,
    /// Saved path state for single-predecessor successors.
    pending: HashMap<usize, (HashMap<VReg, i64>, i64)>,
    /// Chosen entry layout per multi-predecessor block: (vreg, distance).
    layouts: Vec<Vec<(VReg, i64)>>,
    /// Hot natural delivery observed per block: (source loop depth, dists).
    deliveries: Vec<Option<(u32, HashMap<VReg, i64>)>>,
    /// Loop depth per block (hot-edge selection).
    depth: Vec<u32>,
    /// Fix-up writes emitted this pass (convergence metric).
    fix_writes: u64,
    /// Previous pass's deliveries (drift detection: a value is only a
    /// stable natural if two consecutive passes deliver it identically).
    deliveries_prev: Vec<Option<HashMap<VReg, i64>>>,
}

impl<'a> FnCg<'a> {
    fn new(
        f: &'a Function,
        module: &'a Module,
        out: &'a mut StProgram,
        call_fixups: &'a mut Vec<(usize, usize)>,
    ) -> Self {
        let live = liveness(f);
        // Canonical order: ascending vreg id, EXCEPT the entry block whose
        // order is dictated by the calling convention (args are pushed
        // argN..arg1, so the last relay before the call is arg1).
        let mut entry_order: Vec<Vec<VReg>> = live
            .live_in
            .iter()
            .map(|s| s.iter().collect::<Vec<_>>())
            .collect();
        entry_order[0] = f.params.iter().rev().copied().collect();
        // Zero-const vregs: single definition, `Const 0`.
        let mut defs: HashMap<VReg, u32> = HashMap::new();
        let mut zeroes: Vec<VReg> = Vec::new();
        for b in &f.blocks {
            for ins in &b.insts {
                if let Some(d) = ins.dst() {
                    *defs.entry(d).or_default() += 1;
                    if matches!(ins, Ins::Const { val: 0, .. }) {
                        zeroes.push(d);
                    }
                }
            }
        }
        let mut zero_vregs = BitSet::new(f.num_vregs());
        for z in zeroes {
            if defs[&z] == 1 {
                zero_vregs.insert(z);
            }
        }
        FnCg {
            f,
            module,
            out,
            call_fixups,
            loc: HashMap::new(),
            counter: 0,
            zero_vregs,
            spill_off: HashMap::new(),
            frame_size: 0,
            ra_off: 0,
            array_offsets: Vec::new(),
            block_starts: vec![0; f.blocks.len()],
            fixups: Vec::new(),
            entry_order,
            live_out: live.live_out,
            preds_count: f.predecessors().iter().map(|p| p.len()).collect(),
            pending: HashMap::new(),
            layouts: Vec::new(),
            deliveries: Vec::new(),
            depth: loop_info(f).depth,
            fix_writes: 0,
            deliveries_prev: Vec::new(),
        }
    }

    fn push(&mut self, i: StInst) {
        self.out.insts.push(i);
        self.counter += 1;
    }

    /// Reads vreg `v` as a source operand.
    fn src(&self, v: VReg) -> Result<StSrc, String> {
        if self.zero_vregs.contains(v) {
            return Ok(StSrc::Zero);
        }
        let pos = self
            .loc
            .get(&v)
            .ok_or_else(|| format!("{}: v{} has no ring position", self.f.name, v))?;
        let d = self.counter - pos;
        if !(1..=MAX_DIST).contains(&d) {
            return Err(format!("{}: v{} at distance {d}", self.f.name, v));
        }
        Ok(StSrc::Dist(d as u8))
    }

    /// Records that the instruction about to be pushed defines `v`.
    fn define(&mut self, v: VReg) {
        self.loc.insert(v, self.counter);
    }

    /// Relays any still-needed value whose distance reached `threshold`.
    fn relay_over(&mut self, threshold: i64, keep: &dyn Fn(VReg) -> bool) -> Result<(), String> {
        for _guard in 0..512 {
            // Deterministic choice: deepest value first, vreg id ties.
            let mut victim: Option<(i64, VReg)> = None;
            for (&v, &pos) in &self.loc {
                if self.zero_vregs.contains(v) {
                    continue;
                }
                let d = self.counter - pos;
                if keep(v) && d >= threshold && victim.map(|b| (d, v) > b).unwrap_or(true) {
                    victim = Some((d, v));
                }
            }
            let victim = victim.map(|(_, v)| v);
            match victim {
                Some(v) => {
                    let s = self.src(v)?;
                    self.define(v);
                    self.push(StInst::Mv { src: s });
                }
                None => return Ok(()),
            }
        }
        Err(format!(
            "{}: relay pressure too high (≥512 relays)",
            self.f.name
        ))
    }

    fn run(mut self) -> Result<(), String> {
        // ---- Frame layout: [ra][call spills][arrays] ----
        let mut needs_spill = BitSet::new(self.f.num_vregs());
        for (b, blk) in self.f.blocks.iter().enumerate() {
            for (i, ins) in blk.insts.iter().enumerate() {
                if let Ins::Call { dst, .. } = ins {
                    let mut after = self.live_out[b].clone();
                    for later in &blk.insts[i + 1..] {
                        for s in later.srcs() {
                            after.insert(s);
                        }
                    }
                    for s in blk.term.srcs() {
                        after.insert(s);
                    }
                    if let Some(d) = dst {
                        after.remove(*d);
                    }
                    needs_spill.union_with(&after);
                }
            }
        }
        self.ra_off = 0;
        let mut off = 8i32;
        for v in needs_spill.iter() {
            if self.zero_vregs.contains(v) {
                continue;
            }
            self.spill_off.insert(v, off);
            off += 8;
        }
        for &sz in &self.f.frame_slots {
            self.array_offsets.push(off);
            off += (sz.div_ceil(8) * 8) as i32;
        }
        self.frame_size = (off + 15) / 16 * 16;

        // Initial layouts: canonical (live-ins ascending, deepest first,
        // every distance ≥ 1 because a jump slot always precedes entry).
        self.layouts = self
            .entry_order
            .iter()
            .map(|order| {
                let k = order.len() as i64;
                // Distances k-j+1 put the last value at 2 (one slot for
                // the edge jump — or, at the function entry, the call).
                order
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v, k - j as i64 + 1))
                    .collect()
            })
            .collect();

        // Distance fixing is iterated (Section 6.1): pass 1 probes the
        // natural positions each edge delivers; loop headers then adopt
        // the hottest (deepest) incoming edge's natural layout so the
        // back edge pays no relays; a final pass emits the result.
        let fn_start = self.out.insts.len();
        let cf_start = self.call_fixups.len();
        self.deliveries_prev = vec![None; self.f.blocks.len()];
        for pass in 0..4 {
            self.out.insts.truncate(fn_start);
            self.call_fixups.truncate(cf_start);
            self.fixups.clear();
            self.pending.clear();
            self.deliveries = vec![None; self.f.blocks.len()];
            self.fix_writes = 0;
            let order = rpo(self.f);
            for (oi, &b) in order.iter().enumerate() {
                let next = order.get(oi + 1).copied();
                self.gen_block(b, oi == 0, next)?;
            }
            if std::env::var("CH_DEBUG_LAYOUT").is_ok() {
                eprintln!(
                    "[{} pass {pass}] fix_writes={} layouts={:?} deliveries={:?}",
                    self.f.name, self.fix_writes, self.layouts, self.deliveries
                );
            }
            if pass == 3 || self.fix_writes == 0 {
                break;
            }
            self.update_layouts();
            self.deliveries_prev = self
                .deliveries
                .iter()
                .map(|d| d.as_ref().map(|(_, n)| n.clone()))
                .collect();
        }
        for (at, blk) in std::mem::take(&mut self.fixups) {
            let t = self.block_starts[blk];
            match &mut self.out.insts[at] {
                StInst::Branch { target, .. } | StInst::Jump { target } => *target = t,
                _ => unreachable!("fixup on non-branch"),
            }
        }
        Ok(())
    }

    /// Adopts each join's hottest observed natural delivery as its entry
    /// layout; undeliverable values fall back to explicit relay slots.
    fn update_layouts(&mut self) {
        const LIMIT: i64 = 100;
        for b in 0..self.f.blocks.len() {
            let nat = match &self.deliveries[b] {
                Some((_, nat)) => nat.clone(),
                None => continue,
            };
            let prev = self.deliveries_prev[b].clone();
            let stable = |v: VReg, d: i64| -> bool {
                match &prev {
                    Some(p) => p.get(&v) == Some(&d),
                    None => true, // first update: optimistic
                }
            };
            let order = self.entry_order[b].clone();
            let mut used: std::collections::HashSet<i64> = std::collections::HashSet::new();
            let mut naturals: Vec<(VReg, i64)> = Vec::new();
            let mut relays: Vec<VReg> = Vec::new();
            for &v in &order {
                match nat.get(&v) {
                    // A jump edge can never deliver at distance 1 (the
                    // jump's own slot), so natural layouts start at 2.
                    Some(&d) if (2..=LIMIT).contains(&d) && stable(v, d) && used.insert(d) => {
                        naturals.push((v, d));
                    }
                    _ => relays.push(v),
                }
            }
            // The steady state emits exactly the relay group every time
            // (r writes), which shifts every unemitted natural by r: put
            // relays at the shallowest slots (2..r+1 behind the jump) and
            // naturals at their observed distance plus r.
            loop {
                let r = relays.len() as i64;
                match naturals.iter().position(|&(_, d)| d + r > LIMIT) {
                    Some(i) => relays.push(naturals.remove(i).0),
                    None => break,
                }
            }
            let r = relays.len() as i64;
            let mut layout: Vec<(VReg, i64)> =
                naturals.into_iter().map(|(v, d)| (v, d + r)).collect();
            for (i, v) in relays.into_iter().enumerate() {
                layout.push((v, 2 + i as i64));
            }
            self.layouts[b] = layout;
        }
    }

    /// Entry state for a join block: live-ins at their chosen layout
    /// distances (the function entry instead follows the calling
    /// convention — see `gen_block`).
    fn block_entry_state(&mut self, b: usize) {
        self.loc.clear();
        self.counter = 0;
        for (v, d) in self.layouts[b].clone() {
            self.loc.insert(v, -d);
        }
    }

    fn gen_block(&mut self, b: usize, is_entry: bool, next: Option<usize>) -> Result<(), String> {
        self.block_starts[b] = self.out.insts.len() as u32;
        if let Some((loc, counter)) = self.pending.remove(&b) {
            // Single predecessor: inherit its exact path state — every
            // distance carries over, no relays were needed.
            self.loc = loc;
            self.counter = counter;
        } else {
            self.block_entry_state(b);
        }

        let blk = &self.f.blocks[b];
        // Per-point liveness within the block: needed_at[i] holds the
        // vregs whose value at point i is still read later with no
        // intervening redefinition, or escapes the block. A plain
        // "used later" test would relay/spill stale values that are
        // redefined before their next use — and a stale distance may
        // already be unencodable.
        let nins = blk.insts.len();
        let mut needed_at: Vec<std::collections::HashSet<VReg>> =
            vec![Default::default(); nins + 1];
        let mut live: std::collections::HashSet<VReg> = self.live_out[b].iter().collect();
        live.extend(blk.term.srcs());
        needed_at[nins] = live.clone();
        for i in (0..nins).rev() {
            if let Some(d) = blk.insts[i].dst() {
                live.remove(&d);
            }
            live.extend(blk.insts[i].srcs());
            needed_at[i] = live.clone();
        }

        if is_entry {
            // Prologue: allocate the frame, then spill the return address
            // (the call's slot: distance 1 at entry, 2 after the spaddi).
            self.push(StInst::SpAddi {
                imm: -self.frame_size,
            });
            self.push(StInst::Store {
                op: StoreOp::Sd,
                value: StSrc::Dist(2),
                base: StSrc::Sp,
                offset: self.ra_off,
            });
        }

        let insts = blk.insts.clone();
        for (i, ins) in insts.iter().enumerate() {
            // The current value of v must survive past this instruction:
            // needed afterwards, and not about to be redefined here.
            let na = &needed_at[i + 1];
            let dst = ins.dst();
            // A call's lowering emits one ring slot per spill store and
            // per argument push before its last pre-call read, so every
            // distance drifts by that many. Tighten the relay threshold
            // to leave that headroom, and keep the arguments themselves
            // in reach — they may be dead after the call.
            let (threshold, call_args): (i64, &[VReg]) = if let Ins::Call { args, .. } = ins {
                let spills = self
                    .loc
                    .keys()
                    .filter(|&&v| na.contains(&v) && dst != Some(v) && !self.zero_vregs.contains(v))
                    .count() as i64;
                let t = (MAX_DIST - spills - args.len() as i64).clamp(1, RELAY_AT);
                (t, args)
            } else {
                (RELAY_AT, &[])
            };
            let keep = move |v: VReg| (na.contains(&v) && dst != Some(v)) || call_args.contains(&v);
            self.relay_over(threshold, &keep)?;
            self.gen_ins(ins, &needed_at[i + 1])?;
        }
        let term = blk.term.clone();
        // The terminator's reads and edge-fix writes run after the last
        // instruction's relay pass; relay once more so they start in
        // reach.
        let na = &needed_at[nins];
        self.relay_over(RELAY_AT, &move |v: VReg| na.contains(&v))?;
        self.gen_term(b, &term, next)?;
        Ok(())
    }

    fn gen_ins(
        &mut self,
        ins: &Ins,
        needed_after: &std::collections::HashSet<VReg>,
    ) -> Result<(), String> {
        match ins {
            Ins::Const { dst, val } => {
                if self.zero_vregs.contains(*dst) {
                    return Ok(()); // reads become StSrc::Zero
                }
                self.define(*dst);
                self.push(StInst::Li { imm: *val });
            }
            Ins::FConst { dst, val } => {
                self.define(*dst);
                self.push(StInst::Li {
                    imm: val.to_bits() as i64,
                });
            }
            Ins::GlobalAddr { dst, id } => {
                self.define(*dst);
                self.push(StInst::Li {
                    imm: self.module.globals[*id].addr as i64,
                });
            }
            Ins::FrameAddr { dst, slot } => {
                self.define(*dst);
                self.push(StInst::AluImm {
                    op: AluOp::Add,
                    src1: StSrc::Sp,
                    imm: self.array_offsets[*slot],
                });
            }
            Ins::Bin { op, dst, a, b } => {
                let s1 = self.src(*a)?;
                let s2 = self.src(*b)?;
                self.define(*dst);
                self.push(StInst::Alu {
                    op: *op,
                    src1: s1,
                    src2: s2,
                });
            }
            Ins::BinImm { op, dst, a, imm } => {
                let s1 = self.src(*a)?;
                self.define(*dst);
                self.push(StInst::AluImm {
                    op: *op,
                    src1: s1,
                    imm: *imm,
                });
            }
            Ins::Load { op, dst, addr, off } => {
                let base = self.src(*addr)?;
                self.define(*dst);
                self.push(StInst::Load {
                    op: *op,
                    base,
                    offset: *off,
                });
            }
            Ins::Store { op, val, addr, off } => {
                let value = self.src(*val)?;
                let base = self.src(*addr)?;
                self.push(StInst::Store {
                    op: *op,
                    value,
                    base,
                    offset: *off,
                });
            }
            Ins::Copy { dst, src } => {
                let s = self.src(*src)?;
                self.define(*dst);
                self.push(StInst::Mv { src: s });
            }
            Ins::Call { dst, callee, args } => {
                // 1. Spill everything needed after the call that currently
                //    has a ring position.
                let mut after: Vec<VReg> = self
                    .loc
                    .keys()
                    .copied()
                    .filter(|&v| {
                        needed_after.contains(&v) && Some(v) != *dst && !self.zero_vregs.contains(v)
                    })
                    .collect();
                after.sort_unstable();
                for &v in &after {
                    let s = self.src(v)?;
                    let off = *self
                        .spill_off
                        .get(&v)
                        .ok_or_else(|| format!("{}: v{v} has no spill slot", self.f.name))?;
                    self.push(StInst::Store {
                        op: StoreOp::Sd,
                        value: s,
                        base: StSrc::Sp,
                        offset: off,
                    });
                }
                // 2. Push args argN..arg1.
                for &a in args.iter().rev() {
                    let s = self.src(a)?;
                    self.push(StInst::Mv { src: s });
                }
                // 3. Call; its slot is the return address.
                let at = self.out.insts.len();
                self.push(StInst::Call { target: 0 });
                self.call_fixups.push((at, *callee));
                // 4. Every caller position is dead. The return value is at
                //    distance 2 from the next instruction (retval mv, ret).
                self.loc.clear();
                if let Some(d) = dst {
                    self.loc.insert(*d, self.counter - 2);
                }
                // 5. Reload the spilled values.
                for &v in &after {
                    let off = self.spill_off[&v];
                    self.define(v);
                    self.push(StInst::Load {
                        op: LoadOp::Ld,
                        base: StSrc::Sp,
                        offset: off,
                    });
                }
            }
        }
        Ok(())
    }

    /// Minimal number of trailing fix writes so every layout target lands
    /// at its distance. Emitted fixes occupy entry distances
    /// `jj+1 ..= jj+c` (the optional jump takes slot `jj = 1`); an
    /// unemitted value drifts to `current + c + jj`.
    fn min_fix_writes(&self, targets: &[(VReg, i64)], jj: i64) -> i64 {
        let maxd = targets.iter().map(|&(_, d)| d).max().unwrap_or(0);
        'outer: for c in 0..=(maxd - jj).max(0) {
            for &(v, d) in targets {
                if d > c + jj {
                    // Unemitted: current distance must line up exactly.
                    match self.loc.get(&v) {
                        Some(&pos) if self.counter - pos + c + jj == d => {}
                        _ => continue 'outer,
                    }
                }
            }
            return c;
        }
        (maxd - jj).max(0)
    }

    /// Transfers control to `t`: a single-predecessor target inherits the
    /// path state; a join receives exactly the writes needed to realise
    /// its entry layout (zero on the stabilised hot edge).
    fn take_edge(&mut self, from: usize, t: usize, can_fallthrough: bool) -> Result<(), String> {
        if self.preds_count[t] == 1 {
            if !can_fallthrough {
                let at = self.out.insts.len();
                self.push(StInst::Jump { target: 0 });
                self.fixups.push((at, t));
            }
            self.pending.insert(t, (self.loc.clone(), self.counter));
            return Ok(());
        }
        let targets = self.layouts[t].clone();
        let jump = !can_fallthrough;
        let jj = jump as i64;
        // Record the natural delivery for the layout update.
        let d_from = self.depth[from];
        let record = self.deliveries[t]
            .as_ref()
            .map(|(d, _)| *d < d_from)
            .unwrap_or(true);
        if record {
            let mut nat = HashMap::new();
            for &(v, _) in &targets {
                if let Some(&pos) = self.loc.get(&v) {
                    nat.insert(v, self.counter - pos + jj);
                }
            }
            self.deliveries[t] = Some((d_from, nat));
        }
        let mut c = self.min_fix_writes(&targets, jj);
        // Pre-relay any to-be-emitted value whose read would overflow by
        // the time its slot comes up. When a relay is needed, the victim
        // is the deepest emitted value — not the deepest *flagged* one:
        // every relay pushes the others one deeper, so relaying around a
        // value sitting at MAX_DIST would push it out of reach before
        // the recomputed fix count flags it. Relaying max-first keeps
        // the maximum distance from ever growing.
        for _round in 0..64 {
            let mut need = false;
            let mut deepest: Option<(VReg, i64)> = None;
            for &(v, d) in &targets {
                if d <= c + jj {
                    if let Some(&pos) = self.loc.get(&v) {
                        let cur = self.counter - pos;
                        if cur + (jj + c - d) > MAX_DIST {
                            need = true;
                        }
                        if deepest.map(|(_, bd)| cur > bd).unwrap_or(true) {
                            deepest = Some((v, cur));
                        }
                    }
                }
            }
            let victim = if need { deepest } else { None };
            match victim {
                Some((v, _)) => {
                    let sop = self.src(v)?;
                    self.define(v);
                    self.push(StInst::Mv { src: sop });
                    self.fix_writes += 1;
                    c = self.min_fix_writes(&targets, jj);
                }
                None => break,
            }
        }
        for slot in (jj + 1..=jj + c).rev() {
            self.fix_writes += 1;
            match targets.iter().find(|&&(_, d)| d == slot) {
                Some(&(v, _)) => {
                    let sop = self.src(v)?;
                    self.define(v);
                    self.push(StInst::Mv { src: sop });
                }
                None => self.push(StInst::Li { imm: 0 }),
            }
        }
        if jump {
            let at = self.out.insts.len();
            self.push(StInst::Jump { target: 0 });
            self.fixups.push((at, t));
        }
        Ok(())
    }

    fn gen_term(&mut self, from: usize, term: &Term, next: Option<usize>) -> Result<(), String> {
        match term {
            Term::Jump(t) => self.take_edge(from, *t, next == Some(*t)),
            Term::CondBr {
                cond,
                a,
                b,
                then_,
                else_,
            } => {
                if then_ == else_ {
                    return self.take_edge(from, *then_, next == Some(*then_));
                }
                let s1 = self.src(*a)?;
                let s2 = self.src(*b)?;
                let br_at = self.out.insts.len();
                self.push(StInst::Branch {
                    cond: *cond,
                    src1: s1,
                    src2: s2,
                    target: 0,
                });
                // Both edges have executed the branch slot; fork the state.
                let saved_loc = self.loc.clone();
                let saved_counter = self.counter;
                // A taken-side stub is needed unless the branch can land
                // directly on the target (single pred, or a join whose
                // layout this edge already satisfies with zero fixes).
                let then_direct = self.preds_count[*then_] == 1
                    || self.min_fix_writes(&self.layouts[*then_], 0) == 0;
                let can_ft = then_direct && next == Some(*else_);
                self.take_edge(from, *else_, can_ft)?;
                // Taken side.
                self.loc = saved_loc;
                self.counter = saved_counter;
                if then_direct {
                    // Still record the delivery / pending state.
                    let here = self.out.insts.len() as u32;
                    self.take_edge(from, *then_, true)?;
                    debug_assert_eq!(here as usize, self.out.insts.len());
                    self.fixups.push((br_at, *then_));
                } else {
                    let stub = self.out.insts.len() as u32;
                    self.take_edge(from, *then_, false)?;
                    if let StInst::Branch { target, .. } = &mut self.out.insts[br_at] {
                        *target = stub;
                    }
                }
                Ok(())
            }
            Term::Ret(v) => {
                // Epilogue: reload RA, free the frame, write the return
                // value, return. At the caller's resume point the return
                // value sits at distance 2 (retval mv, then ret).
                let retsrc = match v {
                    Some(v) => Some(self.src(*v)?),
                    None => None,
                };
                self.push(StInst::Load {
                    op: LoadOp::Ld,
                    base: StSrc::Sp,
                    offset: self.ra_off,
                });
                let ra_pos = self.counter - 1;
                self.push(StInst::SpAddi {
                    imm: self.frame_size,
                });
                if let Some(s) = retsrc {
                    // Two instructions were emitted since the source was
                    // resolved; shift the distance.
                    let s = match s {
                        StSrc::Dist(d) => {
                            let nd = d as i64 + 2;
                            if nd > MAX_DIST {
                                return Err(format!("{}: return value too far", self.f.name));
                            }
                            StSrc::Dist(nd as u8)
                        }
                        other => other,
                    };
                    self.push(StInst::Mv { src: s });
                }
                let d = self.counter - ra_pos;
                self.push(StInst::JumpReg {
                    src: StSrc::Dist(d as u8),
                });
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ir;
    use ch_baselines::straight::interp::Interpreter;
    use ch_common::op::OpClass;

    fn run(src: &str) -> u64 {
        let m = build_ir(src).expect("ir");
        let prog = compile(&m).expect("codegen");
        prog.validate().expect("valid");
        let mut cpu = Interpreter::new(prog).expect("interp");
        cpu.run(100_000_000).expect("runs").exit_value
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("fn main() -> int { return 6 * 7; }"), 42);
        assert_eq!(
            run("fn main() -> int { var a: int = 10; return a % 3; }"),
            1
        );
    }

    #[test]
    fn loops_need_relays() {
        let src = "fn main() -> int {
                var s: int = 0;
                for (var i: int = 1; i <= 10; i += 1) { s += i; }
                return s;
            }";
        assert_eq!(run(src), 55);
        let m = build_ir(src).unwrap();
        let prog = compile(&m).unwrap();
        let mvs = prog
            .insts
            .iter()
            .filter(|i| matches!(i, StInst::Mv { .. }))
            .count();
        assert!(mvs > 0, "STRAIGHT loops require relay mv instructions");
    }

    #[test]
    fn arrays_and_globals() {
        let src = "global a: int[32];
            fn main() -> int {
                for (var i: int = 0; i < 32; i += 1) { a[i] = i * 3; }
                var s: int = 0;
                for (var i: int = 0; i < 32; i += 1) { s += a[i]; }
                return s;
            }";
        assert_eq!(run(src), (0..32u64).map(|i| i * 3).sum());
    }

    #[test]
    fn calls_spill_across() {
        let src = "fn add(a: int, b: int) -> int { return a + b; }
            fn main() -> int {
                var x: int = 5;
                var y: int = add(x, 10);
                return add(x, y);
            }";
        assert_eq!(run(src), 20);
        let m = build_ir(src).unwrap();
        let prog = compile(&m).unwrap();
        let loads = prog
            .insts
            .iter()
            .filter(|i| i.class() == OpClass::Load)
            .count();
        assert!(
            loads >= 3,
            "x must be reloaded after the first call (got {loads} loads)"
        );
    }

    #[test]
    fn recursion() {
        let src = "fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> int { return fib(15); }";
        assert_eq!(run(src), 610);
    }

    #[test]
    fn floating_point() {
        let src = "fn main() -> int {
                var x: real = 1.5;
                var y: real = 2.5;
                return int(x * y * 4.0);
            }";
        assert_eq!(run(src), 15);
    }

    #[test]
    fn local_arrays() {
        let src = "fn main() -> int {
                var a: int[8];
                for (var i: int = 0; i < 8; i += 1) { a[i] = i + 1; }
                return a[0] + a[7];
            }";
        assert_eq!(run(src), 9);
    }

    #[test]
    fn long_block_triggers_max_distance_relays() {
        let mut body = String::from("var keep: int = 99;\nvar acc: int = 1;\n");
        for i in 1..200 {
            body.push_str(&format!("acc = acc + {i};\n"));
        }
        body.push_str("return keep + acc - acc;\n");
        let src = format!("fn main() -> int {{ {body} }}");
        assert_eq!(run(&src), 99);
    }

    #[test]
    fn nested_loops() {
        let src = "fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 10; i += 1) {
                    for (var j: int = 0; j < 10; j += 1) { s += i * j; }
                }
                return s;
            }";
        assert_eq!(run(src), 2025);
    }

    #[test]
    fn void_functions() {
        let src = "global g: int;
            fn bump() { g = g + 1; }
            fn main() -> int {
                bump(); bump(); bump();
                return g;
            }";
        assert_eq!(run(src), 3);
    }
}
