//! RISC backend: classic register assignment (Fig. 10, top path).
//!
//! Linear-scan allocation over conservative live intervals. The argument
//! registers `a0–a7` / `fa0–fa7` are reserved for the calling convention;
//! intervals that span a call prefer callee-saved registers, everything
//! else takes caller-saved ones. `t5`/`t6` (and `f31`) are scratch for
//! spill traffic.

use crate::ast::Ty;
use crate::cfg::{liveness, loop_info, rpo};
use crate::ir::{Function, Ins, Module, Term, VReg};
use ch_baselines::riscv::{Reg, RvInst, RvProgram};
use ch_common::exec::{AluOp, LoadOp, StoreOp};
use std::collections::HashMap;

/// Integer scratch registers (never allocated).
const SCRATCH1: Reg = Reg(30); // t5
const SCRATCH2: Reg = Reg(31); // t6
/// FP scratch register.
const FSCRATCH: Reg = Reg(63); // f31

/// Caller-saved integer pool (clobbered by calls).
const INT_CALLER: [u8; 7] = [5, 6, 7, 28, 29, 3, 4]; // t0-t4, gp, tp
/// Callee-saved integer pool.
const INT_CALLEE: [u8; 12] = [8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27]; // s0-s11
/// Caller-saved FP pool (ft0-ft7, ft8-ft10).
const FP_CALLER: [u8; 11] = [32, 33, 34, 35, 36, 37, 38, 39, 60, 61, 62];
/// Callee-saved FP pool (fs0-fs1, fs2-fs11).
const FP_CALLEE: [u8; 12] = [40, 41, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Home {
    Reg(Reg),
    /// Byte offset in the spill area (sp-relative).
    Spill(i32),
}

#[derive(Debug, Clone)]
struct Interval {
    vreg: VReg,
    start: u32,
    end: u32,
    crosses_call: bool,
    is_fp: bool,
}

/// Compiles a module to a RISC program (with a `_start` stub as entry).
///
/// # Errors
///
/// Returns a description of any unsupported construct.
pub fn compile(module: &Module) -> Result<RvProgram, String> {
    let mut prog = RvProgram::new();
    let mut fn_starts: Vec<u32> = Vec::new();
    let mut call_fixups: Vec<(usize, usize)> = Vec::new(); // (inst idx, func idx)

    // _start: call main, halt with its return value.
    prog.insts.push(RvInst::Call {
        rd: Reg::RA,
        target: 0,
    });
    call_fixups.push((0, module.main_index()));
    prog.insts.push(RvInst::Halt { rs: Reg::A0 });
    prog.labels.insert("_start".to_string(), 0);

    for f in &module.funcs {
        fn_starts.push(prog.insts.len() as u32);
        prog.labels.insert(f.name.clone(), prog.insts.len() as u32);
        compile_fn(f, module, &mut prog, &mut call_fixups)?;
    }
    for (at, func) in call_fixups {
        if let RvInst::Call { target, .. } = &mut prog.insts[at] {
            *target = fn_starts[func];
        }
    }
    prog.entry = 0;
    Ok(prog)
}

struct FnCg<'a> {
    f: &'a Function,
    homes: Vec<Home>,
    array_offsets: Vec<i32>,
    saved_regs: Vec<Reg>,
    save_ra: bool,
    out: &'a mut RvProgram,
    call_fixups: &'a mut Vec<(usize, usize)>,
    /// Branch fixups: (inst index, block id).
    br_fixups: Vec<(usize, usize)>,
    block_starts: Vec<u32>,
    epilogue_fixups: Vec<usize>,
    frame_size: i32,
}

fn compile_fn(
    f: &Function,
    module: &Module,
    out: &mut RvProgram,
    call_fixups: &mut Vec<(usize, usize)>,
) -> Result<(), String> {
    // ---- Linear numbering & conservative live intervals ----
    let order = rpo(f);
    let live = liveness(f);
    let _loops = loop_info(f);
    let mut point = 0u32;
    let mut block_range: HashMap<usize, (u32, u32)> = HashMap::new();
    let mut ranges: HashMap<VReg, (u32, u32)> = HashMap::new();
    let mut call_points: Vec<u32> = Vec::new();
    fn touch(m: &mut HashMap<VReg, (u32, u32)>, v: VReg, p: u32) {
        let e = m.entry(v).or_insert((p, p));
        e.0 = e.0.min(p);
        e.1 = e.1.max(p);
    }
    for &b in &order {
        let start = point;
        for ins in &f.blocks[b].insts {
            for s in ins.srcs() {
                touch(&mut ranges, s, point);
            }
            if let Some(d) = ins.dst() {
                touch(&mut ranges, d, point);
            }
            if matches!(ins, Ins::Call { .. }) {
                call_points.push(point);
            }
            point += 1;
        }
        for s in f.blocks[b].term.srcs() {
            touch(&mut ranges, s, point);
        }
        point += 1;
        block_range.insert(b, (start, point));
    }
    // Extend over blocks where the vreg is live at a boundary (covers
    // loop-carried values).
    for &b in &order {
        let (s, e) = block_range[&b];
        for v in live.live_in[b].iter() {
            touch(&mut ranges, v, s);
            touch(&mut ranges, v, e);
        }
        for v in live.live_out[b].iter() {
            touch(&mut ranges, v, s);
            touch(&mut ranges, v, e);
        }
    }
    // Parameters are live from the function start.
    for &p in &f.params {
        touch(&mut ranges, p, 0);
    }
    let mut intervals: Vec<Interval> = ranges
        .into_iter()
        .map(|(v, (s, e))| Interval {
            vreg: v,
            start: s,
            end: e,
            crosses_call: call_points.iter().any(|&c| s <= c && c < e),
            is_fp: f.vreg_ty[v as usize] == Ty::Real,
        })
        .collect();
    intervals.sort_by_key(|iv| (iv.start, iv.end, iv.vreg));

    // ---- Linear scan ----
    let mut homes: Vec<Home> = vec![Home::Spill(i32::MIN); f.num_vregs()];
    let mut spill_bytes: i32 = 0;
    let mut active: Vec<(u32, Reg)> = Vec::new();
    let mut free_int_caller: Vec<u8> = INT_CALLER.to_vec();
    let mut free_int_callee: Vec<u8> = INT_CALLEE.to_vec();
    let mut free_fp_caller: Vec<u8> = FP_CALLER.to_vec();
    let mut free_fp_callee: Vec<u8> = FP_CALLEE.to_vec();
    let mut used_callee: Vec<Reg> = Vec::new();
    for iv in &intervals {
        active.retain(|&(end, reg)| {
            if end < iv.start {
                let pool: &mut Vec<u8> = if reg.is_fp() {
                    if FP_CALLEE.contains(&reg.0) {
                        &mut free_fp_callee
                    } else {
                        &mut free_fp_caller
                    }
                } else if INT_CALLEE.contains(&reg.0) {
                    &mut free_int_callee
                } else {
                    &mut free_int_caller
                };
                pool.push(reg.0);
                false
            } else {
                true
            }
        });
        let reg = if iv.is_fp {
            if iv.crosses_call {
                free_fp_callee.pop()
            } else {
                free_fp_caller.pop().or_else(|| free_fp_callee.pop())
            }
        } else if iv.crosses_call {
            free_int_callee.pop()
        } else {
            free_int_caller.pop().or_else(|| free_int_callee.pop())
        };
        match reg {
            Some(r) => {
                let r = Reg(r);
                let is_callee = if r.is_fp() {
                    FP_CALLEE.contains(&r.0)
                } else {
                    INT_CALLEE.contains(&r.0)
                };
                if is_callee && !used_callee.contains(&r) {
                    used_callee.push(r);
                }
                homes[iv.vreg as usize] = Home::Reg(r);
                active.push((iv.end, r));
            }
            None => {
                homes[iv.vreg as usize] = Home::Spill(spill_bytes);
                spill_bytes += 8;
            }
        }
    }
    // Any vreg never touched (possible after DCE) gets a dummy slot.
    for h in &mut homes {
        if *h == Home::Spill(i32::MIN) {
            *h = Home::Spill(spill_bytes);
            spill_bytes += 8;
        }
    }

    // ---- Frame layout: [saved callee regs][ra][spills][arrays] ----
    let has_calls = !call_points.is_empty();
    let mut off = 8 * used_callee.len() as i32;
    let ra_off = off;
    if has_calls {
        off += 8;
    }
    let spill_base = off;
    off += spill_bytes;
    let mut array_offsets = Vec::new();
    for &sz in &f.frame_slots {
        array_offsets.push(off);
        off += (sz.div_ceil(8) * 8) as i32;
    }
    let frame_size = (off + 15) / 16 * 16;
    for h in &mut homes {
        if let Home::Spill(s) = h {
            *s += spill_base;
        }
    }

    let mut cg = FnCg {
        f,
        homes,
        array_offsets,
        saved_regs: used_callee,
        save_ra: has_calls,
        out,
        call_fixups,
        br_fixups: Vec::new(),
        block_starts: vec![0; f.blocks.len()],
        epilogue_fixups: Vec::new(),
        frame_size,
    };

    // ---- Prologue ----
    if cg.frame_size > 0 {
        cg.push(RvInst::AluImm {
            op: AluOp::Add,
            rd: Reg::SP,
            rs1: Reg::SP,
            imm: -cg.frame_size,
        });
    }
    for (i, r) in cg.saved_regs.clone().into_iter().enumerate() {
        cg.push(RvInst::Store {
            op: StoreOp::Sd,
            rs: r,
            base: Reg::SP,
            offset: 8 * i as i32,
        });
    }
    if cg.save_ra {
        cg.push(RvInst::Store {
            op: StoreOp::Sd,
            rs: Reg::RA,
            base: Reg::SP,
            offset: ra_off,
        });
    }
    // Move incoming arguments to their homes.
    let mut int_args = 0u8;
    let mut fp_args = 0u8;
    for &p in &f.params {
        let is_fp = f.vreg_ty[p as usize] == Ty::Real;
        let src = if is_fp {
            let r = Reg(42 + fp_args);
            fp_args += 1;
            r
        } else {
            let r = Reg(10 + int_args);
            int_args += 1;
            r
        };
        match cg.homes[p as usize] {
            Home::Reg(r) => {
                if r != src {
                    cg.push(RvInst::Mv { rd: r, rs: src });
                }
            }
            Home::Spill(o) => cg.push(RvInst::Store {
                op: StoreOp::Sd,
                rs: src,
                base: Reg::SP,
                offset: o,
            }),
        }
    }

    // ---- Body ----
    for (oi, &b) in order.iter().enumerate() {
        cg.block_starts[b] = cg.out.insts.len() as u32;
        for ins in &f.blocks[b].insts {
            cg.lower_ins(ins, module)?;
        }
        let next = order.get(oi + 1).copied();
        cg.lower_term(&f.blocks[b].term, next);
    }

    // ---- Epilogue ----
    let epi = cg.out.insts.len() as u32;
    for at in cg.epilogue_fixups.clone() {
        if let RvInst::Jump { target } = &mut cg.out.insts[at] {
            *target = epi;
        }
    }
    if cg.save_ra {
        cg.push(RvInst::Load {
            op: LoadOp::Ld,
            rd: Reg::RA,
            base: Reg::SP,
            offset: ra_off,
        });
    }
    for (i, r) in cg.saved_regs.clone().into_iter().enumerate() {
        cg.push(RvInst::Load {
            op: LoadOp::Ld,
            rd: r,
            base: Reg::SP,
            offset: 8 * i as i32,
        });
    }
    if cg.frame_size > 0 {
        cg.push(RvInst::AluImm {
            op: AluOp::Add,
            rd: Reg::SP,
            rs1: Reg::SP,
            imm: cg.frame_size,
        });
    }
    cg.push(RvInst::JumpReg { rs: Reg::RA });

    // ---- Branch fixups ----
    for (at, blk) in cg.br_fixups.clone() {
        let t = cg.block_starts[blk];
        match &mut cg.out.insts[at] {
            RvInst::Branch { target, .. } | RvInst::Jump { target } => *target = t,
            _ => unreachable!("fixup on non-branch"),
        }
    }
    Ok(())
}

impl<'a> FnCg<'a> {
    fn push(&mut self, i: RvInst) {
        self.out.insts.push(i);
    }

    fn is_fp(&self, v: VReg) -> bool {
        self.f.vreg_ty[v as usize] == Ty::Real
    }

    /// Materialises `v` into a register (its home, or scratch `which`
    /// after a reload).
    fn read(&mut self, v: VReg, which: u8) -> Reg {
        match self.homes[v as usize] {
            Home::Reg(r) => r,
            Home::Spill(off) => {
                let scratch = if self.is_fp(v) {
                    FSCRATCH
                } else if which == 0 {
                    SCRATCH1
                } else {
                    SCRATCH2
                };
                self.push(RvInst::Load {
                    op: LoadOp::Ld,
                    rd: scratch,
                    base: Reg::SP,
                    offset: off,
                });
                scratch
            }
        }
    }

    /// The register a result should be computed into.
    fn write_reg(&mut self, v: VReg) -> Reg {
        match self.homes[v as usize] {
            Home::Reg(r) => r,
            Home::Spill(_) => {
                if self.is_fp(v) {
                    FSCRATCH
                } else {
                    SCRATCH1
                }
            }
        }
    }

    /// Stores a scratch-computed result back to a spilled home.
    fn finish_write(&mut self, v: VReg, r: Reg) {
        if let Home::Spill(off) = self.homes[v as usize] {
            self.push(RvInst::Store {
                op: StoreOp::Sd,
                rs: r,
                base: Reg::SP,
                offset: off,
            });
        }
    }

    fn lower_ins(&mut self, ins: &Ins, module: &Module) -> Result<(), String> {
        match ins {
            Ins::Const { dst, val } => {
                let rd = self.write_reg(*dst);
                self.push(RvInst::Li { rd, imm: *val });
                self.finish_write(*dst, rd);
            }
            Ins::FConst { dst, val } => {
                let rd = self.write_reg(*dst);
                self.push(RvInst::Li {
                    rd: SCRATCH2,
                    imm: val.to_bits() as i64,
                });
                self.push(RvInst::Alu {
                    op: AluOp::Fmvdx,
                    rd,
                    rs1: SCRATCH2,
                    rs2: Reg::ZERO,
                });
                self.finish_write(*dst, rd);
            }
            Ins::GlobalAddr { dst, id } => {
                let rd = self.write_reg(*dst);
                self.push(RvInst::Li {
                    rd,
                    imm: module.globals[*id].addr as i64,
                });
                self.finish_write(*dst, rd);
            }
            Ins::FrameAddr { dst, slot } => {
                let rd = self.write_reg(*dst);
                let imm = self.array_offsets[*slot];
                self.push(RvInst::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: Reg::SP,
                    imm,
                });
                self.finish_write(*dst, rd);
            }
            Ins::Bin { op, dst, a, b } => {
                let ra = self.read(*a, 0);
                let rb = self.read(*b, 1);
                let rd = self.write_reg(*dst);
                self.push(RvInst::Alu {
                    op: *op,
                    rd,
                    rs1: ra,
                    rs2: rb,
                });
                self.finish_write(*dst, rd);
            }
            Ins::BinImm { op, dst, a, imm } => {
                let ra = self.read(*a, 0);
                let rd = self.write_reg(*dst);
                self.push(RvInst::AluImm {
                    op: *op,
                    rd,
                    rs1: ra,
                    imm: *imm,
                });
                self.finish_write(*dst, rd);
            }
            Ins::Load { op, dst, addr, off } => {
                let ra = self.read(*addr, 0);
                let rd = self.write_reg(*dst);
                self.push(RvInst::Load {
                    op: *op,
                    rd,
                    base: ra,
                    offset: *off,
                });
                self.finish_write(*dst, rd);
            }
            Ins::Store { op, val, addr, off } => {
                let rv = self.read(*val, 0);
                let ra = self.read(*addr, 1);
                self.push(RvInst::Store {
                    op: *op,
                    rs: rv,
                    base: ra,
                    offset: *off,
                });
            }
            Ins::Copy { dst, src } => {
                let rs = self.read(*src, 0);
                let rd = self.write_reg(*dst);
                if rd != rs {
                    self.push(RvInst::Mv { rd, rs });
                }
                self.finish_write(*dst, rd);
            }
            Ins::Call { dst, callee, args } => {
                let mut int_n = 0u8;
                let mut fp_n = 0u8;
                for &a in args {
                    let src = self.read(a, 0);
                    let dst_reg = if self.is_fp(a) {
                        let r = Reg(42 + fp_n);
                        fp_n += 1;
                        r
                    } else {
                        let r = Reg(10 + int_n);
                        int_n += 1;
                        r
                    };
                    if int_n > 8 || fp_n > 8 {
                        return Err("more than 8 arguments are not supported".into());
                    }
                    if src != dst_reg {
                        self.push(RvInst::Mv {
                            rd: dst_reg,
                            rs: src,
                        });
                    }
                }
                let at = self.out.insts.len();
                self.push(RvInst::Call {
                    rd: Reg::RA,
                    target: 0,
                });
                self.call_fixups.push((at, *callee));
                if let Some(d) = dst {
                    let ret = if self.is_fp(*d) { Reg(42) } else { Reg::A0 };
                    let rd = self.write_reg(*d);
                    if rd != ret {
                        self.push(RvInst::Mv { rd, rs: ret });
                    }
                    self.finish_write(*d, rd);
                }
            }
        }
        Ok(())
    }

    fn lower_term(&mut self, term: &Term, next: Option<usize>) {
        match term {
            Term::Jump(t) => {
                if next != Some(*t) {
                    let at = self.out.insts.len();
                    self.push(RvInst::Jump { target: 0 });
                    self.br_fixups.push((at, *t));
                }
            }
            Term::CondBr {
                cond,
                a,
                b,
                then_,
                else_,
            } => {
                let ra = self.read(*a, 0);
                let rb = self.read(*b, 1);
                if next == Some(*then_) {
                    let at = self.out.insts.len();
                    self.push(RvInst::Branch {
                        cond: cond.negate(),
                        rs1: ra,
                        rs2: rb,
                        target: 0,
                    });
                    self.br_fixups.push((at, *else_));
                } else {
                    let at = self.out.insts.len();
                    self.push(RvInst::Branch {
                        cond: *cond,
                        rs1: ra,
                        rs2: rb,
                        target: 0,
                    });
                    self.br_fixups.push((at, *then_));
                    if next != Some(*else_) {
                        let at = self.out.insts.len();
                        self.push(RvInst::Jump { target: 0 });
                        self.br_fixups.push((at, *else_));
                    }
                }
            }
            Term::Ret(v) => {
                if let Some(v) = v {
                    let src = self.read(*v, 0);
                    let ret = if self.is_fp(*v) { Reg(42) } else { Reg::A0 };
                    if src != ret {
                        self.push(RvInst::Mv { rd: ret, rs: src });
                    }
                }
                let at = self.out.insts.len();
                self.push(RvInst::Jump { target: 0 });
                self.epilogue_fixups.push(at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ir;
    use ch_baselines::riscv::interp::Interpreter;

    fn run(src: &str) -> u64 {
        let m = build_ir(src).expect("ir");
        let prog = compile(&m).expect("codegen");
        prog.validate().expect("valid");
        let mut cpu = Interpreter::new(prog).expect("interp");
        cpu.run(50_000_000).expect("runs").exit_value
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("fn main() -> int { return 6 * 7; }"), 42);
        assert_eq!(
            run("fn main() -> int { var a: int = 10; return a % 3; }"),
            1
        );
    }

    #[test]
    fn loops_and_arrays() {
        let src = "global a: int[64];
            fn main() -> int {
                for (var i: int = 0; i < 64; i += 1) { a[i] = i * i; }
                var s: int = 0;
                for (var i: int = 0; i < 64; i += 1) { s += a[i]; }
                return s;
            }";
        assert_eq!(run(src), (0..64u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn calls_with_saved_values() {
        let src = "fn add(a: int, b: int) -> int { return a + b; }
            fn main() -> int {
                var x: int = 5;
                var y: int = add(x, 10);
                return add(x, y); // x must survive the first call
            }";
        assert_eq!(run(src), 20);
    }

    #[test]
    fn recursion() {
        let src = "fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> int { return fib(15); }";
        assert_eq!(run(src), 610);
    }

    #[test]
    fn floating_point() {
        let src = "fn main() -> int {
                var x: real = 1.5;
                var y: real = 2.5;
                var z: real = x * y + 0.25;
                return int(z * 4.0);
            }";
        assert_eq!(run(src), 16);
    }

    #[test]
    fn local_arrays_on_stack() {
        let src = "fn sum3(p: int) -> int { return p[0] + p[1] + p[2]; }
            fn main() -> int {
                var a: int[3];
                a[0] = 7; a[1] = 8; a[2] = 9;
                return sum3(a);
            }";
        assert_eq!(run(src), 24);
    }

    #[test]
    fn byte_buffers() {
        let src = "global buf: byte[16];
            fn main() -> int {
                buf[0] = 250;
                buf[1] = buf[0] + 10; // stored back into a byte: wraps to 4
                return buf[1];
            }";
        assert_eq!(run(src), 4);
    }

    #[test]
    fn register_pressure_spills() {
        let mut decls = String::new();
        let mut sum = String::new();
        for i in 0..40 {
            decls.push_str(&format!("var v{i}: int = {i};\n"));
            sum.push_str(&format!("+ v{i} "));
        }
        // Keep everything live across a call to force callee-saved use
        // and spills.
        let src = format!(
            "fn id(x: int) -> int {{ return x; }}
             fn main() -> int {{ {decls} var c: int = id(1); return 0 {sum} + c; }}"
        );
        assert_eq!(run(&src), (0..40u64).sum::<u64>() + 1);
    }
}
