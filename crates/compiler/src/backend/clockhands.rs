//! Clockhands backend: hand assignment + per-hand distance fixing
//! (Section 6 of the paper).
//!
//! Hand assignment (Section 6.2):
//! * **s** — the calling convention's hand: return address, arguments,
//!   SP, and return values. No general values live here; between calls
//!   the frame invariant is simply "SP is `s[0]`".
//! * **v** — loop constants: single-definition values defined in the
//!   entry block, ranked by loop-depth-weighted use count. They are
//!   *never relayed*: nothing inside a loop writes `v`, so their
//!   distance is frozen — this removes STRAIGHT's mv-LoopConstant
//!   relays. Per the convention the top 8 `v` registers are callee-saved
//!   (functions save and re-write the caller's `v[0..k-1]`).
//! * **t** — block-local temporaries (most writes, Fig. 16).
//! * **u** — everything longer-lived; relayed on CFG edges like
//!   STRAIGHT, but only counting `u` writes, so far fewer relays.
//!
//! Because jumps and branches have no dst-hand, edges need no `nop`
//! adjustment (Section 3.3(3)), and because each hand rotates
//! independently, a block's live values cost relays only in their own
//! hand.

use super::opt::{long_lived_locals, schedule_function, select_loop_constants, OptConfig};
use crate::cfg::{liveness, loop_info, rpo, BitSet};
use crate::ir::{Function, Ins, Module, Term, VReg};
use ch_common::exec::{AluOp, LoadOp, StoreOp};
use clockhands::hand::Hand;
use clockhands::inst::{Inst as ChInst, Src};
use clockhands::program::Program;
use std::collections::{HashMap, HashSet};

/// Per-hand in-block relay threshold (the hard limit is
/// [`Hand::max_src_distance`]: 15 on t/u/v, 14 on `s`).
const RELAY_AT: i64 = 12;
/// Maximum encodable distance on t/u/v, from the shared ISA definition.
const MAX_DIST: i64 = Hand::T.max_src_distance() as i64;

/// Compiles a module to a Clockhands program (with a `_start` stub)
/// using the process-wide optimization configuration.
///
/// # Errors
///
/// Returns a description of any unsatisfiable constraint.
pub fn compile(module: &Module) -> Result<Program, String> {
    compile_with(module, &OptConfig::current())
}

/// Compiles a module with an explicit optimization configuration
/// (`OptConfig::none()` reproduces the conservative pre-optimization
/// backend, for A/B measurement and differential testing).
///
/// # Errors
///
/// Returns a description of any unsatisfiable constraint.
pub fn compile_with(module: &Module, opt: &OptConfig) -> Result<Program, String> {
    let mut prog = Program::new();
    let mut call_fixups: Vec<(usize, usize)> = Vec::new();
    let mut fn_starts: Vec<u32> = Vec::new();

    // _start: call main (return address to s), halt with s[1] (= the
    // return value; s[0] is the restored SP).
    prog.insts.push(ChInst::Call {
        dst: Hand::S,
        target: 0,
    });
    call_fixups.push((0, module.main_index()));
    prog.insts.push(ChInst::Halt {
        src: Src::Hand(Hand::S, 1),
    });
    prog.labels.insert("_start".to_string(), 0);

    for f in &module.funcs {
        fn_starts.push(prog.insts.len() as u32);
        prog.labels.insert(f.name.clone(), prog.insts.len() as u32);
        // Per-function variant selection: distance-aware scheduling and
        // cost-based join anchoring are each accepted only when they
        // strictly shrink the emitted code (fewer relays, reloads, or
        // edge fixes). Neither heuristic has a reliable global view —
        // the scheduler can't see join layouts and the anchor cost
        // estimate is one-pass stale inside loops — so their results
        // are measured, not trusted. Ties keep the earlier (more
        // conservative) variant.
        let scheduled;
        let mut cands: Vec<(&Function, bool)> = vec![(f, false)];
        if opt.min_relays {
            cands.push((f, true));
        }
        if opt.schedule {
            scheduled = schedule_function(f);
            cands.push((&scheduled, false));
            if opt.min_relays {
                cands.push((&scheduled, true));
            }
        }
        let (mut f, mut anchor) = cands[0];
        if cands.len() > 1 {
            let emitted = |func: &Function, ca: bool| -> Option<usize> {
                let mut tmp = Program::new();
                let mut fx = Vec::new();
                let mut cg = FnCg::new(func, module, &mut tmp, &mut fx, opt, ca);
                cg.converge_fillers = false;
                cg.run().ok().map(|()| tmp.insts.len())
            };
            let mut best: Option<usize> = None;
            for &(func, ca) in &cands {
                let n = emitted(func, ca);
                if std::env::var("CH_VARIANT_DEBUG").is_ok() {
                    eprintln!("VARIANT {} anchor={} emitted={:?}", func.name, ca, n);
                }
                if let Some(n) = n {
                    if best.map(|b| n < b).unwrap_or(true) {
                        best = Some(n);
                        f = func;
                        anchor = ca;
                    }
                }
            }
        }
        FnCg::new(f, module, &mut prog, &mut call_fixups, opt, anchor).run()?;
    }
    for (at, func) in call_fixups {
        if let ChInst::Call { target, .. } = &mut prog.insts[at] {
            *target = fn_starts[func];
        }
    }
    prog.entry = 0;
    Ok(prog)
}

/// A value's current location: its hand and the hand-local write index.
#[derive(Debug, Clone, Copy)]
struct Loc {
    hand: Hand,
    pos: i64,
}

/// Snapshot of the codegen path state handed to a single-predecessor
/// successor: live-value locations, per-hand write counters, SP position.
type PathState = (HashMap<VReg, Loc>, [i64; 4], i64);
/// One natural delivery along an incoming edge: (source block, source
/// loop depth, vreg -> distance at the join).
type Delivery = (usize, u32, HashMap<VReg, i64>);
/// Chosen entry layout at a join: per hand (t, u), (vreg, distance).
type JoinLayout = [Vec<(VReg, i64)>; 2];

struct FnCg<'a> {
    f: &'a Function,
    module: &'a Module,
    out: &'a mut Program,
    call_fixups: &'a mut Vec<(usize, usize)>,
    /// Assigned hand per vreg.
    assign: Vec<Hand>,
    /// Current location of live vregs.
    loc: HashMap<VReg, Loc>,
    /// Per-hand write counters along the current path (by hand index).
    counters: [i64; 4],
    /// Position of the stack pointer within the s hand.
    sp_pos: i64,
    zero_vregs: BitSet,
    /// v-assigned vregs (never relayed; defined in the entry block).
    v_set: BitSet,
    /// Number of own v writes.
    v_count: usize,
    /// Convention window slots restored at every return (8 whenever this
    /// function writes v at all, else 0).
    v_restore_count: usize,
    /// The subset of restored slots that must go through the stack; the
    /// rest are re-established from deeper ring positions (clobber-only
    /// saves — see `gen_entry_prologue`).
    v_stack_saved: Vec<usize>,
    /// Optimization toggles.
    opt: OptConfig,
    spill_off: HashMap<VReg, i32>,
    /// Stack-resident vregs (demoted when a hand's live-in set exceeds
    /// its capacity): loaded on use, stored through on definition.
    stack_set: BitSet,
    frame_size: i32,
    ra_off: i32,
    vsave_off: i32,
    array_offsets: Vec<i32>,
    block_starts: Vec<u32>,
    fixups: Vec<(usize, usize)>,
    /// Canonical per-hand live-in orders per block: (t list, u list).
    entry_order: Vec<(Vec<VReg>, Vec<VReg>)>,
    live_out: Vec<BitSet>,
    /// Predecessor counts (single-pred blocks inherit state, no relays).
    preds_count: Vec<usize>,
    /// Saved path state for single-predecessor successors.
    pending: HashMap<usize, PathState>,
    /// Chosen entry layout per join.
    layouts: Vec<JoinLayout>,
    /// Natural deliveries per block, one entry per incoming edge taken
    /// this pass.
    deliveries: Vec<Vec<Delivery>>,
    /// Loop depth per block.
    depth: Vec<u32>,
    /// Fix-up writes emitted this pass.
    fix_writes: u64,
    /// Filler (`li 0`) writes emitted this pass: never-read pads over
    /// holes in a join layout, the W-REDUNDANT-FIX lint population.
    filler_writes: u64,
    /// Values banned from natural status, per (join block, hand). When
    /// an edge pads the hole under a natural with a filler, the natural
    /// is demoted to a relay on every later pass — the relay group is
    /// contiguous from distance 0, so the hole (and its filler) is gone.
    /// Monotone, which is what lets the pass loop converge to zero
    /// fillers: every padding pass bans at least one new value.
    hole_banned: Vec<[HashSet<VReg>; 2]>,
    /// Record bans only once the ordinary layout fixpoint has settled
    /// (pass ≥ 3). Earlier passes emit transient fillers that the
    /// fixpoint removes on its own; reacting to those would perturb
    /// joins that end up clean anyway.
    ban_fillers: bool,
    /// Run the filler-convergence tail at all. Off during variant
    /// measurement (`compile_with`'s candidate ranking), so candidate
    /// sizes — and therefore which variant wins — are judged exactly as
    /// before; the tail then runs only on the winner's real emission,
    /// keeping its blast radius to the joins that actually pad.
    converge_fillers: bool,
    /// Joins that gained a ban in the current pass. During the tail,
    /// `update_layouts` rebuilds only these — every other join keeps
    /// its settled layout verbatim, so the tail repairs padding joins
    /// without re-running the global layout optimization (which would
    /// reshape code far from any filler).
    ban_dirty: HashSet<usize>,
    /// Previous pass's deliveries keyed by source block (drift detection:
    /// a value is only a stable natural if two consecutive passes deliver
    /// it identically from the same predecessor).
    deliveries_prev: Vec<HashMap<usize, HashMap<VReg, i64>>>,
    /// Select join anchors by total estimated fix cost instead of
    /// first arrival (see [`FnCg::update_layouts`]). The estimate is
    /// local and one-pass stale — in loop nests it can mispredict and
    /// produce *worse* code — so `compile_with` measures both variants
    /// and keeps this one only when it strictly shrinks the function.
    cost_anchor: bool,
}

impl<'a> FnCg<'a> {
    fn new(
        f: &'a Function,
        module: &'a Module,
        out: &'a mut Program,
        call_fixups: &'a mut Vec<(usize, usize)>,
        opt: &OptConfig,
        cost_anchor: bool,
    ) -> Self {
        let live = liveness(f);
        let loops = loop_info(f);

        // ---- Zero-constant vregs ----
        let mut defs: HashMap<VReg, u32> = HashMap::new();
        let mut def_block: HashMap<VReg, usize> = HashMap::new();
        let mut zeroes: Vec<VReg> = Vec::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            for ins in &b.insts {
                if let Some(d) = ins.dst() {
                    *defs.entry(d).or_default() += 1;
                    def_block.insert(d, bi);
                    if matches!(ins, Ins::Const { val: 0, .. }) {
                        zeroes.push(d);
                    }
                }
            }
        }
        let mut zero_vregs = BitSet::new(f.num_vregs());
        for z in zeroes {
            if defs[&z] == 1 {
                zero_vregs.insert(z);
            }
        }

        // ---- Hand assignment ----
        let has_calls = f
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Ins::Call { .. })));
        // With calls only the 8 callee-saved v registers are reliable.
        let v_budget = if has_calls { 8 } else { 15 };
        let mut benefit: HashMap<VReg, u64> = HashMap::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            let w = 1 + 100 * loops.depth[bi] as u64;
            for ins in &b.insts {
                for s in ins.srcs() {
                    if bi != 0 {
                        *benefit.entry(s).or_default() += w;
                    }
                }
            }
            for s in b.term.srcs() {
                if bi != 0 {
                    *benefit.entry(s).or_default() += w;
                }
            }
        }
        let is_param = |v: VReg| f.params.contains(&v);
        let v_candidates: Vec<(u64, VReg)> = benefit
            .iter()
            .filter(|(&v, _)| {
                if zero_vregs.contains(v) {
                    return false;
                }
                let single_entry_def = defs.get(&v) == Some(&1) && def_block.get(&v) == Some(&0);
                let pristine_param = is_param(v) && !defs.contains_key(&v);
                single_entry_def || pristine_param
            })
            .map(|(&v, &b)| (b, v))
            .collect();
        // Greedy weighted MIS over loop bodies (the paper's scheme):
        // candidates in decreasing benefit order, kept while the v
        // window's per-loop and global capacity holds.
        let chosen = select_loop_constants(f, &loops, &v_candidates, v_budget);
        let mut v_set = BitSet::new(f.num_vregs());
        for &v in &chosen {
            v_set.insert(v);
        }
        let v_count = chosen.len();

        // t vs u (Section 4.3): short-lived results go to t, the rest to
        // u. Cross-block values are long-lived by definition. Block-local
        // values go to u when their def-use span exceeds what the t ring
        // can hold: measured in actual t writes when the lifetime split
        // is enabled, approximated by raw instruction span otherwise.
        let mut crosses = BitSet::new(f.num_vregs());
        for b in 0..f.blocks.len() {
            crosses.union_with(&live.live_in[b]);
            crosses.union_with(&live.live_out[b]);
        }
        const SPAN_LIMIT: usize = 10;
        let long_span = if opt.lifetime_split {
            let is_t_local =
                |v: VReg| !crosses.contains(v) && !zero_vregs.contains(v) && !v_set.contains(v);
            long_lived_locals(f, SPAN_LIMIT, &is_t_local)
        } else {
            let mut long_span = BitSet::new(f.num_vregs());
            for b in &f.blocks {
                let mut first_def: HashMap<VReg, usize> = HashMap::new();
                for (i, ins) in b.insts.iter().enumerate() {
                    for src in ins.srcs() {
                        if let Some(&d) = first_def.get(&src) {
                            if i - d > SPAN_LIMIT {
                                long_span.insert(src);
                            }
                        }
                    }
                    if let Some(d) = ins.dst() {
                        first_def.entry(d).or_insert(i);
                    }
                }
                for src in b.term.srcs() {
                    if let Some(&d) = first_def.get(&src) {
                        if b.insts.len() - d > SPAN_LIMIT {
                            long_span.insert(src);
                        }
                    }
                }
            }
            long_span
        };
        let mut assign = vec![Hand::T; f.num_vregs()];
        for v in 0..f.num_vregs() as u32 {
            assign[v as usize] = if v_set.contains(v) {
                Hand::V
            } else if crosses.contains(v) || long_span.contains(v) {
                Hand::U
            } else {
                Hand::T
            };
        }

        // Canonical edge orders: t and u live-ins ascending; v and zero
        // vregs are never relayed.
        let entry_order: Vec<(Vec<VReg>, Vec<VReg>)> = live
            .live_in
            .iter()
            .map(|s| {
                let mut t = Vec::new();
                let mut u = Vec::new();
                for v in s.iter() {
                    if zero_vregs.contains(v) || v_set.contains(v) {
                        continue;
                    }
                    match assign[v as usize] {
                        Hand::T => t.push(v),
                        Hand::U => u.push(v),
                        _ => {}
                    }
                }
                (t, u)
            })
            .collect();

        // ---- Capacity: demote low-benefit values to the stack when a
        // block's u live-ins exceed what edge relays can rotate (7 of the
        // 16 u registers, leaving headroom for the relay sequence). ----
        let mut full_benefit: HashMap<VReg, u64> = HashMap::new();
        for (bi, b) in f.blocks.iter().enumerate() {
            let w = 1 + 100 * loops.depth[bi] as u64;
            for ins in &b.insts {
                for src in ins.srcs() {
                    *full_benefit.entry(src).or_default() += w;
                }
            }
        }
        let mut entry_order = entry_order;
        let mut stack_set = BitSet::new(f.num_vregs());
        const EDGE_CAP: usize = 7;
        loop {
            let mut victim: Option<VReg> = None;
            for (_, u) in &entry_order {
                if u.len() > EDGE_CAP {
                    victim = u
                        .iter()
                        .copied()
                        .min_by_key(|v| full_benefit.get(v).copied().unwrap_or(0));
                    break;
                }
            }
            match victim {
                Some(v) => {
                    stack_set.insert(v);
                    for (_, u) in &mut entry_order {
                        u.retain(|&x| x != v);
                    }
                }
                None => break,
            }
        }

        // Callee-save plan for the v window: every return re-establishes
        // the caller's v[0..8) (whenever this function writes v at all,
        // its own writes shift all eight). With clobber-only saves, the
        // caller values still reachable in the ring at the epilogue are
        // restored by relays and only the rest go through the stack:
        //  * leaf with v_count <= 8: restoring v[j] (j = 7 down to 0)
        //    reads ring distance v_count + 7 <= 15 — nothing stacked;
        //  * with calls: an inner call preserves only the top-8 window,
        //    so the v_count deepest caller values fall out — stack those;
        //  * v_count > 8 (leaf-only; the call budget is 8): ring
        //    restores would read past the window — stack all eight.
        let v_restore_count = if v_count > 0 { 8 } else { 0 };
        let v_stack_saved: Vec<usize> = if v_count == 0 {
            Vec::new()
        } else if !opt.lean_saves || v_count > 8 {
            (0..8).collect()
        } else if has_calls {
            (8 - v_count..8).collect()
        } else {
            Vec::new()
        };

        FnCg {
            f,
            module,
            out,
            call_fixups,
            assign,
            loc: HashMap::new(),
            counters: [0; 4],
            sp_pos: -1,
            zero_vregs,
            v_set,
            v_count,
            v_restore_count,
            v_stack_saved,
            opt: *opt,
            spill_off: HashMap::new(),
            stack_set,
            frame_size: 0,
            ra_off: 0,
            vsave_off: 0,
            array_offsets: Vec::new(),
            block_starts: vec![0; f.blocks.len()],
            fixups: Vec::new(),
            entry_order,
            live_out: live.live_out,
            preds_count: f.predecessors().iter().map(|p| p.len()).collect(),
            pending: HashMap::new(),
            layouts: Vec::new(),
            deliveries: Vec::new(),
            depth: loops.depth.clone(),
            fix_writes: 0,
            filler_writes: 0,
            hole_banned: vec![[HashSet::new(), HashSet::new()]; f.blocks.len()],
            ban_fillers: false,
            converge_fillers: true,
            ban_dirty: HashSet::new(),
            deliveries_prev: Vec::new(),
            cost_anchor,
        }
    }

    /// Pushes an instruction, advancing its destination hand's counter.
    fn push(&mut self, i: ChInst) {
        if let Some(h) = i.dst() {
            self.counters[h.index()] += 1;
        }
        self.out.insts.push(i);
    }

    /// Records that the next write to `hand` defines vreg `v` (call just
    /// before pushing the defining instruction).
    fn define(&mut self, v: VReg, hand: Hand) {
        self.loc.insert(
            v,
            Loc {
                hand,
                pos: self.counters[hand.index()],
            },
        );
    }

    fn dist_of(&self, l: Loc) -> i64 {
        self.counters[l.hand.index()] - 1 - l.pos
    }

    /// Reads vreg `v` as a source operand.
    fn src(&self, v: VReg) -> Result<Src, String> {
        if self.zero_vregs.contains(v) {
            return Ok(Src::Zero);
        }
        let l = self
            .loc
            .get(&v)
            .ok_or_else(|| format!("{}: v{v} has no location", self.f.name))?;
        let d = self.dist_of(*l);
        let limit = l.hand.max_src_distance() as i64;
        if !(0..=limit).contains(&d) {
            return Err(format!("{}: v{v} at {}-distance {d}", self.f.name, l.hand));
        }
        Ok(Src::Hand(l.hand, d as u8))
    }

    /// Reads the stack pointer.
    fn sp_src(&self) -> Result<Src, String> {
        let d = self.counters[Hand::S.index()] - 1 - self.sp_pos;
        if !(0..=Hand::S.max_src_distance() as i64).contains(&d) {
            return Err(format!("{}: SP at s-distance {d}", self.f.name));
        }
        Ok(Src::Hand(Hand::S, d as u8))
    }

    /// Reloads a stack-resident vreg if it has no valid register
    /// position, so a following read succeeds.
    fn ensure_loaded(&mut self, v: VReg) -> Result<(), String> {
        if !self.stack_set.contains(v) || self.zero_vregs.contains(v) {
            return Ok(());
        }
        if let Some(&l) = self.loc.get(&v) {
            // Two writes of slack below the hand's hard limit, so the
            // reload itself plus one interleaved write cannot push the
            // value out of range before the read.
            let limit = l.hand.max_src_distance() as i64 - 2;
            if self.dist_of(l) <= limit {
                return Ok(());
            }
        }
        let off = *self
            .spill_off
            .get(&v)
            .ok_or_else(|| format!("{}: v{v} has no stack slot", self.f.name))?;
        let h = self.assign[v as usize];
        let sp = self.sp_src()?;
        self.define(v, h);
        self.push(ChInst::Load {
            op: LoadOp::Ld,
            dst: h,
            base: sp,
            offset: off,
        });
        Ok(())
    }

    /// Stores a just-defined stack-resident vreg through to its slot.
    fn write_through(&mut self, v: VReg) -> Result<(), String> {
        if !self.stack_set.contains(v) || self.zero_vregs.contains(v) {
            return Ok(());
        }
        let off = self.spill_off[&v];
        let val = self.src(v)?;
        let sp = self.sp_src()?;
        self.push(ChInst::Store {
            op: StoreOp::Sd,
            value: val,
            base: sp,
            offset: off,
        });
        Ok(())
    }

    /// Relays still-needed t/u values whose distance reached `threshold`.
    /// v values are never relayed — that is the point of the v hand.
    fn relay_over(&mut self, threshold: i64, keep: &dyn Fn(VReg) -> bool) -> Result<(), String> {
        for _guard in 0..256 {
            // Deterministic choice: deepest value first, vreg id ties.
            let mut victim: Option<(i64, VReg, Hand)> = None;
            for (&v, &l) in &self.loc {
                if self.zero_vregs.contains(v)
                    || matches!(l.hand, Hand::V | Hand::S)
                    || self.stack_set.contains(v)
                {
                    continue;
                }
                let d = self.dist_of(l);
                if keep(v)
                    && d >= threshold
                    && victim.map(|(bd, bv, _)| (d, v) > (bd, bv)).unwrap_or(true)
                {
                    victim = Some((d, v, l.hand));
                }
            }
            let victim = victim.map(|(_, v, h)| (v, h));
            match victim {
                Some((v, hand)) => {
                    let s = self.src(v)?;
                    self.define(v, hand);
                    self.push(ChInst::Mv { dst: hand, src: s });
                }
                None => return Ok(()),
            }
        }
        Err(format!("{}: relay pressure too high", self.f.name))
    }

    fn run(mut self) -> Result<(), String> {
        // ---- Frame layout: [ra][v-saves][call spills][arrays] ----
        let mut needs_spill = BitSet::new(self.f.num_vregs());
        for (b, blk) in self.f.blocks.iter().enumerate() {
            for (i, ins) in blk.insts.iter().enumerate() {
                if let Ins::Call { dst, .. } = ins {
                    let mut after = self.live_out[b].clone();
                    for later in &blk.insts[i + 1..] {
                        for s in later.srcs() {
                            after.insert(s);
                        }
                    }
                    for s in blk.term.srcs() {
                        after.insert(s);
                    }
                    if let Some(d) = dst {
                        after.remove(*d);
                    }
                    needs_spill.union_with(&after);
                }
            }
        }
        self.ra_off = 0;
        let mut off = 8i32;
        self.vsave_off = off;
        off += 8 * self.v_stack_saved.len() as i32;
        needs_spill.union_with(&self.stack_set);
        for v in needs_spill.iter() {
            if self.zero_vregs.contains(v) || self.v_set.contains(v) {
                continue;
            }
            self.spill_off.insert(v, off);
            off += 8;
        }
        for &sz in &self.f.frame_slots {
            self.array_offsets.push(off);
            off += (sz.div_ceil(8) * 8) as i32;
        }
        self.frame_size = (off + 15) / 16 * 16;

        // Initial layouts: canonical per-hand (deepest first, distances
        // k-1 .. 0 — in Clockhands the edge jump writes no hand, so the
        // last relayed value sits at distance 0).
        self.layouts = self
            .entry_order
            .iter()
            .map(|(t, u)| {
                let mk = |o: &Vec<VReg>| {
                    let k = o.len() as i64;
                    o.iter()
                        .enumerate()
                        .map(|(j, &v)| (v, k - 1 - j as i64))
                        .collect()
                };
                [mk(t), mk(u)]
            })
            .collect();

        // Iterated distance fixing (Section 6.1): probe the natural
        // positions each edge delivers, let joins adopt the hottest
        // edge's layout, re-emit.
        let fn_start = self.out.insts.len();
        let cf_start = self.call_fixups.len();
        self.deliveries_prev = vec![HashMap::new(); self.f.blocks.len()];
        // Up to 4 passes reach the layout fixpoint; beyond that, extra
        // passes run only while joins still pad layout holes with
        // never-read fillers — each such pass bans at least one natural
        // (see `hole_banned`), so the tail is finite and short. The hard
        // cap is a safety net, not a tuning knob.
        for pass in 0..32 {
            self.out.insts.truncate(fn_start);
            self.call_fixups.truncate(cf_start);
            self.fixups.clear();
            self.pending.clear();
            self.deliveries = vec![Vec::new(); self.f.blocks.len()];
            self.fix_writes = 0;
            self.filler_writes = 0;
            self.ban_fillers = self.converge_fillers && pass >= 3;
            self.ban_dirty.clear();
            let order = rpo(self.f);
            for (oi, &b) in order.iter().enumerate() {
                let next = order.get(oi + 1).copied();
                self.gen_block(b, oi == 0, next)?;
            }
            let last_pass = if self.converge_fillers { 31 } else { 3 };
            if self.fix_writes == 0 || (pass >= 3 && self.filler_writes == 0) || pass == last_pass {
                break;
            }
            self.update_layouts();
            self.deliveries_prev = self
                .deliveries
                .iter()
                .map(|ds| ds.iter().map(|(f, _, n)| (*f, n.clone())).collect())
                .collect();
        }
        for (at, blk) in std::mem::take(&mut self.fixups) {
            let t = self.block_starts[blk];
            match &mut self.out.insts[at] {
                ChInst::Branch { target, .. } | ChInst::Jump { target } => *target = t,
                _ => unreachable!("fixup on non-branch"),
            }
        }
        Ok(())
    }

    /// Adopts a natural delivery as each join's entry layout;
    /// undeliverable values fall back to explicit relay slots.
    ///
    /// Anchor selection: candidates are the edges at the deepest loop
    /// level (the hot path must pay zero fixes). With `cost_anchor`
    /// on, the candidate whose implied layout minimizes the *total*
    /// estimated fix writes across every recorded edge wins — a
    /// first-arrival anchor can pin values at distances with holes
    /// beneath them (its own dead interleaved writes), which every
    /// other edge then pads with never-read fillers. Without it, the
    /// first deepest edge wins (first-arrival, the conservative
    /// behavior; see the `cost_anchor` field for why both exist).
    fn update_layouts(&mut self) {
        const LIMIT: i64 = 12;
        for b in 0..self.f.blocks.len() {
            // During the filler-convergence tail the layouts are settled;
            // only joins that just gained a ban are rebuilt, so the tail
            // cannot restructure code away from the padding joins.
            if self.ban_fillers && !self.ban_dirty.contains(&b) {
                continue;
            }
            let cands = self.deliveries[b].clone();
            if cands.is_empty() {
                continue;
            }
            let hottest = cands.iter().map(|&(_, d, _)| d).max().unwrap();
            let prev = self.deliveries_prev[b].clone();
            let banned = self.hole_banned[b].clone();
            let (t_order, u_order) = self.entry_order[b].clone();
            let build = |from: usize, nat: &HashMap<VReg, i64>| -> [Vec<(VReg, i64)>; 2] {
                let stable = |v: VReg, d: i64| -> bool {
                    match prev.get(&from) {
                        Some(p) => p.get(&v) == Some(&d),
                        None => true, // first update: optimistic
                    }
                };
                let mut new_layout: [Vec<(VReg, i64)>; 2] = [Vec::new(), Vec::new()];
                for (hi, order) in [&t_order, &u_order].into_iter().enumerate() {
                    let mut used: std::collections::HashSet<i64> = std::collections::HashSet::new();
                    let mut naturals: Vec<(VReg, i64)> = Vec::new();
                    let mut relays: Vec<VReg> = Vec::new();
                    for &v in order {
                        match nat.get(&v) {
                            Some(&d)
                                if (0..=LIMIT).contains(&d)
                                    && stable(v, d)
                                    && !banned[hi].contains(&v)
                                    && used.insert(d) =>
                            {
                                naturals.push((v, d));
                            }
                            _ => relays.push(v),
                        }
                    }
                    // Steady state: the relay group (r values) is re-emitted
                    // on every edge, shifting unemitted naturals by r —
                    // relays sit at 0..r-1, naturals at observed + r.
                    loop {
                        let r = relays.len() as i64;
                        match naturals.iter().position(|&(_, d)| d + r > LIMIT) {
                            Some(i) => relays.push(naturals.remove(i).0),
                            None => break,
                        }
                    }
                    let r = relays.len() as i64;
                    new_layout[hi] = naturals.into_iter().map(|(v, d)| (v, d + r)).collect();
                    for (i, v) in relays.into_iter().enumerate() {
                        new_layout[hi].push((v, i as i64));
                    }
                }
                new_layout
            };
            let mut best: Option<(i64, JoinLayout)> = None;
            for &(from, d, ref nat) in &cands {
                if d != hottest {
                    continue;
                }
                let layout = build(from, nat);
                if !self.cost_anchor {
                    best = Some((0, layout));
                    break; // first-arrival anchor
                }
                let cost: i64 = cands
                    .iter()
                    .map(|(_, _, np)| {
                        est_fix_writes(&layout[0], np) + est_fix_writes(&layout[1], np)
                    })
                    .sum();
                if best.as_ref().map(|&(bc, _)| cost < bc).unwrap_or(true) {
                    best = Some((cost, layout));
                }
            }
            self.layouts[b] = best.unwrap().1;
        }
    }

    /// Minimal fix writes per hand so every layout target lands at its
    /// distance: emitted fixes occupy distances `0..c` (jumps write no
    /// hand), an unemitted value drifts to `current + c`.
    fn min_fix_writes(&self, targets: &[(VReg, i64)]) -> i64 {
        est_fix_writes_with(targets, &|v| self.loc.get(&v).map(|&l| self.dist_of(l)))
    }

    /// Entry state for a non-entry block: each hand's live-ins sit at
    /// distances `k_h - 1 - j` (the edge emitted `k_h` relays in that
    /// hand; jumps write no hand, so nothing shifts afterwards). v values
    /// keep their frozen positions.
    fn block_entry_state(&mut self, b: usize, v_positions: &HashMap<VReg, i64>) {
        self.loc.clear();
        self.counters = [0; 4];
        for (&v, &pos) in v_positions {
            self.loc.insert(v, Loc { hand: Hand::V, pos });
        }
        self.counters[Hand::V.index()] = self.v_count as i64;
        // SP is s[0] at every block boundary.
        self.counters[Hand::S.index()] = 1;
        self.sp_pos = 0;
        for (hi, hand) in [(0, Hand::T), (1, Hand::U)] {
            for (v, d) in self.layouts[b][hi].clone() {
                // distance d at entry (counter 0): pos = -1 - d.
                self.loc.insert(v, Loc { hand, pos: -1 - d });
            }
        }
    }

    fn gen_block(&mut self, b: usize, is_entry: bool, next: Option<usize>) -> Result<(), String> {
        self.block_starts[b] = self.out.insts.len() as u32;

        // v positions are global to the function (frozen after entry).
        let v_positions: HashMap<VReg, i64> = self
            .loc
            .iter()
            .filter(|(_, l)| l.hand == Hand::V)
            .map(|(&v, l)| (v, l.pos))
            .collect();

        if is_entry {
            self.gen_entry_prologue()?;
        } else if let Some((loc, counters, sp_pos)) = self.pending.remove(&b) {
            // Single predecessor: inherit its exact path state.
            self.loc = loc;
            self.counters = counters;
            self.sp_pos = sp_pos;
        } else {
            self.block_entry_state(b, &v_positions);
        }

        let blk = &self.f.blocks[b];
        // Per-point liveness within the block: needed_at[i] is the set of
        // vregs whose value at point i (before instruction i) is still
        // read later with no intervening redefinition, or escapes the
        // block. A mere "used later" test is not enough — a stale value
        // that is *redefined* before its next use must not be relayed or
        // spilled (its inherited distance may already be unencodable).
        let nins = blk.insts.len();
        let mut needed_at: Vec<std::collections::HashSet<VReg>> =
            vec![Default::default(); nins + 1];
        let mut live: std::collections::HashSet<VReg> = self.live_out[b].iter().collect();
        live.extend(blk.term.srcs());
        needed_at[nins] = live.clone();
        for i in (0..nins).rev() {
            if let Some(d) = blk.insts[i].dst() {
                live.remove(&d);
            }
            live.extend(blk.insts[i].srcs());
            needed_at[i] = live.clone();
        }

        let insts = blk.insts.clone();
        for (i, ins) in insts.iter().enumerate() {
            // The current value of v must survive past this instruction:
            // needed afterwards, and not about to be redefined here.
            let na = &needed_at[i + 1];
            let dst = ins.dst();
            if self.opt.min_relays {
                // Safety net for last-use sources: a value read here for
                // the final time is not in `na`, but it must still be in
                // reach *after* the stack reloads that precede the read.
                // The legacy backend silently assumed its slack covered
                // this; with many stack-resident operands it does not.
                let reloads = self.reload_writes(&ins.srcs());
                if reloads > 0 {
                    let srcs = ins.srcs();
                    self.relay_over(MAX_DIST + 1 - reloads, &move |v: VReg| srcs.contains(&v))?;
                }
            }
            let threshold = self.relay_threshold(ins);
            let keep = move |v: VReg| na.contains(&v) && dst != Some(v);
            self.relay_over(threshold, &keep)?;
            self.gen_ins(ins, &needed_at[i + 1])?;
        }
        let term = blk.term.clone();
        // The terminator's reads and edge-fix writes (branch-operand
        // reloads, join-layout fixes, epilogue) run after the last
        // instruction's relay pass; relay once more so they start in
        // reach.
        let na = &needed_at[nins];
        let threshold = self.term_relay_threshold(&term);
        self.relay_over(threshold, &move |v: VReg| na.contains(&v))?;
        self.gen_term(b, &term, next)?;
        Ok(())
    }

    /// Counts the short-hand writes the stack reloads for `srcs` can
    /// emit before this instruction's operand reads.
    fn reload_writes(&self, srcs: &[VReg]) -> i64 {
        srcs.iter()
            .filter(|&&s| self.stack_set.contains(s) && !self.zero_vregs.contains(s))
            .count() as i64
    }

    /// Relay threshold before generating `ins`.
    ///
    /// The fixed early margin `RELAY_AT` is kept even in minimizing
    /// mode: placing a provably-needed relay *earlier* costs nothing
    /// statically and buys out-of-order slack — measured on the
    /// workload suite, demand-placement (relaying at the last legal
    /// point) emitted the identical instruction count but ran 0.3–1.8%
    /// more cycles because the relay `mv` lands next to its consumer
    /// and its hop latency goes on the critical path. What minimizing
    /// mode *does* change is the overflow accounting: the threshold is
    /// capped so the writes this instruction can emit (stack reloads
    /// plus its own definition) can never push a kept value past the
    /// hard limit, where the legacy backend trusted a fixed slack of 3.
    fn relay_threshold(&self, ins: &Ins) -> i64 {
        if !self.opt.min_relays {
            return RELAY_AT;
        }
        // A call's result write lands after `loc` is rebuilt from
        // scratch, so only the reloads shift values that survive into
        // their pre-call reads.
        let own = match ins {
            Ins::Call { .. } => 0,
            _ => ins
                .dst()
                .map_or(0, |d| i64::from(!self.zero_vregs.contains(d))),
        };
        RELAY_AT.min(MAX_DIST + 1 - (self.reload_writes(&ins.srcs()) + own))
    }

    /// Relay threshold before the terminator: its operand reloads, plus
    /// the epilogue's return-address load that precedes the return-value
    /// read. Join-edge fix writes guard their own reads in `take_edge`.
    fn term_relay_threshold(&self, term: &Term) -> i64 {
        if !self.opt.min_relays {
            return RELAY_AT;
        }
        let ra = i64::from(matches!(term, Term::Ret(_)));
        RELAY_AT.min(MAX_DIST + 1 - (self.reload_writes(&term.srcs()) + ra))
    }

    /// Function entry: calling-convention state, frame setup, caller
    /// v-saves, parameter moves.
    fn gen_entry_prologue(&mut self) -> Result<(), String> {
        self.loc.clear();
        self.counters = [0; 4];
        // s hand at entry: s[0]=RA, s[1..n]=args, s[n+1]=caller SP.
        let n = self.f.params.len() as i64;
        self.counters[Hand::S.index()] = n + 2;
        let ra_pos = n + 1;
        for (i, &p) in self.f.params.iter().enumerate() {
            self.loc.insert(
                p,
                Loc {
                    hand: Hand::S,
                    pos: n - i as i64,
                },
            );
        }
        let caller_sp_pos = 0i64;

        // SP = caller SP - frame (paper: `addi s, s[X], -amount`,
        // X = number of arguments plus one).
        let d = self.counters[Hand::S.index()] - 1 - caller_sp_pos;
        debug_assert_eq!(d, n + 1);
        self.sp_pos = self.counters[Hand::S.index()];
        self.push(ChInst::AluImm {
            op: AluOp::Add,
            dst: Hand::S,
            src1: Src::Hand(Hand::S, d as u8),
            imm: -self.frame_size,
        });
        // Spill RA (one deeper after the SP write).
        let ra_d = self.counters[Hand::S.index()] - 1 - ra_pos;
        let sp = self.sp_src()?;
        self.push(ChInst::Store {
            op: StoreOp::Sd,
            value: Src::Hand(Hand::S, ra_d as u8),
            base: sp,
            offset: self.ra_off,
        });
        // Save the caller's v registers that the epilogue cannot reach
        // in the ring (see the save plan in `new`) before any own v
        // write; the rest are restored by relays from deeper positions.
        for (idx, &j) in self.v_stack_saved.clone().iter().enumerate() {
            let sp = self.sp_src()?;
            self.push(ChInst::Store {
                op: StoreOp::Sd,
                value: Src::Hand(Hand::V, j as u8),
                base: sp,
                offset: self.vsave_off + 8 * idx as i32,
            });
        }
        // Own v writes start at model position 0.
        self.counters[Hand::V.index()] = 0;
        // Move parameters out of s into their assigned hands.
        for &p in &self.f.params.clone() {
            if self.zero_vregs.contains(p) {
                continue;
            }
            let hand = self.assign[p as usize];
            let s = self.src(p)?;
            self.define(p, hand);
            self.push(ChInst::Mv { dst: hand, src: s });
            self.write_through(p)?;
        }
        Ok(())
    }

    fn gen_ins(
        &mut self,
        ins: &Ins,
        needed_after: &std::collections::HashSet<VReg>,
    ) -> Result<(), String> {
        // Reload every stack-resident source before computing any
        // distance (a reload is a write and would shift them).
        for src in ins.srcs() {
            self.ensure_loaded(src)?;
        }
        self.gen_ins_inner(ins, needed_after)?;
        if let Some(d) = ins.dst() {
            self.write_through(d)?;
        }
        Ok(())
    }

    fn gen_ins_inner(
        &mut self,
        ins: &Ins,
        needed_after: &std::collections::HashSet<VReg>,
    ) -> Result<(), String> {
        match ins {
            Ins::Const { dst, val } => {
                if self.zero_vregs.contains(*dst) {
                    return Ok(());
                }
                let h = self.assign[*dst as usize];
                self.define(*dst, h);
                self.push(ChInst::Li { dst: h, imm: *val });
            }
            Ins::FConst { dst, val } => {
                let h = self.assign[*dst as usize];
                self.define(*dst, h);
                self.push(ChInst::Li {
                    dst: h,
                    imm: val.to_bits() as i64,
                });
            }
            Ins::GlobalAddr { dst, id } => {
                let h = self.assign[*dst as usize];
                self.define(*dst, h);
                self.push(ChInst::Li {
                    dst: h,
                    imm: self.module.globals[*id].addr as i64,
                });
            }
            Ins::FrameAddr { dst, slot } => {
                let h = self.assign[*dst as usize];
                let sp = self.sp_src()?;
                self.define(*dst, h);
                self.push(ChInst::AluImm {
                    op: AluOp::Add,
                    dst: h,
                    src1: sp,
                    imm: self.array_offsets[*slot],
                });
            }
            Ins::Bin { op, dst, a, b } => {
                let s1 = self.src(*a)?;
                let s2 = self.src(*b)?;
                let h = self.assign[*dst as usize];
                self.define(*dst, h);
                self.push(ChInst::Alu {
                    op: *op,
                    dst: h,
                    src1: s1,
                    src2: s2,
                });
            }
            Ins::BinImm { op, dst, a, imm } => {
                let s1 = self.src(*a)?;
                let h = self.assign[*dst as usize];
                self.define(*dst, h);
                self.push(ChInst::AluImm {
                    op: *op,
                    dst: h,
                    src1: s1,
                    imm: *imm,
                });
            }
            Ins::Load { op, dst, addr, off } => {
                let base = self.src(*addr)?;
                let h = self.assign[*dst as usize];
                self.define(*dst, h);
                self.push(ChInst::Load {
                    op: *op,
                    dst: h,
                    base,
                    offset: *off,
                });
            }
            Ins::Store { op, val, addr, off } => {
                let value = self.src(*val)?;
                let base = self.src(*addr)?;
                self.push(ChInst::Store {
                    op: *op,
                    value,
                    base,
                    offset: *off,
                });
            }
            Ins::Copy { dst, src } => {
                let s = self.src(*src)?;
                let h = self.assign[*dst as usize];
                self.define(*dst, h);
                self.push(ChInst::Mv { dst: h, src: s });
            }
            Ins::Call { dst, callee, args } => {
                // 1. Spill live t/u values (v survives: callee-saved).
                let mut after: Vec<VReg> = self
                    .loc
                    .keys()
                    .copied()
                    .filter(|&v| {
                        needed_after.contains(&v)
                            && Some(v) != *dst
                            && !self.zero_vregs.contains(v)
                            && !self.stack_set.contains(v)
                            && self.loc[&v].hand != Hand::V
                    })
                    .collect();
                after.sort_unstable();
                for &v in &after {
                    let s = self.src(v)?;
                    let off = *self
                        .spill_off
                        .get(&v)
                        .ok_or_else(|| format!("{}: v{v} has no spill slot", self.f.name))?;
                    let sp = self.sp_src()?;
                    self.push(ChInst::Store {
                        op: StoreOp::Sd,
                        value: s,
                        base: sp,
                        offset: off,
                    });
                }
                // 2. Push args argN..arg1 into s (SP is already the most
                //    recent s write, so the callee finds it at s[n+1]).
                for &a in args.iter().rev() {
                    let s = self.src(a)?;
                    self.push(ChInst::Mv {
                        dst: Hand::S,
                        src: s,
                    });
                }
                // 3. Call (RA written to s).
                let at = self.out.insts.len();
                self.push(ChInst::Call {
                    dst: Hand::S,
                    target: 0,
                });
                self.call_fixups.push((at, *callee));
                // 4. After return: t/u positions dead; v preserved by the
                //    convention; s[0]=restored SP, s[1]=return value.
                let v_positions: Vec<(VReg, Loc)> = self
                    .loc
                    .iter()
                    .filter(|(_, l)| l.hand == Hand::V)
                    .map(|(&v, &l)| (v, l))
                    .collect();
                self.loc.clear();
                for (v, l) in v_positions {
                    self.loc.insert(v, l);
                }
                let sc = self.counters[Hand::S.index()];
                let (new_sc, retval_pos) = if dst.is_some() {
                    (sc + 2, sc)
                } else {
                    (sc + 1, sc)
                };
                self.counters[Hand::S.index()] = new_sc;
                self.sp_pos = new_sc - 1;
                if let Some(d) = dst {
                    self.loc.insert(
                        *d,
                        Loc {
                            hand: Hand::S,
                            pos: retval_pos,
                        },
                    );
                    // Move it out of s promptly (s churns at every call).
                    let h = self.assign[*d as usize];
                    let s = self.src(*d)?;
                    self.define(*d, h);
                    self.push(ChInst::Mv { dst: h, src: s });
                }
                // 5. Reload spilled values into their hands.
                for &v in &after {
                    let off = self.spill_off[&v];
                    let h = self.assign[v as usize];
                    let sp = self.sp_src()?;
                    self.define(v, h);
                    self.push(ChInst::Load {
                        op: LoadOp::Ld,
                        dst: h,
                        base: sp,
                        offset: off,
                    });
                }
            }
        }
        Ok(())
    }

    /// Transfers control to `t`: a single-predecessor target inherits the
    /// path state; a join receives, per hand, exactly the writes needed
    /// to realise its entry layout (zero on the stabilised hot edge).
    /// Jumps write no hand (Section 3.3(3)), so they are only emitted
    /// when the layout demands one and never disturb distances.
    fn take_edge(&mut self, from: usize, t: usize, can_fallthrough: bool) -> Result<(), String> {
        if self.preds_count[t] == 1 {
            if !can_fallthrough {
                let at = self.out.insts.len();
                self.push(ChInst::Jump { target: 0 });
                self.fixups.push((at, t));
            }
            self.pending
                .insert(t, (self.loc.clone(), self.counters, self.sp_pos));
            return Ok(());
        }
        // Record this edge's natural delivery for the layout update.
        let d_from = self.depth[from];
        let mut nat = HashMap::new();
        for hi in 0..2 {
            for &(v, _) in &self.layouts[t][hi] {
                if let Some(&l) = self.loc.get(&v) {
                    nat.insert(v, self.dist_of(l));
                }
            }
        }
        self.deliveries[t].push((from, d_from, nat));
        for (hi, hand) in [(0, Hand::T), (1, Hand::U)] {
            let targets = self.layouts[t][hi].clone();
            let mut c = self.min_fix_writes(&targets);
            // Pre-relay any to-be-emitted value whose read would
            // overflow by the time its slot comes up. When a relay is
            // needed, the victim is the deepest emitted value — not the
            // deepest *flagged* one: every relay pushes the others one
            // deeper in this hand, so relaying around a value sitting at
            // MAX_DIST would push it out of reach before the recomputed
            // fix count flags it. Relaying max-first keeps the maximum
            // distance from ever growing.
            for _round in 0..64 {
                let mut need = false;
                let mut deepest: Option<(VReg, i64)> = None;
                for &(v, d) in &targets {
                    if d < c {
                        if let Some(&l) = self.loc.get(&v) {
                            let cur = self.dist_of(l);
                            if cur + (c - 1 - d) > MAX_DIST {
                                need = true;
                            }
                            if deepest.map(|(_, bd)| cur > bd).unwrap_or(true) {
                                deepest = Some((v, cur));
                            }
                        }
                    }
                }
                let victim = if need { deepest } else { None };
                match victim {
                    Some((v, _)) => {
                        let sop = self.src(v)?;
                        self.define(v, hand);
                        self.push(ChInst::Mv {
                            dst: hand,
                            src: sop,
                        });
                        self.fix_writes += 1;
                        c = self.min_fix_writes(&targets);
                    }
                    None => break,
                }
            }
            for slot in (0..c).rev() {
                self.fix_writes += 1;
                match targets.iter().find(|&&(_, d)| d == slot) {
                    Some(&(v, _)) => {
                        let sop = self.src(v)?;
                        self.define(v, hand);
                        self.push(ChInst::Mv {
                            dst: hand,
                            src: sop,
                        });
                    }
                    // Filler slot (a gap in the layout): something must
                    // write this hand to shift the values above into
                    // place. A dependency-free `li 0` is the cheapest
                    // such write — a value-carrying move was measured to
                    // splice an extra hop into the value's dependence
                    // chain and cost 0.5–1.8% cycles on hot edges. The
                    // pad also bans the natural sitting above the hole,
                    // so the next pass rebuilds this join gap-free and
                    // the filler disappears from the final code.
                    None => {
                        self.filler_writes += 1;
                        if self.ban_fillers {
                            if let Some(&(v, _)) = targets
                                .iter()
                                .filter(|&&(_, d)| d > slot)
                                .min_by_key(|&&(_, d)| d)
                            {
                                if self.hole_banned[t][hi].insert(v) {
                                    self.ban_dirty.insert(t);
                                }
                            }
                        }
                        self.push(ChInst::Li { dst: hand, imm: 0 });
                    }
                }
            }
        }
        if !can_fallthrough {
            let at = self.out.insts.len();
            self.push(ChInst::Jump { target: 0 });
            self.fixups.push((at, t));
        }
        Ok(())
    }

    fn gen_term(&mut self, from: usize, term: &Term, next: Option<usize>) -> Result<(), String> {
        match term {
            Term::Jump(t) => self.take_edge(from, *t, next == Some(*t)),
            Term::CondBr {
                cond,
                a,
                b,
                then_,
                else_,
            } => {
                if then_ == else_ {
                    return self.take_edge(from, *then_, next == Some(*then_));
                }
                self.ensure_loaded(*a)?;
                self.ensure_loaded(*b)?;
                let s1 = self.src(*a)?;
                let s2 = self.src(*b)?;
                let br_at = self.out.insts.len();
                self.push(ChInst::Branch {
                    cond: *cond,
                    src1: s1,
                    src2: s2,
                    target: 0,
                });
                let saved_loc = self.loc.clone();
                let saved_counters = self.counters;
                let saved_sp = self.sp_pos;
                let then_direct = self.preds_count[*then_] == 1 || {
                    self.min_fix_writes(&self.layouts[*then_][0]) == 0
                        && self.min_fix_writes(&self.layouts[*then_][1]) == 0
                };
                let can_ft = then_direct && next == Some(*else_);
                self.take_edge(from, *else_, can_ft)?;
                self.loc = saved_loc;
                self.counters = saved_counters;
                self.sp_pos = saved_sp;
                if then_direct {
                    let here = self.out.insts.len();
                    self.take_edge(from, *then_, true)?;
                    debug_assert_eq!(here, self.out.insts.len());
                    self.fixups.push((br_at, *then_));
                } else {
                    let stub = self.out.insts.len() as u32;
                    self.take_edge(from, *then_, false)?;
                    if let ChInst::Branch { target, .. } = &mut self.out.insts[br_at] {
                        *target = stub;
                    }
                }
                Ok(())
            }
            Term::Ret(v) => {
                // Epilogue: reload RA into u, restore the caller's v
                // registers, write the return value to s, restore the
                // caller SP to s (paper: `addi s, s[1], amount`), return.
                if let Some(rv) = v {
                    self.ensure_loaded(*rv)?;
                }
                let ra_u_pos = self.counters[Hand::U.index()];
                let sp = self.sp_src()?;
                self.push(ChInst::Load {
                    op: LoadOp::Ld,
                    dst: Hand::U,
                    base: sp,
                    offset: self.ra_off,
                });
                // Write the return value to s BEFORE restoring the
                // caller's v registers: if the value itself lives in v,
                // the 8 restore writes would push it past the encodable
                // distance. The s write order the caller depends on
                // (retval, then SP) is unaffected — restores write only v.
                if let Some(rv) = v {
                    let s = self.src(*rv)?;
                    self.push(ChInst::Mv {
                        dst: Hand::S,
                        src: s,
                    });
                }
                // Restore the caller's v[0..7]: write X_7 first so X_0
                // ends at v[0]. Stack-saved slots reload; the rest are
                // still in the ring — caller v[j] sits at distance
                // v_count + j here (own writes shifted it; every inner
                // call preserved the window contents in place), and by
                // the time slot j is rewritten the 7 - j earlier
                // restores have shifted it to v_count + 7, a constant
                // within the encodable range whenever v_count <= 8.
                let ring_d = self.counters[Hand::V.index()] + 7;
                for j in (0..self.v_restore_count).rev() {
                    match self.v_stack_saved.iter().position(|&x| x == j) {
                        Some(idx) => {
                            let sp = self.sp_src()?;
                            self.push(ChInst::Load {
                                op: LoadOp::Ld,
                                dst: Hand::V,
                                base: sp,
                                offset: self.vsave_off + 8 * idx as i32,
                            });
                        }
                        None => {
                            debug_assert!((0..=MAX_DIST).contains(&ring_d));
                            self.push(ChInst::Mv {
                                dst: Hand::V,
                                src: Src::Hand(Hand::V, ring_d as u8),
                            });
                        }
                    }
                }
                let spsrc = self.sp_src()?;
                self.push(ChInst::AluImm {
                    op: AluOp::Add,
                    dst: Hand::S,
                    src1: spsrc,
                    imm: self.frame_size,
                });
                let ra_d = self.counters[Hand::U.index()] - 1 - ra_u_pos;
                self.push(ChInst::JumpReg {
                    src: Src::Hand(Hand::U, ra_d as u8),
                });
                Ok(())
            }
        }
    }
}

/// Minimal fix-write count for one hand's layout given a distance
/// oracle: the smallest `c` such that every target at distance `d >= c`
/// is already delivered naturally (its current distance plus the `c`
/// emitted writes lands it exactly at `d`).
fn est_fix_writes_with(targets: &[(VReg, i64)], dist: &dyn Fn(VReg) -> Option<i64>) -> i64 {
    let maxd = targets
        .iter()
        .map(|&(_, d)| d)
        .max()
        .map(|d| d + 1)
        .unwrap_or(0);
    'outer: for c in 0..=maxd {
        for &(v, d) in targets {
            if d >= c && dist(v) != Some(d - c) {
                continue 'outer;
            }
        }
        return c;
    }
    maxd
}

/// [`est_fix_writes_with`] against a recorded delivery snapshot
/// (vreg → distance at the edge point, before any fixes).
fn est_fix_writes(targets: &[(VReg, i64)], nat: &HashMap<VReg, i64>) -> i64 {
    est_fix_writes_with(targets, &|v| nat.get(&v).copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ir;
    use clockhands::interp::Interpreter;

    fn compile_src(src: &str) -> Program {
        let m = build_ir(src).expect("ir");
        let prog = compile(&m).expect("codegen");
        prog.validate().expect("valid");
        prog
    }

    fn run(src: &str) -> u64 {
        let mut cpu = Interpreter::new(compile_src(src)).expect("interp");
        cpu.run(100_000_000).expect("runs").exit_value
    }

    /// Fuzzer-found: a value defined in an early block, dead on the
    /// taken path, and redefined before its next use must not be
    /// relayed or spilled — its inherited distance through a
    /// single-predecessor chain may already be unencodable. Keeping it
    /// "live" by a mere used-later test made codegen fail with a
    /// t-distance overflow.
    #[test]
    fn stale_dead_value_is_not_relayed() {
        let src = "global g0: int;
            global buf: int[16];
            fn h0(p0: int, p1: int) -> int {
                var v0: int = 1;
                var v1: int = 2;
                if (((buf[(v0) & 15] * (65 % g0))) != 0) {
                    g0 = ((p1 << g0) << (v0 - p0));
                    if ((1023) != 0) {
                        v1 = 1;
                        v0 = (v1 << p1);
                    }
                }
                return ((p0 | 9223372036854775807) / (1 >> v0));
            }
            fn main() -> int {
                var v0: int = 3;
                return v0;
            }";
        compile_src(src);
    }

    /// Fuzzer-found: a v-resident return value (here the loop-invariant
    /// parameter `p0`) was read *after* the epilogue's eight caller-v
    /// restores, pushing it past the encodable v-distance. The retval
    /// mv must precede the restores (the caller-visible s order —
    /// retval, then SP — is unaffected).
    #[test]
    fn v_resident_return_value_survives_epilogue() {
        let src = "global buf: int[16];
            fn h0(p0: int) -> int {
                var v0: int = 1;
                var v1: int = 2;
                var v3: int = 4;
                v1 = v3;
                for (var i0: int = 0; i0 < 8; i0 += 1) {
                    v3 = ((buf[(v1) & 15] ^ 10) & (buf[(v0) & 15] % (0 - 128)));
                    v0 = (buf[(v1) & 15] * ((64 & i0) % (52 << p0)));
                    v1 = ((v1 % (buf[(v1) & 15] & (0 - 22)))
                        >> ((0 - 1) * (buf[(v1) & 15] ^ 15)));
                }
                for (var i1: int = 0; i1 < 5; i1 += 1) {
                }
                return p0;
            }
            fn main() -> int { return h0(7); }";
        assert_eq!(run(src), 7);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run("fn main() -> int { return 6 * 7; }"), 42);
        assert_eq!(
            run("fn main() -> int { var a: int = 10; return a % 3; }"),
            1
        );
    }

    #[test]
    fn sum_loop() {
        let src = "fn main() -> int {
                var s: int = 0;
                for (var i: int = 1; i <= 10; i += 1) { s += i; }
                return s;
            }";
        assert_eq!(run(src), 55);
    }

    #[test]
    fn loop_constants_live_in_v_without_relays() {
        let src = "global a: int[100];
            fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 100; i += 1) { s += a[i] + 7; }
                return s;
            }";
        assert_eq!(run(src), 700);
        // The loop must not write the v hand (that is the whole point):
        // dynamically, v writes happen only in prologue/epilogue, never
        // per iteration. 100 iterations => far fewer than 100 v writes.
        let mut cpu = Interpreter::new(compile_src(src)).unwrap();
        let (trace, _) = cpu.trace(10_000_000).unwrap();
        let v_writes = trace
            .iter()
            .filter(|d| d.dst.and_then(|t| t.hand()) == Some(Hand::V.index() as u8))
            .count();
        assert!(
            v_writes < 30,
            "v written {v_writes} times (should be entry/exit only)"
        );
    }

    #[test]
    fn arrays_and_globals() {
        let src = "global a: int[32];
            fn main() -> int {
                for (var i: int = 0; i < 32; i += 1) { a[i] = i * 3; }
                var s: int = 0;
                for (var i: int = 0; i < 32; i += 1) { s += a[i]; }
                return s;
            }";
        assert_eq!(run(src), (0..32u64).map(|i| i * 3).sum());
    }

    #[test]
    fn calls_preserve_v_hand() {
        let src = "fn add(a: int, b: int) -> int { return a + b; }
            fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 10; i += 1) {
                    s = add(s, i);       // call inside the loop
                }
                return s;
            }";
        assert_eq!(run(src), 45);
    }

    #[test]
    fn recursion() {
        let src = "fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> int { return fib(15); }";
        assert_eq!(run(src), 610);
    }

    #[test]
    fn floating_point() {
        let src = "fn main() -> int {
                var x: real = 1.5;
                var y: real = 2.5;
                return int(x * y * 4.0);
            }";
        assert_eq!(run(src), 15);
    }

    #[test]
    fn local_arrays() {
        let src = "fn main() -> int {
                var a: int[8];
                for (var i: int = 0; i < 8; i += 1) { a[i] = i + 1; }
                return a[0] + a[7];
            }";
        assert_eq!(run(src), 9);
    }

    #[test]
    fn nested_loops() {
        let src = "fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 10; i += 1) {
                    for (var j: int = 0; j < 10; j += 1) { s += i * j; }
                }
                return s;
            }";
        assert_eq!(run(src), 2025);
    }

    #[test]
    fn fewer_moves_than_straight() {
        // The headline claim: Clockhands needs far fewer relay moves.
        let src = "global a: int[64];
            fn main() -> int {
                var s: int = 0;
                for (var i: int = 0; i < 64; i += 1) {
                    s += a[i] * 3 + i;
                }
                return s;
            }";
        assert_eq!(run(src), (0..64u64).sum::<u64>());
        // Compare *executed* moves, the paper's Fig. 15 metric: STRAIGHT
        // relays every live value (including loop constants) on every
        // iteration; Clockhands keeps the constants frozen in v.
        let m = build_ir(src).unwrap();
        let ch = compile(&m).unwrap();
        let st = super::super::straight::compile(&m).unwrap();
        let mut chi = Interpreter::new(ch).unwrap();
        let (ch_trace, _) = chi.trace(1_000_000).unwrap();
        let mut sti = ch_baselines::straight::interp::Interpreter::new(st).unwrap();
        let (st_trace, _) = sti.trace(1_000_000).unwrap();
        let ch_mv = ch_trace
            .iter()
            .filter(|d| d.class == ch_common::op::OpClass::Move)
            .count();
        let st_mv = st_trace
            .iter()
            .filter(|d| d.class == ch_common::op::OpClass::Move)
            .count();
        assert!(
            2 * ch_mv < st_mv,
            "Clockhands should execute far fewer relays: {ch_mv} vs {st_mv}"
        );
        // And fewer instructions overall.
        assert!(ch_trace.len() < st_trace.len());
    }

    #[test]
    fn void_functions() {
        let src = "global g: int;
            fn bump() { g = g + 1; }
            fn main() -> int {
                bump(); bump(); bump();
                return g;
            }";
        assert_eq!(run(src), 3);
    }

    #[test]
    fn deep_call_chain_restores_v() {
        // Each level uses its own v constants; the convention must
        // restore the caller's on every return.
        let src = "global a: int[4];
            fn leaf(x: int) -> int {
                var s: int = 0;
                for (var i: int = 0; i < 4; i += 1) { s += a[i] + x; }
                return s;
            }
            fn mid(x: int) -> int {
                var s: int = 0;
                for (var i: int = 0; i < 3; i += 1) { s += leaf(x) + a[0]; }
                return s;
            }
            fn main() -> int {
                a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
                var s: int = 0;
                for (var i: int = 0; i < 2; i += 1) { s += mid(i) + a[3]; }
                return s;
            }";
        // leaf(x) = 10 + 4x ; mid(x) = 3*(leaf(x)+1) = 3*(11+4x)
        // main = (mid(0)+4) + (mid(1)+4) = (33+4)+(45+4) = 86
        assert_eq!(run(src), 86);
    }
}
