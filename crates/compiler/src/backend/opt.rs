//! Shared backend-optimization analyses (ROADMAP item 3).
//!
//! The rotating-register backends (Clockhands and STRAIGHT) share three
//! IR-level optimization problems that are independent of the target's
//! encoding details:
//!
//! * **Distance-aware local scheduling** — reorder independent
//!   instructions within a block so definitions sit close to their
//!   uses. Rotating registers address values by *write distance*, so a
//!   shorter def-use span directly means a shorter operand distance,
//!   fewer forced relays, and fewer spills ([`schedule_function`]).
//! * **Measured-lifetime classification** — decide which block-local
//!   values are short-lived enough for the high-churn hand (`t`) by
//!   simulating the actual write counter of that hand, instead of the
//!   first-fit "instruction span" proxy ([`long_lived_locals`]).
//! * **Loop-constant selection** — choose the values that get pinned in
//!   the write-once hand (`v`) by a greedy weighted
//!   maximum-independent-set over loop bodies
//!   ([`select_loop_constants`]).
//!
//! [`OptConfig`] carries the per-pass toggles; `OptConfig::none()`
//! reproduces the pre-optimization backend for A/B comparisons (the
//! `--no-opt` escape hatch and the `figures opt` experiment).

use crate::cfg::{BitSet, LoopInfo};
use crate::ir::{Function, Ins, VReg};
use std::collections::HashMap;

/// Per-pass optimization toggles for the rotating-register backends.
///
/// The default ([`OptConfig::full`]) enables everything; `none()` is
/// the conservative pre-optimization pipeline kept for differential
/// testing and measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Distance-aware local scheduling ([`schedule_function`]).
    pub schedule: bool,
    /// Measured-lifetime t/u split ([`long_lived_locals`]); when off,
    /// the first-fit instruction-span heuristic is used.
    pub lifetime_split: bool,
    /// Demand-driven relay placement and value-carrying edge fixes;
    /// when off, relays fire at a fixed conservative threshold and
    /// edge-fix filler slots write a literal zero.
    pub min_relays: bool,
    /// Clobber-only callee-save traffic on the `v` hand; when off,
    /// every function that writes `v` saves and reloads the full
    /// callee-saved window through the stack.
    pub lean_saves: bool,
}

impl OptConfig {
    /// Everything on (the default production pipeline).
    pub fn full() -> OptConfig {
        OptConfig {
            schedule: true,
            lifetime_split: true,
            min_relays: true,
            lean_saves: true,
        }
    }

    /// Everything off: the conservative pre-optimization backend.
    pub fn none() -> OptConfig {
        OptConfig {
            schedule: false,
            lifetime_split: false,
            min_relays: false,
            lean_saves: false,
        }
    }

    /// The process-wide configuration (see [`crate::set_optimize`]).
    pub fn current() -> OptConfig {
        if crate::optimize_enabled() {
            OptConfig::full()
        } else {
            OptConfig::none()
        }
    }
}

/// Distance-aware local scheduling: reorders each block's instructions
/// so values that leave the block are defined as late as the dependences
/// allow, returning the rescheduled function.
///
/// Rotating registers address values by *write distance*, and a block's
/// escaping values are read again at its exits: by the terminator, or by
/// a successor through its entry layout. Sinking their definitions below
/// the block's dead-at-exit work does two things at once — it shortens
/// every exit-visible distance (fewer forced relays), and it makes the
/// hot edge's natural delivery *contiguous*, so join layouts stop
/// containing gap slots that every cold edge must plug with a filler
/// write. The list scheduler is greedy: among ready instructions it
/// picks non-escaping definitions first, in original program order.
///
/// Semantics are preserved exactly: register dependences (RAW/WAR/WAW
/// on vregs) are edges, stores and calls are barriers for every memory
/// operation (loads may reorder only with other loads), and every
/// instruction stays within its block, so the same operations execute
/// on every path. All operations are total (RISC-V division semantics),
/// so reordering cannot change which of them take effect.
pub fn schedule_function(f: &Function) -> Function {
    let live = crate::cfg::liveness(f);
    let mut out = f.clone();
    for (bi, b) in out.blocks.iter_mut().enumerate() {
        let mut term_srcs = BitSet::new(f.num_vregs());
        for s in b.term.srcs() {
            term_srcs.insert(s);
        }
        let order = schedule_block(&b.insts, &live.live_out[bi], &term_srcs);
        let old = std::mem::take(&mut b.insts);
        b.insts = order.into_iter().map(|i| old[i].clone()).collect();
    }
    out
}

/// Computes the scheduled order of one block as indices into `insts`.
/// `live_out` holds the vregs read by successor blocks; `term_srcs` the
/// terminator's own operands (read at the exit but dead beyond it).
fn schedule_block(insts: &[Ins], live_out: &BitSet, term_srcs: &BitSet) -> Vec<usize> {
    let n = insts.len();
    if n < 3 {
        return (0..n).collect();
    }
    // Dependence edges: preds[i] must all be scheduled before i.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_def: HashMap<VReg, usize> = HashMap::new();
    let mut uses_since_def: HashMap<VReg, Vec<usize>> = HashMap::new();
    // Memory model: stores and calls are barriers; loads reorder freely
    // between barriers.
    let mut last_barrier: Option<usize> = None;
    let mut loads_since: Vec<usize> = Vec::new();
    for (i, ins) in insts.iter().enumerate() {
        for s in ins.srcs() {
            if let Some(&d) = last_def.get(&s) {
                preds[i].push(d);
            }
            uses_since_def.entry(s).or_default().push(i);
        }
        match ins {
            Ins::Load { .. } => {
                if let Some(bar) = last_barrier {
                    preds[i].push(bar);
                }
                loads_since.push(i);
            }
            Ins::Store { .. } | Ins::Call { .. } => {
                if let Some(bar) = last_barrier {
                    preds[i].push(bar);
                }
                preds[i].append(&mut loads_since);
                last_barrier = Some(i);
            }
            _ => {}
        }
        if let Some(d) = ins.dst() {
            if let Some(&prev) = last_def.get(&d) {
                preds[i].push(prev); // WAW
            }
            if let Some(mut reads) = uses_since_def.remove(&d) {
                reads.retain(|&r| r != i);
                preds[i].append(&mut reads); // WAR
            }
            last_def.insert(d, i);
        }
    }
    let mut missing: Vec<usize> = vec![0; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        let mut seen = ps.clone();
        seen.sort_unstable();
        seen.dedup();
        missing[i] = seen.len();
        for p in seen {
            succs[p].push(i);
        }
    }
    // Greedy list scheduling: dead-at-exit work first, then values the
    // terminator reads, then live-out definitions as late as their
    // consumers allow — so each hand's final writes are exactly the
    // values successors read, making the natural delivery contiguous.
    // Original program order breaks ties deterministically.
    let class = |i: usize| -> u8 {
        match insts[i].dst() {
            Some(d) if live_out.contains(d) => 2,
            Some(d) if term_srcs.contains(d) => 1,
            _ => 0,
        }
    };
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| missing[i] == 0).collect();
    while let Some(best) = ready.iter().copied().min_by_key(|&i| (class(i), i)) {
        ready.retain(|&i| i != best);
        order.push(best);
        for &s in &succs[best] {
            missing[s] -= 1;
            if missing[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Measured-lifetime classification of block-local values.
///
/// Returns the set of block-local values whose def-use span, measured
/// in *writes to the short-lived hand* along the block, exceeds
/// `span_limit` — these must live in a longer-lived hand or they would
/// be relayed repeatedly. `is_short(v)` says whether `v` currently
/// counts as a write to the short-lived hand (block-local, not pinned,
/// not a constant-zero); the computation iterates to a fixpoint because
/// moving a value out of the hand removes its write and shortens every
/// span that crossed it. Calls reset def positions (values live across
/// a call are reloaded after it), so spans never cross a call.
pub fn long_lived_locals(
    f: &Function,
    span_limit: usize,
    is_candidate: &dyn Fn(VReg) -> bool,
) -> BitSet {
    let mut long = BitSet::new(f.num_vregs());
    loop {
        let mut changed = false;
        for b in &f.blocks {
            // def_at[v] = short-hand write count when v was defined.
            let mut def_at: HashMap<VReg, usize> = HashMap::new();
            let mut writes: usize = 0;
            let in_hand = |v: VReg, long: &BitSet| -> bool { is_candidate(v) && !long.contains(v) };
            for ins in &b.insts {
                for s in ins.srcs() {
                    if let Some(&d) = def_at.get(&s) {
                        if in_hand(s, &long) && writes - d > span_limit && !long.contains(s) {
                            long.insert(s);
                            changed = true;
                        }
                    }
                }
                if let Ins::Call { .. } = ins {
                    // Live values are spilled around the call and
                    // redefined by the reloads; restart every span.
                    let here: Vec<VReg> = def_at.keys().copied().collect();
                    for v in here {
                        def_at.insert(v, writes);
                    }
                }
                if let Some(d) = ins.dst() {
                    def_at.insert(d, writes);
                    if in_hand(d, &long) {
                        writes += 1;
                    }
                }
            }
            for s in b.term.srcs() {
                if let Some(&d) = def_at.get(&s) {
                    if in_hand(s, &long) && writes - d > span_limit && !long.contains(s) {
                        long.insert(s);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return long;
        }
    }
}

/// Greedy weighted maximum-independent-set selection of loop constants.
///
/// Nodes are the eligible single-definition values (`candidates`, with
/// their loop-depth-weighted use counts as weights); selecting a set is
/// feasible when the write-once hand can hold it: at most `budget`
/// constants overall — the hand is written once per constant at
/// function entry and never again, so every constant's distance is
/// bounded by the selection size — and, per loop body, every constant
/// read inside the loop must still be inside that window. Candidates
/// are taken in decreasing weight order and kept only while the set
/// they join stays independent of these capacity conflicts.
pub fn select_loop_constants(
    f: &Function,
    loops: &LoopInfo,
    candidates: &[(u64, VReg)],
    budget: usize,
) -> Vec<VReg> {
    // Constants read per loop body (node -> incident loops).
    let mut used_in_loop: HashMap<VReg, Vec<usize>> = HashMap::new();
    for (li, (_, body)) in loops.loops.iter().enumerate() {
        for &bi in body {
            let b = &f.blocks[bi];
            let mut note = |v: VReg| {
                let e = used_in_loop.entry(v).or_default();
                if e.last() != Some(&li) {
                    e.push(li);
                }
            };
            for ins in &b.insts {
                for s in ins.srcs() {
                    note(s);
                }
            }
            for s in b.term.srcs() {
                note(s);
            }
        }
    }
    let mut per_loop: Vec<usize> = vec![0; loops.loops.len()];
    let mut chosen: Vec<VReg> = Vec::new();
    let mut sorted = candidates.to_vec();
    sorted.sort_by(|a, b| b.cmp(a));
    for (weight, v) in sorted {
        if weight == 0 || chosen.len() >= budget {
            break;
        }
        // Independence: the loops this constant is read in must keep
        // their resident-constant count within the window.
        let incident = used_in_loop.get(&v);
        let fits = incident
            .map(|ls| ls.iter().all(|&li| per_loop[li] < budget))
            .unwrap_or(true);
        if !fits {
            continue;
        }
        if let Some(ls) = incident {
            for &li in ls {
                per_loop[li] += 1;
            }
        }
        chosen.push(v);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_ir;

    /// Scheduling must keep each block a permutation of itself.
    #[test]
    fn schedule_is_a_permutation() {
        let src = "global buf: int[16];
            fn main() -> int {
                var a: int = 1;
                var b: int = 2;
                var c: int = 0;
                for (var i: int = 0; i < 10; i += 1) {
                    buf[i & 15] = a;
                    a = a + b;
                    b = b * 3;
                    c = c + buf[(i + 1) & 15];
                }
                return c;
            }";
        let m = build_ir(src).expect("ir");
        for f in &m.funcs {
            let g = schedule_function(f);
            assert_eq!(f.blocks.len(), g.blocks.len());
            for (bf, bg) in f.blocks.iter().zip(&g.blocks) {
                let mut a: Vec<String> = bf.insts.iter().map(|i| format!("{i:?}")).collect();
                let mut b: Vec<String> = bg.insts.iter().map(|i| format!("{i:?}")).collect();
                a.sort();
                b.sort();
                assert_eq!(a, b, "same multiset of instructions");
            }
        }
    }

    /// Stores must never reorder with each other or with loads.
    #[test]
    fn schedule_keeps_memory_order() {
        let src = "global buf: int[16];
            fn main() -> int {
                var x: int = buf[0];
                buf[1] = x + 1;
                var y: int = buf[1];
                buf[2] = y + 2;
                return buf[2];
            }";
        let m = build_ir(src).expect("ir");
        for f in &m.funcs {
            let g = schedule_function(f);
            for (bf, bg) in f.blocks.iter().zip(&g.blocks) {
                let stores = |insts: &[Ins]| -> Vec<String> {
                    insts
                        .iter()
                        .filter(|i| matches!(i, Ins::Store { .. } | Ins::Call { .. }))
                        .map(|i| format!("{i:?}"))
                        .collect()
                };
                assert_eq!(stores(&bf.insts), stores(&bg.insts));
                // Every load stays between the same pair of barriers.
                let barrier_idx = |insts: &[Ins]| -> Vec<(String, usize)> {
                    let mut out = Vec::new();
                    let mut bar = 0usize;
                    for i in insts {
                        match i {
                            Ins::Store { .. } | Ins::Call { .. } => bar += 1,
                            Ins::Load { .. } => out.push((format!("{i:?}"), bar)),
                            _ => {}
                        }
                    }
                    out.sort();
                    out
                };
                assert_eq!(barrier_idx(&bf.insts), barrier_idx(&bg.insts));
            }
        }
    }
}
