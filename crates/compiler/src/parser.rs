//! Recursive-descent parser for Kern.

use crate::ast::*;
use crate::lexer::{lex, Kw, LexError, Spanned, Tok};

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.is_punct(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {:?}", self.peek()))
        }
    }

    fn at_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        match self.bump() {
            Tok::Int(v) => Ok(v),
            other => {
                self.pos -= 1;
                self.err(format!("expected integer literal, found {other:?}"))
            }
        }
    }

    fn scalar_ty(&mut self) -> Result<Ty, ParseError> {
        match self.bump() {
            Tok::Kw(Kw::Int) => Ok(Ty::Int),
            Tok::Kw(Kw::Real) => Ok(Ty::Real),
            other => {
                self.pos -= 1;
                self.err(format!("expected `int` or `real`, found {other:?}"))
            }
        }
    }

    fn elem_ty(&mut self) -> Result<ElemTy, ParseError> {
        match self.bump() {
            Tok::Kw(Kw::Int) => Ok(ElemTy::Int),
            Tok::Kw(Kw::Real) => Ok(ElemTy::Real),
            Tok::Kw(Kw::Byte) => Ok(ElemTy::Byte),
            other => {
                self.pos -= 1;
                self.err(format!("expected `int`, `real` or `byte`, found {other:?}"))
            }
        }
    }

    fn unit(&mut self) -> Result<Unit, ParseError> {
        let mut unit = Unit::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Kw(Kw::Global) => {
                    self.bump();
                    let name = self.ident()?;
                    self.eat_punct(":")?;
                    let elem = self.elem_ty()?;
                    let (len, scalar) = if self.at_punct("[") {
                        let n = self.int_lit()?;
                        if n <= 0 {
                            return self.err("array length must be positive");
                        }
                        self.eat_punct("]")?;
                        (n as u64, false)
                    } else {
                        (1, true)
                    };
                    self.eat_punct(";")?;
                    unit.globals.push(GlobalDef {
                        name,
                        elem,
                        len,
                        scalar,
                    });
                }
                Tok::Kw(Kw::Fn) => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident()?;
                    self.eat_punct("(")?;
                    let mut params = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            let pname = self.ident()?;
                            self.eat_punct(":")?;
                            let ty = self.scalar_ty()?;
                            params.push(Param { name: pname, ty });
                            if self.at_punct(")") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                    let ret = if self.at_punct("-") {
                        self.eat_punct(">")?;
                        if self.peek() == &Tok::Kw(Kw::Void) {
                            self.bump();
                            None
                        } else {
                            Some(self.scalar_ty()?)
                        }
                    } else {
                        None
                    };
                    let body = self.block()?;
                    unit.funcs.push(FnDef {
                        name,
                        params,
                        ret,
                        body,
                        line,
                    });
                }
                other => return self.err(format!("expected `fn` or `global`, found {other:?}")),
            }
        }
        Ok(unit)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.eat_punct("{")?;
        let mut stmts = Vec::new();
        while !self.at_punct("}") {
            if self.peek() == &Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Kw(Kw::Var) => {
                self.bump();
                let name = self.ident()?;
                self.eat_punct(":")?;
                // Array or scalar?
                match self.peek() {
                    Tok::Kw(Kw::Byte) => {
                        let elem = self.elem_ty()?;
                        self.eat_punct("[")?;
                        let len = self.int_lit()?;
                        self.eat_punct("]")?;
                        self.eat_punct(";")?;
                        Ok(Stmt::ArrDecl {
                            name,
                            elem,
                            len: len as u64,
                        })
                    }
                    _ => {
                        let pos = self.pos;
                        let ty = self.scalar_ty()?;
                        if self.at_punct("[") {
                            let len = self.int_lit()?;
                            self.eat_punct("]")?;
                            self.eat_punct(";")?;
                            let elem = match ty {
                                Ty::Int => ElemTy::Int,
                                Ty::Real => ElemTy::Real,
                            };
                            let _ = pos;
                            Ok(Stmt::ArrDecl {
                                name,
                                elem,
                                len: len as u64,
                            })
                        } else {
                            let init = if self.at_punct("=") {
                                Some(self.expr()?)
                            } else {
                                None
                            };
                            self.eat_punct(";")?;
                            Ok(Stmt::VarDecl { name, ty, init })
                        }
                    }
                }
            }
            Tok::Kw(Kw::If) => {
                self.bump();
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let then_b = self.block()?;
                let else_b = if self.peek() == &Tok::Kw(Kw::Else) {
                    self.bump();
                    if self.peek() == &Tok::Kw(Kw::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then_b, else_b))
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.eat_punct("(")?;
                let cond = self.expr()?;
                self.eat_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.eat_punct("(")?;
                let init = if self.peek() == &Tok::Kw(Kw::Var) {
                    self.bump();
                    let name = self.ident()?;
                    self.eat_punct(":")?;
                    let ty = self.scalar_ty()?;
                    self.eat_punct("=")?;
                    let init = Some(self.expr()?);
                    Stmt::VarDecl { name, ty, init }
                } else {
                    self.simple_stmt()?
                };
                self.eat_punct(";")?;
                let cond = self.expr()?;
                self.eat_punct(";")?;
                let step = self.simple_stmt()?;
                self.eat_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::For(Box::new(init), cond, Box::new(step), body))
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let e = if self.at_punct(";") {
                    None
                } else {
                    let e = self.expr()?;
                    self.eat_punct(";")?;
                    Some(e)
                };
                Ok(Stmt::Return(e))
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.eat_punct(";")?;
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.eat_punct(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let s = self.simple_stmt()?;
                self.eat_punct(";")?;
                Ok(s)
            }
        }
    }

    /// Assignment / compound assignment / expression statement, without the
    /// trailing `;` (shared by `for` headers).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.pos;
        let e = self.expr()?;
        const COMPOUND: [(&str, BinOp); 10] = [
            ("+=", BinOp::Add),
            ("-=", BinOp::Sub),
            ("*=", BinOp::Mul),
            ("/=", BinOp::Div),
            ("%=", BinOp::Rem),
            ("&=", BinOp::And),
            ("|=", BinOp::Or),
            ("^=", BinOp::Xor),
            ("<<=", BinOp::Shl),
            (">>=", BinOp::Shr),
        ];
        let lv_of = |p: &mut Self, e: &Expr| -> Result<LValue, ParseError> {
            match &e.kind {
                ExprKind::Var(n) => Ok(LValue::Var(n.clone())),
                ExprKind::Index(b, i) => Ok(LValue::Index((**b).clone(), (**i).clone())),
                _ => {
                    p.pos = start;
                    p.err("left side of assignment is not assignable")
                }
            }
        };
        if self.at_punct("=") {
            let lv = lv_of(self, &e)?;
            let rhs = self.expr()?;
            return Ok(Stmt::Assign(lv, rhs));
        }
        for (p, op) in COMPOUND {
            if self.at_punct(p) {
                let lv = lv_of(self, &e)?;
                let line = e.line;
                let rhs = self.expr()?;
                let combined = Expr {
                    kind: ExprKind::Bin(op, Box::new(e), Box::new(rhs)),
                    line,
                };
                return Ok(Stmt::Assign(lv, combined));
            }
        }
        Ok(Stmt::ExprStmt(e))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::Punct("||") => (BinOp::LOr, 1),
                Tok::Punct("&&") => (BinOp::LAnd, 2),
                Tok::Punct("|") => (BinOp::Or, 3),
                Tok::Punct("^") => (BinOp::Xor, 4),
                Tok::Punct("&") => (BinOp::And, 5),
                Tok::Punct("==") => (BinOp::Eq, 6),
                Tok::Punct("!=") => (BinOp::Ne, 6),
                Tok::Punct("<") => (BinOp::Lt, 7),
                Tok::Punct("<=") => (BinOp::Le, 7),
                Tok::Punct(">") => (BinOp::Gt, 7),
                Tok::Punct(">=") => (BinOp::Ge, 7),
                Tok::Punct("<<") => (BinOp::Shl, 8),
                Tok::Punct(">>") => (BinOp::Shr, 8),
                Tok::Punct("+") => (BinOp::Add, 9),
                Tok::Punct("-") => (BinOp::Sub, 9),
                Tok::Punct("*") => (BinOp::Mul, 10),
                Tok::Punct("/") => (BinOp::Div, 10),
                Tok::Punct("%") => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        if self.at_punct("-") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnOp::Neg, Box::new(e)),
                line,
            });
        }
        if self.at_punct("!") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnOp::Not, Box::new(e)),
                line,
            });
        }
        if self.at_punct("~") {
            let e = self.unary()?;
            return Ok(Expr {
                kind: ExprKind::Un(UnOp::BitNot, Box::new(e)),
                line,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.at_punct("[") {
                let idx = self.expr()?;
                self.eat_punct("]")?;
                e = Expr {
                    kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                    line,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr {
                kind: ExprKind::Int(v),
                line,
            }),
            Tok::Real(v) => Ok(Expr {
                kind: ExprKind::Real(v),
                line,
            }),
            Tok::Kw(Kw::Int) => {
                self.eat_punct("(")?;
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(Expr {
                    kind: ExprKind::Cast(Ty::Int, Box::new(e)),
                    line,
                })
            }
            Tok::Kw(Kw::Real) => {
                self.eat_punct("(")?;
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(Expr {
                    kind: ExprKind::Cast(Ty::Real, Box::new(e)),
                    line,
                })
            }
            Tok::Ident(name) => {
                if self.at_punct("(") {
                    let mut args = Vec::new();
                    if !self.at_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.at_punct(")") {
                                break;
                            }
                            self.eat_punct(",")?;
                        }
                    }
                    Ok(Expr {
                        kind: ExprKind::Call(name, args),
                        line,
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        line,
                    })
                }
            }
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => {
                self.pos -= 1;
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }
}

/// Parses Kern source into an AST.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line.
///
/// # Examples
///
/// ```
/// use ch_compiler::parser::parse;
///
/// let unit = parse("fn main() -> int { return 42; }")?;
/// assert_eq!(unit.funcs.len(), 1);
/// assert_eq!(unit.funcs[0].name, "main");
/// # Ok::<(), ch_compiler::parser::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Unit, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.unit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_fn() {
        let u = parse(
            "global arr: int[100];
             global x: int;
             global buf: byte[256];
             fn main() -> int { return 0; }",
        )
        .unwrap();
        assert_eq!(u.globals.len(), 3);
        assert!(u.globals[1].scalar);
        assert_eq!(u.globals[2].elem, ElemTy::Byte);
        assert_eq!(u.funcs[0].ret, Some(Ty::Int));
    }

    #[test]
    fn parses_control_flow() {
        let u = parse(
            "fn f(n: int) -> int {
                 var s: int = 0;
                 for (var i: int = 0; i < n; i += 1) {
                     if (i % 2 == 0) { s += i; } else { s -= 1; }
                 }
                 while (s > 100) { s = s / 2; }
                 return s;
             }",
        )
        .unwrap();
        assert_eq!(u.funcs[0].params.len(), 1);
        assert_eq!(u.funcs[0].body.len(), 4);
    }

    #[test]
    fn precedence() {
        let u = parse("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        match &u.funcs[0].body[0] {
            Stmt::Return(Some(e)) => match &e.kind {
                ExprKind::Bin(BinOp::Add, _, rhs) => {
                    assert!(matches!(rhs.kind, ExprKind::Bin(BinOp::Mul, _, _)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn array_indexing_and_assignment() {
        let u = parse("fn f() { var a: int[10]; a[3] = a[2] + 1; }").unwrap();
        match &u.funcs[0].body[1] {
            Stmt::Assign(LValue::Index(_, _), _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn casts() {
        let u = parse("fn f(x: real) -> int { return int(x * 2.0); }").unwrap();
        match &u.funcs[0].body[0] {
            Stmt::Return(Some(e)) => assert!(matches!(e.kind, ExprKind::Cast(Ty::Int, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let src = "fn f(x: int) -> int {
            if (x > 2) { return 2; } else if (x > 1) { return 1; } else { return 0; }
        }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn error_has_line() {
        let e = parse("fn main() {\n  var x int;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn negative_numbers_and_unaries() {
        assert!(parse("fn f() -> int { return -(-3) + !0 + ~5; }").is_ok());
    }
}
