//! CFG utilities: reachability, ordering, liveness, and loop analysis.

use crate::ir::{BlockId, Function};
use std::collections::HashSet;

/// A dense bit set over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set sized for `n` elements.
    pub fn new(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns whether the set changed.
    pub fn insert(&mut self, i: u32) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: u32) {
        let (w, b) = ((i / 64) as usize, i % 64);
        self.words[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, i: u32) -> bool {
        let (w, b) = ((i / 64) as usize, i % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Unions `other` into `self`; returns whether anything changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64).filter_map(move |b| {
                if bits >> b & 1 == 1 {
                    Some((w * 64 + b) as u32)
                } else {
                    None
                }
            })
        })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Blocks reachable from the entry.
pub fn reachable(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.blocks[b].term.succs() {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Reverse postorder over reachable blocks, starting at the entry.
pub fn rpo(f: &Function) -> Vec<BlockId> {
    let mut visited = vec![false; f.blocks.len()];
    let mut post = Vec::new();
    // Iterative DFS with an explicit "exit" marker.
    let mut stack: Vec<(BlockId, bool)> = vec![(0, false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            post.push(b);
            continue;
        }
        if visited[b] {
            continue;
        }
        visited[b] = true;
        stack.push((b, true));
        for s in f.blocks[b].term.succs().into_iter().rev() {
            if !visited[s] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

/// Per-block live-in / live-out virtual register sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at each block entry.
    pub live_in: Vec<BitSet>,
    /// Registers live at each block exit.
    pub live_out: Vec<BitSet>,
}

/// Computes liveness by iterating the backward dataflow to a fixed point.
pub fn liveness(f: &Function) -> Liveness {
    let n = f.blocks.len();
    let nv = f.num_vregs();
    // use/def per block.
    let mut use_: Vec<BitSet> = Vec::with_capacity(n);
    let mut def: Vec<BitSet> = Vec::with_capacity(n);
    for b in &f.blocks {
        let mut u = BitSet::new(nv);
        let mut d = BitSet::new(nv);
        for ins in &b.insts {
            for s in ins.srcs() {
                if !d.contains(s) {
                    u.insert(s);
                }
            }
            if let Some(x) = ins.dst() {
                d.insert(x);
            }
        }
        for s in b.term.srcs() {
            if !d.contains(s) {
                u.insert(s);
            }
        }
        use_.push(u);
        def.push(d);
    }
    let mut live_in: Vec<BitSet> = (0..n).map(|_| BitSet::new(nv)).collect();
    let mut live_out: Vec<BitSet> = (0..n).map(|_| BitSet::new(nv)).collect();
    let order = rpo(f);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().rev() {
            let mut out = BitSet::new(nv);
            for s in f.blocks[b].term.succs() {
                out.union_with(&live_in[s]);
            }
            if out != live_out[b] {
                live_out[b] = out;
                changed = true;
            }
            // in = use ∪ (out − def)
            let mut inn = live_out[b].clone();
            for d in def[b].iter() {
                inn.remove(d);
            }
            inn.union_with(&use_[b]);
            if inn != live_in[b] {
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// Natural-loop information.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// Loop nesting depth of each block (0 = not in a loop).
    pub depth: Vec<u32>,
    /// Loop headers in discovery order, with their body block sets.
    pub loops: Vec<(BlockId, HashSet<BlockId>)>,
    /// Retreating edges whose target does **not** dominate their source.
    /// Non-empty exactly when the CFG is irreducible; such edges form no
    /// natural loop and are excluded from [`loops`](Self::loops) and
    /// [`depth`](Self::depth) rather than mis-counted as one.
    pub irreducible_edges: Vec<(BlockId, BlockId)>,
}

impl LoopInfo {
    /// Whether every cycle in the CFG is a natural loop (single-entry).
    pub fn is_reducible(&self) -> bool {
        self.irreducible_edges.is_empty()
    }
}

/// Immediate dominators of the reachable blocks, by the iterative
/// Cooper–Harvey–Kennedy algorithm over reverse postorder. The entry is
/// its own idom; unreachable blocks get `usize::MAX`.
fn idoms(f: &Function, order: &[BlockId], rpo_idx: &[usize]) -> Vec<usize> {
    let preds = f.predecessors();
    let mut idom = vec![usize::MAX; f.blocks.len()];
    idom[0] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order.iter().skip(1) {
            // Intersect the dominator chains of all processed preds.
            let mut new = usize::MAX;
            for &p in &preds[b] {
                if idom[p] == usize::MAX {
                    continue; // unreachable or not yet processed
                }
                new = if new == usize::MAX {
                    p
                } else {
                    // Walk both chains up (by RPO position) to the meet.
                    let (mut a, mut c) = (p, new);
                    while a != c {
                        while rpo_idx[a] > rpo_idx[c] {
                            a = idom[a];
                        }
                        while rpo_idx[c] > rpo_idx[a] {
                            c = idom[c];
                        }
                    }
                    a
                };
            }
            if new != usize::MAX && idom[b] != new {
                idom[b] = new;
                changed = true;
            }
        }
    }
    idom
}

/// Whether `a` dominates `b` (both reachable), by walking `b`'s idom
/// chain up to the entry.
fn dominates(idom: &[usize], a: BlockId, mut b: BlockId) -> bool {
    loop {
        if a == b {
            return true;
        }
        if b == 0 {
            return false;
        }
        b = idom[b];
    }
}

/// Finds natural loops from dominator-identified back edges: an edge
/// `t → h` is a back edge iff `h` dominates `t`. Retreating edges whose
/// target does not dominate the source mark the CFG as irreducible and
/// are reported in [`LoopInfo::irreducible_edges`] instead of being
/// folded into a bogus natural loop.
pub fn loop_info(f: &Function) -> LoopInfo {
    let n = f.blocks.len();
    let order = rpo(f);
    let mut rpo_idx = vec![usize::MAX; n];
    for (i, &b) in order.iter().enumerate() {
        rpo_idx[b] = i;
    }
    let idom = idoms(f, &order, &rpo_idx);
    let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
    let mut irreducible_edges: Vec<(BlockId, BlockId)> = Vec::new();
    for &t in &order {
        for h in f.blocks[t].term.succs() {
            // Only retreating edges (target not later in RPO) can close a
            // cycle; forward edges never do.
            if rpo_idx[h] > rpo_idx[t] {
                continue;
            }
            if dominates(&idom, h, t) {
                back_edges.push((t, h));
            } else {
                irreducible_edges.push((t, h));
            }
        }
    }
    // Natural loop body of back edge t -> h: h plus everything reaching t
    // without passing through h.
    let preds = f.predecessors();
    let mut loops: Vec<(BlockId, HashSet<BlockId>)> = Vec::new();
    for (t, h) in back_edges {
        let mut body: HashSet<BlockId> = [h, t].into_iter().collect();
        let mut work = vec![t];
        while let Some(b) = work.pop() {
            if b == h {
                continue;
            }
            for &p in &preds[b] {
                if body.insert(p) {
                    work.push(p);
                }
            }
        }
        // Merge loops with the same header (multiple back edges).
        if let Some((_, existing)) = loops.iter_mut().find(|(hh, _)| *hh == h) {
            existing.extend(body);
        } else {
            loops.push((h, body));
        }
    }
    let mut depth = vec![0u32; n];
    for (_, body) in &loops {
        for &b in body {
            depth[b] += 1;
        }
    }
    LoopInfo {
        depth,
        loops,
        irreducible_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn func(src: &str) -> Function {
        lower(&parse(src).unwrap()).unwrap().funcs.remove(0)
    }

    #[test]
    fn bitset_ops() {
        let mut s = BitSet::new(200);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(130));
        assert!(s.contains(130));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 130]);
        assert_eq!(s.len(), 2);
        s.remove(3);
        assert!(!s.contains(3));
        assert!(!s.is_empty());
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = func("fn main() -> int { var a: int = 1; if (a > 0) { a = 2; } return a; }");
        let order = rpo(&f);
        assert_eq!(order[0], 0);
        // Every reachable block appears exactly once.
        let r = reachable(&f);
        assert_eq!(order.len(), r.iter().filter(|&&x| x).count());
    }

    #[test]
    fn liveness_across_loop() {
        let f = func(
            "fn main() -> int {
                 var s: int = 0;
                 var n: int = 10;
                 for (var i: int = 0; i < n; i += 1) { s += i; }
                 return s;
             }",
        );
        let lv = liveness(&f);
        let li = loop_info(&f);
        // The loop header must have s, n, i live-in.
        let (header, _) = li.loops[0];
        assert!(lv.live_in[header].len() >= 3);
    }

    #[test]
    fn loop_depths() {
        let f = func(
            "fn main() -> int {
                 var s: int = 0;
                 for (var i: int = 0; i < 3; i += 1) {
                     for (var j: int = 0; j < 3; j += 1) { s += j; }
                 }
                 return s;
             }",
        );
        let li = loop_info(&f);
        assert_eq!(li.loops.len(), 2);
        let max_depth = *li.depth.iter().max().unwrap();
        assert_eq!(max_depth, 2, "inner loop body is at depth 2");
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = func("fn main() -> int { return 1; }");
        let li = loop_info(&f);
        assert!(li.loops.is_empty());
        assert!(li.depth.iter().all(|&d| d == 0));
        assert!(li.is_reducible());
    }

    #[test]
    fn structured_sources_are_reducible() {
        let f = func(
            "fn main() -> int {
                 var s: int = 0;
                 for (var i: int = 0; i < 3; i += 1) {
                     for (var j: int = 0; j < 3; j += 1) { s += j; }
                 }
                 return s;
             }",
        );
        assert!(loop_info(&f).is_reducible());
    }

    #[test]
    fn irreducible_cycle_is_detected_not_miscounted() {
        // The front end only emits reducible CFGs, so build the classic
        // two-entry cycle by hand:
        //
        //       entry
        //       /   \
        //      a <--> b
        //
        // Neither a nor b dominates the other, so the cycle has no
        // natural-loop header. The old DFS-ancestry test classified the
        // retreating edge as a back edge and reported a spurious loop
        // (whose predecessor walk even swallowed the entry block).
        use crate::ast::Ty;
        use crate::ir::{Function, Term};
        use ch_common::exec::BrCond;

        let mut f = Function::new("irr", None);
        let x = f.new_vreg(Ty::Int);
        let y = f.new_vreg(Ty::Int);
        let a = f.new_block();
        let b = f.new_block();
        f.blocks[0].term = Term::CondBr {
            cond: BrCond::Eq,
            a: x,
            b: y,
            then_: a,
            else_: b,
        };
        f.blocks[a].term = Term::Jump(b);
        f.blocks[b].term = Term::Jump(a);

        let li = loop_info(&f);
        assert!(!li.is_reducible(), "two-entry cycle must be irreducible");
        assert!(
            li.loops.is_empty(),
            "no natural loop exists, got headers {:?}",
            li.loops.iter().map(|(h, _)| *h).collect::<Vec<_>>()
        );
        assert!(
            li.depth.iter().all(|&d| d == 0),
            "no block is in a natural loop: {:?}",
            li.depth
        );
        // The offending edge is reported precisely: the retreating edge
        // of the cycle, whichever direction RPO orders it.
        assert_eq!(li.irreducible_edges.len(), 1);
        let (t, h) = li.irreducible_edges[0];
        assert!((t, h) == (a, b) || (t, h) == (b, a));
    }
}
