#![warn(missing_docs)]

//! # Kern compiler — one source, three instruction sets
//!
//! The paper's compiler (Fig. 10) shares the front end and instruction
//! selection across RISC-V, STRAIGHT, and Clockhands and differs only in
//! the register-assignment phase. This crate mirrors that structure for
//! **Kern**, a C-like kernel language:
//!
//! * [`lexer`] / [`parser`] / [`ast`] — the shared front end,
//! * [`lower`] — typed lowering to a CFG IR ([`ir`]),
//! * [`passes`] — target-independent clean-up,
//! * [`mod@cfg`] — liveness and loop analyses used by all backends,
//! * [`backend`] — the three register-assignment strategies:
//!   * `riscv`: linear-scan allocation onto 31+32 logical registers,
//!   * `straight`: edge-relay distance fixing with a single ring and the
//!     `SPADDi` special stack pointer,
//!   * `clockhands`: hand assignment (Section 6.2) followed by per-hand
//!     distance fixing.
//!
//! ## Quick start
//!
//! ```
//! use ch_compiler::compile;
//!
//! let src = "fn main() -> int {
//!     var s: int = 0;
//!     for (var i: int = 1; i <= 10; i += 1) { s += i; }
//!     return s;
//! }";
//! let out = compile(src)?;
//! // The same program, three ways.
//! assert!(!out.riscv.is_empty() && !out.straight.is_empty() && !out.clockhands.is_empty());
//! # Ok::<(), ch_compiler::CompileError>(())
//! ```

pub mod ast;
pub mod backend;
pub mod cfg;
pub mod ir;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod passes;

use ch_baselines::riscv::RvProgram;
use ch_baselines::straight::StProgram;
use ch_common::EncodingVariant;
use clockhands::Program as ChProgram;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide backend-optimization toggle (default on). See
/// [`set_optimize`].
static OPTIMIZE: AtomicBool = AtomicBool::new(true);

/// Enables or disables the rotating-register backend optimizations
/// (distance-aware scheduling, measured-lifetime hand assignment,
/// demand-driven relays, clobber-only callee saves) process-wide.
///
/// The `figures --no-opt` escape hatch uses this for A/B comparisons;
/// tests that need an explicit configuration should instead call the
/// backends' `compile_with` with an [`backend::opt::OptConfig`].
pub fn set_optimize(on: bool) {
    OPTIMIZE.store(on, Ordering::Relaxed);
}

/// Whether backend optimizations are enabled (see [`set_optimize`]).
pub fn optimize_enabled() -> bool {
    OPTIMIZE.load(Ordering::Relaxed)
}

/// Any error produced along the compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Front-end (lex/parse) failure.
    Parse(parser::ParseError),
    /// Type/lowering failure.
    Lower(lower::LowerError),
    /// Back-end failure (e.g. an unsatisfiable distance constraint).
    Backend(String),
    /// The emitted program failed post-backend static verification
    /// (see the `ch-verify` crate); `detail` holds the rendered errors.
    Verify {
        /// Which backend's output failed ("clockhands", "straight", "riscv").
        isa: &'static str,
        /// Rendered verifier error diagnostics.
        detail: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "parse error: {e}"),
            CompileError::Lower(e) => write!(f, "lowering error: {e}"),
            CompileError::Backend(e) => write!(f, "backend error: {e}"),
            CompileError::Verify { isa, detail } => {
                write!(f, "static verification failed for {isa} output:\n{detail}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<parser::ParseError> for CompileError {
    fn from(e: parser::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<lower::LowerError> for CompileError {
    fn from(e: lower::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// The same Kern program compiled for all three ISAs.
#[derive(Debug, Clone)]
pub struct CompiledSet {
    /// RISC-V-like binary.
    pub riscv: RvProgram,
    /// STRAIGHT binary.
    pub straight: StProgram,
    /// Clockhands binary.
    pub clockhands: ChProgram,
}

/// Builds the optimised IR module for a source text.
///
/// # Errors
///
/// Returns [`CompileError`] on front-end or lowering failure.
pub fn build_ir(src: &str) -> Result<ir::Module, CompileError> {
    let unit = parser::parse(src)?;
    let mut module = lower::lower(&unit)?;
    passes::optimize(&mut module);
    Ok(module)
}

/// Compiles a Kern source for all three ISAs.
///
/// # Errors
///
/// Returns [`CompileError`] for front-end, lowering, or backend failures.
pub fn compile(src: &str) -> Result<CompiledSet, CompileError> {
    let module = build_ir(src)?;
    Ok(CompiledSet {
        riscv: backend::riscv::compile(&module).map_err(CompileError::Backend)?,
        straight: backend::straight::compile(&module).map_err(CompileError::Backend)?,
        clockhands: backend::clockhands::compile(&module).map_err(CompileError::Backend)?,
    })
}

/// Runs the `ch-verify` static verifier over an already-compiled set.
///
/// Lint warnings are tolerated; any error-severity finding means the
/// backends emitted a program whose dataflow or calling conventions are
/// provably broken on some path.
///
/// # Errors
///
/// Returns [`CompileError::Verify`] naming the first failing ISA.
pub fn verify_set(set: &CompiledSet) -> Result<(), CompileError> {
    let opts = ch_verify::Options::default();
    let reports = [
        ch_verify::verify_clockhands(&set.clockhands, &opts),
        ch_verify::verify_straight(&set.straight, &opts),
        ch_verify::verify_riscv(&set.riscv, &opts),
    ];
    for report in reports {
        if !report.is_clean() {
            let detail = report
                .errors()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n");
            return Err(CompileError::Verify {
                isa: report.isa,
                detail,
            });
        }
    }
    Ok(())
}

/// Compiles a Kern source for all three ISAs and statically verifies
/// each emitted program with [`verify_set`].
///
/// # Errors
///
/// Returns [`CompileError`] for front-end, lowering, backend, or
/// verification failures.
pub fn compile_verified(src: &str) -> Result<CompiledSet, CompileError> {
    let set = compile(src)?;
    verify_set(&set)?;
    Ok(set)
}

/// A [`CompiledSet`] run through the `ch-encode` layout pass: real code
/// bytes, literal pools, and byte PCs for each ISA under one
/// [`EncodingVariant`].
#[derive(Debug, Clone)]
pub struct EncodedSet {
    /// Which binary encoding variant the set was laid out under.
    pub variant: EncodingVariant,
    /// RISC-V-like binary, encoded.
    pub riscv: ch_encode::EncodedProgram,
    /// STRAIGHT binary, encoded.
    pub straight: ch_encode::EncodedProgram,
    /// Clockhands binary, encoded.
    pub clockhands: ch_encode::EncodedProgram,
}

/// Lays out a compiled set as real code bytes under `variant`.
///
/// The backends only emit encodable programs (registers below 64, hand
/// distances inside the ring, targets inside the program), so a failure
/// here means a backend bug, reported as a structured
/// [`ch_encode::EncodeError`] rather than a panic.
///
/// # Errors
///
/// Returns the first [`ch_encode::EncodeError`] across the three ISAs.
pub fn encode_set(
    set: &CompiledSet,
    variant: EncodingVariant,
) -> Result<EncodedSet, ch_encode::EncodeError> {
    Ok(EncodedSet {
        variant,
        riscv: ch_encode::encode_riscv(&set.riscv.insts, variant)?,
        straight: ch_encode::encode_straight(&set.straight.insts, variant)?,
        clockhands: ch_encode::encode_clockhands(&set.clockhands.insts, variant)?,
    })
}
