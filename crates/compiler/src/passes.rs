//! IR clean-up passes: unreachable-block pruning, dead-code elimination,
//! local constant folding, and loop-invariant constant hoisting.

use crate::cfg::{loop_info, reachable};
use crate::ir::{Block, Function, Ins, Module, Term, VReg};
use std::collections::{HashMap, HashSet};

/// Runs the standard pass pipeline on every function.
pub fn optimize(module: &mut Module) {
    for f in &mut module.funcs {
        prune_unreachable(f);
        merge_straightline(f);
        fold_constants(f);
        hoist_constants(f);
        fold_constants(f);
        eliminate_dead_code(f);
    }
}

/// Merges `B → S` when `B` ends in an unconditional jump to `S` and `S`
/// has no other predecessor. Fewer blocks mean fewer edge-relay points
/// for the distance backends and fewer jumps for everyone.
pub fn merge_straightline(f: &mut Function) {
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for b in 0..f.blocks.len() {
            let s = match f.blocks[b].term {
                Term::Jump(s) => s,
                _ => continue,
            };
            if s == b || s == 0 || preds[s].len() != 1 {
                continue;
            }
            let succ = std::mem::replace(
                &mut f.blocks[s],
                Block {
                    insts: Vec::new(),
                    term: Term::Jump(s),
                },
            );
            f.blocks[b].insts.extend(succ.insts);
            f.blocks[b].term = succ.term;
            merged = true;
            break;
        }
        if !merged {
            break;
        }
    }
    prune_unreachable(f);
}

/// Hoists constants (`Const`, `FConst`, `GlobalAddr`, `FrameAddr`) that
/// are rematerialised inside loops up to the entry block, deduplicating
/// equal values into one canonical vreg.
///
/// This is what makes the three backends comparable the way the paper
/// intends: RISC keeps the hoisted constant in a register across the loop
/// (Fig. 1(b) holds `N` in `a1`), STRAIGHT must relay it every iteration
/// (Fig. 2(a)), and Clockhands parks it in the `v` hand for free.
pub fn hoist_constants(f: &mut Function) {
    let loops = loop_info(f);
    // Key identifying a constant-producing instruction.
    #[derive(PartialEq, Eq, Hash, Clone, Copy)]
    enum Key {
        Int(i64),
        Real(u64),
        Global(usize),
        Frame(usize),
    }
    fn key_of(ins: &Ins) -> Option<(Key, VReg)> {
        match *ins {
            Ins::Const { dst, val } => Some((Key::Int(val), dst)),
            Ins::FConst { dst, val } => Some((Key::Real(val.to_bits()), dst)),
            Ins::GlobalAddr { dst, id } => Some((Key::Global(id), dst)),
            Ins::FrameAddr { dst, slot } => Some((Key::Frame(slot), dst)),
            _ => None,
        }
    }
    // Definition counts (only single-def dsts can be safely rewritten).
    let mut defs: HashMap<VReg, u32> = HashMap::new();
    for b in &f.blocks {
        for ins in &b.insts {
            if let Some(d) = ins.dst() {
                *defs.entry(d).or_default() += 1;
            }
        }
    }
    // Candidate keys: constants defined (single-def) inside a loop.
    let mut canon: HashMap<Key, VReg> = HashMap::new();
    let mut rewrites: HashMap<VReg, Key> = HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        if loops.depth[bi] == 0 {
            continue;
        }
        for ins in &b.insts {
            if let Some((key, dst)) = key_of(ins) {
                if defs.get(&dst) == Some(&1) {
                    canon.entry(key).or_insert(u32::MAX);
                    rewrites.insert(dst, key);
                }
            }
        }
    }
    if rewrites.is_empty() {
        return;
    }
    // Allocate canonical vregs and prepend their defs to the entry block.
    let mut entry_defs = Vec::new();
    let mut keys: Vec<Key> = canon.keys().copied().collect();
    keys.sort_by_key(|k| match *k {
        Key::Int(v) => (0u8, v as u64),
        Key::Real(b) => (1, b),
        Key::Global(i) => (2, i as u64),
        Key::Frame(s) => (3, s as u64),
    });
    for key in keys {
        let ty = match key {
            Key::Real(_) => crate::ast::Ty::Real,
            _ => crate::ast::Ty::Int,
        };
        let nv = f.new_vreg(ty);
        canon.insert(key, nv);
        entry_defs.push(match key {
            Key::Int(v) => Ins::Const { dst: nv, val: v },
            Key::Real(b) => Ins::FConst {
                dst: nv,
                val: f64::from_bits(b),
            },
            Key::Global(id) => Ins::GlobalAddr { dst: nv, id },
            Key::Frame(slot) => Ins::FrameAddr { dst: nv, slot },
        });
    }
    for (i, d) in entry_defs.into_iter().enumerate() {
        f.blocks[0].insts.insert(i, d);
    }
    // Rewrite: drop the in-loop defs, redirect uses to the canonical vreg.
    let subst = |v: VReg| -> VReg {
        match rewrites.get(&v) {
            Some(k) => canon[k],
            None => v,
        }
    };
    for b in &mut f.blocks {
        b.insts.retain(|ins| match key_of(ins) {
            Some((_, dst)) => !rewrites.contains_key(&dst),
            None => true,
        });
        for ins in &mut b.insts {
            match ins {
                Ins::Bin { a, b, .. } => {
                    *a = subst(*a);
                    *b = subst(*b);
                }
                Ins::BinImm { a, .. } => *a = subst(*a),
                Ins::Load { addr, .. } => *addr = subst(*addr),
                Ins::Store { val, addr, .. } => {
                    *val = subst(*val);
                    *addr = subst(*addr);
                }
                Ins::Call { args, .. } => {
                    for a in args {
                        *a = subst(*a);
                    }
                }
                Ins::Copy { src, .. } => *src = subst(*src),
                _ => {}
            }
        }
        match &mut b.term {
            Term::CondBr { a, b: rb, .. } => {
                *a = subst(*a);
                *rb = subst(*rb);
            }
            Term::Ret(Some(v)) => *v = subst(*v),
            _ => {}
        }
    }
}

/// Removes unreachable blocks (remapping block ids).
pub fn prune_unreachable(f: &mut Function) {
    let keep = reachable(f);
    if keep.iter().all(|&k| k) {
        return;
    }
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(f.blocks.len());
    let mut next = 0usize;
    for &k in &keep {
        remap.push(if k {
            next += 1;
            Some(next - 1)
        } else {
            None
        });
    }
    let mut blocks = Vec::with_capacity(next);
    for (i, b) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let mut b = b;
        b.term = match b.term {
            Term::Jump(t) => Term::Jump(remap[t].expect("target reachable")),
            Term::CondBr {
                cond,
                a,
                b: rb,
                then_,
                else_,
            } => Term::CondBr {
                cond,
                a,
                b: rb,
                then_: remap[then_].expect("target reachable"),
                else_: remap[else_].expect("target reachable"),
            },
            Term::Ret(v) => Term::Ret(v),
        };
        blocks.push(b);
    }
    f.blocks = blocks;
}

/// Removes instructions whose destination is never read anywhere and that
/// have no side effects. Iterates to a fixed point (removing one dead
/// instruction can make its operands dead too).
pub fn eliminate_dead_code(f: &mut Function) {
    loop {
        let mut used: HashSet<VReg> = HashSet::new();
        for b in &f.blocks {
            for ins in &b.insts {
                used.extend(ins.srcs());
            }
            used.extend(b.term.srcs());
        }
        // Multi-definition vregs: a def is only dead if *no* use exists at
        // all (conservative but sound without SSA).
        let mut removed = false;
        for b in &mut f.blocks {
            let before = b.insts.len();
            b.insts.retain(|ins| {
                ins.has_side_effects()
                    || match ins.dst() {
                        Some(d) => used.contains(&d),
                        None => true,
                    }
            });
            removed |= b.insts.len() != before;
        }
        if !removed {
            break;
        }
    }
}

/// Local constant folding: within each block, tracks vregs holding known
/// integer constants (killed at redefinition) and folds `Bin`/`BinImm`
/// over them. Folding is local-only because vregs are not SSA.
pub fn fold_constants(f: &mut Function) {
    for b in &mut f.blocks {
        let mut known: HashMap<VReg, i64> = HashMap::new();
        for ins in &mut b.insts {
            let folded: Option<(VReg, i64)> = match ins {
                Ins::Const { dst, val } => Some((*dst, *val)),
                Ins::Bin { op, dst, a, b } if !op.is_fp() => match (known.get(a), known.get(b)) {
                    (Some(&x), Some(&y)) => {
                        let v = op.eval(x as u64, y as u64) as i64;
                        Some((*dst, v))
                    }
                    _ => None,
                },
                Ins::BinImm { op, dst, a, imm } if !op.is_fp() => match known.get(a) {
                    Some(&x) => {
                        let v = op.eval(x as u64, *imm as i64 as u64) as i64;
                        Some((*dst, v))
                    }
                    None => None,
                },
                _ => None,
            };
            match folded {
                Some((dst, val)) => {
                    *ins = Ins::Const { dst, val };
                    known.insert(dst, val);
                }
                None => {
                    if let Some(d) = ins.dst() {
                        known.remove(&d);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn func_opt(src: &str) -> Function {
        let mut m = lower(&parse(src).unwrap()).unwrap();
        optimize(&mut m);
        m.funcs.remove(0)
    }

    #[test]
    fn unreachable_blocks_pruned() {
        let f = func_opt("fn main() -> int { return 1; var x: int = 2; return x; }");
        // Dead code after return is gone; the function is a single block.
        assert_eq!(f.blocks.len(), 1);
    }

    #[test]
    fn dead_instructions_removed() {
        let f = func_opt(
            "fn main() -> int {
                 var unused: int = 42;
                 var a: int = 7;
                 return a;
             }",
        );
        let n: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
        // Only `a = 7` should survive.
        assert_eq!(n, 1, "got {:?}", f.blocks);
    }

    #[test]
    fn constants_folded_locally() {
        let f = func_opt("fn main() -> int { var a: int = 2 * 3 + 4; return a; }");
        let consts: Vec<i64> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Ins::Const { val, .. } => Some(*val),
                _ => None,
            })
            .collect();
        assert!(consts.contains(&10), "2*3+4 folds to 10: {consts:?}");
    }

    #[test]
    fn stores_and_calls_survive_dce() {
        let f = func_opt(
            "global g: int;
             fn main() -> int { g = 5; return 0; }",
        );
        let has_store = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Ins::Store { .. }));
        assert!(has_store);
    }
}
