//! AST → IR lowering (with type checking).

use crate::ast::{BinOp, ElemTy, Expr, ExprKind, LValue, Stmt, Ty, UnOp, Unit};
use crate::ir::{BlockId, Function, GlobalInfo, Ins, Module, Term, VReg, GLOBAL_BASE};
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};
use std::collections::HashMap;

/// A lowering / type error with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError {
        line,
        message: message.into(),
    })
}

#[derive(Debug, Clone)]
enum Binding {
    Scalar(VReg, Ty),
    LocalArray { slot: usize, elem: ElemTy },
    GlobalArray { id: usize, elem: ElemTy },
    GlobalScalar { id: usize, elem: ElemTy },
}

struct FnSig {
    index: usize,
    params: Vec<Ty>,
    ret: Option<Ty>,
}

struct Ctx<'a> {
    f: Function,
    cur: BlockId,
    scopes: Vec<HashMap<String, Binding>>,
    loops: Vec<(BlockId, BlockId)>, // (continue target, break target)
    sigs: &'a HashMap<String, FnSig>,
    zero: Option<VReg>,
    terminated: bool,
}

impl<'a> Ctx<'a> {
    fn emit(&mut self, ins: Ins) {
        if !self.terminated {
            self.f.blocks[self.cur].insts.push(ins);
        }
    }

    fn set_term(&mut self, t: Term) {
        if !self.terminated {
            self.f.blocks[self.cur].term = t;
            self.terminated = true;
        }
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.terminated = false;
    }

    fn vreg(&mut self, ty: Ty) -> VReg {
        self.f.new_vreg(ty)
    }

    fn zero(&mut self) -> VReg {
        match self.zero {
            Some(z) => z,
            None => {
                let z = self.f.new_vreg(Ty::Int);
                // Define it first thing in the entry block.
                self.f.blocks[0]
                    .insts
                    .insert(0, Ins::Const { dst: z, val: 0 });
                self.zero = Some(z);
                z
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name.to_string(), b);
    }

    fn ty_of(&self, v: VReg) -> Ty {
        self.f.vreg_ty[v as usize]
    }
}

fn int_binop(op: BinOp, line: usize) -> Result<AluOp, LowerError> {
    Ok(match op {
        BinOp::Add => AluOp::Add,
        BinOp::Sub => AluOp::Sub,
        BinOp::Mul => AluOp::Mul,
        BinOp::Div => AluOp::Div,
        BinOp::Rem => AluOp::Rem,
        BinOp::And => AluOp::And,
        BinOp::Or => AluOp::Or,
        BinOp::Xor => AluOp::Xor,
        BinOp::Shl => AluOp::Sll,
        BinOp::Shr => AluOp::Sra,
        other => return err(line, format!("operator {other:?} is not an integer op")),
    })
}

fn real_binop(op: BinOp, line: usize) -> Result<AluOp, LowerError> {
    Ok(match op {
        BinOp::Add => AluOp::Fadd,
        BinOp::Sub => AluOp::Fsub,
        BinOp::Mul => AluOp::Fmul,
        BinOp::Div => AluOp::Fdiv,
        other => return err(line, format!("operator {other:?} is not defined on real")),
    })
}

fn br_cond_of(op: BinOp) -> Option<BrCond> {
    Some(match op {
        BinOp::Eq => BrCond::Eq,
        BinOp::Ne => BrCond::Ne,
        BinOp::Lt => BrCond::Lt,
        BinOp::Le => unreachable!("normalised earlier"),
        BinOp::Gt => unreachable!("normalised earlier"),
        BinOp::Ge => BrCond::Ge,
        _ => return None,
    })
}

/// Whether an immediate form exists for the op.
fn imm_form(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add
            | AluOp::And
            | AluOp::Or
            | AluOp::Xor
            | AluOp::Slt
            | AluOp::Sltu
            | AluOp::Sll
            | AluOp::Srl
            | AluOp::Sra
            | AluOp::Addw
            | AluOp::Sllw
            | AluOp::Srlw
            | AluOp::Sraw
    )
}

const IMM_MIN: i64 = -2048;
const IMM_MAX: i64 = 2047;

impl<'a> Ctx<'a> {
    /// Lowers an expression; `hint` lets callers direct the result into an
    /// existing vreg (used by assignments to avoid copies).
    fn expr(&mut self, e: &Expr, hint: Option<VReg>) -> Result<VReg, LowerError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
                self.emit(Ins::Const { dst, val: *v });
                Ok(dst)
            }
            ExprKind::Real(v) => {
                let dst = hint.unwrap_or_else(|| self.vreg(Ty::Real));
                self.emit(Ins::FConst { dst, val: *v });
                Ok(dst)
            }
            ExprKind::Var(name) => {
                let binding = match self.lookup(name) {
                    Some(b) => b.clone(),
                    None => return err(line, format!("undefined variable `{name}`")),
                };
                match binding {
                    Binding::Scalar(v, ty) => match hint {
                        Some(h) => {
                            if self.ty_of(h) != ty {
                                return err(line, "type mismatch in assignment");
                            }
                            self.emit(Ins::Copy { dst: h, src: v });
                            Ok(h)
                        }
                        None => Ok(v),
                    },
                    Binding::LocalArray { slot, .. } => {
                        let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
                        self.emit(Ins::FrameAddr { dst, slot });
                        Ok(dst)
                    }
                    Binding::GlobalArray { id, .. } | Binding::GlobalScalar { id, .. } => {
                        let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
                        self.emit(Ins::GlobalAddr { dst, id });
                        // A global scalar used as a value loads its content.
                        if let Binding::GlobalScalar { elem, .. } = binding {
                            let (lop, ty) = load_of(elem);
                            let out = hint.unwrap_or_else(|| self.vreg(ty));
                            // reuse dst as address; result type may differ
                            let addr = dst;
                            let out = if hint.is_some() && self.ty_of(out) != ty {
                                return err(line, "type mismatch in assignment");
                            } else if hint.is_some() {
                                out
                            } else {
                                self.vreg(ty)
                            };
                            self.emit(Ins::Load {
                                op: lop,
                                dst: out,
                                addr,
                                off: 0,
                            });
                            return Ok(out);
                        }
                        Ok(dst)
                    }
                }
            }
            ExprKind::Index(base, idx) => {
                let (addr, off, lop, ty) = self.element_addr(base, idx, line)?;
                let dst = match hint {
                    Some(h) => {
                        if self.ty_of(h) != ty {
                            return err(line, "type mismatch in assignment");
                        }
                        h
                    }
                    None => self.vreg(ty),
                };
                self.emit(Ins::Load {
                    op: lop,
                    dst,
                    addr,
                    off,
                });
                Ok(dst)
            }
            ExprKind::Bin(op, a, b) => self.bin(*op, a, b, hint, line),
            ExprKind::Un(op, inner) => {
                let v = self.expr(inner, None)?;
                let ty = self.ty_of(v);
                match op {
                    UnOp::Neg => {
                        let dst = hint.unwrap_or_else(|| self.vreg(ty));
                        match ty {
                            Ty::Int => {
                                let z = self.zero();
                                self.emit(Ins::Bin {
                                    op: AluOp::Sub,
                                    dst,
                                    a: z,
                                    b: v,
                                });
                            }
                            Ty::Real => {
                                let z = self.vreg(Ty::Real);
                                self.emit(Ins::FConst { dst: z, val: 0.0 });
                                self.emit(Ins::Bin {
                                    op: AluOp::Fsub,
                                    dst,
                                    a: z,
                                    b: v,
                                });
                            }
                        }
                        Ok(dst)
                    }
                    UnOp::Not => {
                        if ty != Ty::Int {
                            return err(line, "`!` needs an integer operand");
                        }
                        let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
                        self.emit(Ins::BinImm {
                            op: AluOp::Sltu,
                            dst,
                            a: v,
                            imm: 1,
                        });
                        Ok(dst)
                    }
                    UnOp::BitNot => {
                        if ty != Ty::Int {
                            return err(line, "`~` needs an integer operand");
                        }
                        let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
                        self.emit(Ins::BinImm {
                            op: AluOp::Xor,
                            dst,
                            a: v,
                            imm: -1,
                        });
                        Ok(dst)
                    }
                }
            }
            ExprKind::Call(name, args) => {
                let sig = match self.sigs.get(name) {
                    Some(s) => s,
                    None => return err(line, format!("undefined function `{name}`")),
                };
                if sig.params.len() != args.len() {
                    return err(
                        line,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    );
                }
                let callee = sig.index;
                let ret = sig.ret;
                let param_tys = sig.params.clone();
                let mut argv = Vec::with_capacity(args.len());
                for (a, want) in args.iter().zip(&param_tys) {
                    let v = self.expr(a, None)?;
                    if self.ty_of(v) != *want {
                        return err(a.line, "argument type mismatch");
                    }
                    argv.push(v);
                }
                let dst = match ret {
                    Some(ty) => Some(match hint {
                        Some(h) => {
                            if self.ty_of(h) != ty {
                                return err(line, "type mismatch in assignment");
                            }
                            h
                        }
                        None => self.vreg(ty),
                    }),
                    None => None,
                };
                self.emit(Ins::Call {
                    dst,
                    callee,
                    args: argv,
                });
                match dst {
                    Some(d) => Ok(d),
                    None => err(line, format!("void function `{name}` used as a value")),
                }
            }
            ExprKind::Cast(to, inner) => {
                let v = self.expr(inner, None)?;
                let from = self.ty_of(v);
                if from == *to {
                    return Ok(v);
                }
                let dst = hint.unwrap_or_else(|| self.vreg(*to));
                let op = match to {
                    Ty::Real => AluOp::Fcvtdl,
                    Ty::Int => AluOp::Fcvtld,
                };
                let z = self.zero();
                self.emit(Ins::Bin {
                    op,
                    dst,
                    a: v,
                    b: z,
                });
                Ok(dst)
            }
        }
    }

    /// Lowers a binary operation in value context.
    fn bin(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        hint: Option<VReg>,
        line: usize,
    ) -> Result<VReg, LowerError> {
        // Short-circuit logicals become control flow into a result vreg.
        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            let res = hint.unwrap_or_else(|| self.vreg(Ty::Int));
            let rhs_bb = self.f.new_block();
            let short_bb = self.f.new_block();
            let end_bb = self.f.new_block();
            let e = Expr {
                kind: ExprKind::Bin(op, Box::new(a.clone()), Box::new(b.clone())),
                line,
            };
            // branch on a: LAnd -> (rhs, short), LOr -> (short, rhs)
            match op {
                BinOp::LAnd => self.cond_branch(a, rhs_bb, short_bb)?,
                BinOp::LOr => self.cond_branch(a, short_bb, rhs_bb)?,
                _ => unreachable!(),
            }
            let _ = e;
            self.switch_to(short_bb);
            self.emit(Ins::Const {
                dst: res,
                val: (op == BinOp::LOr) as i64,
            });
            self.set_term(Term::Jump(end_bb));
            self.switch_to(rhs_bb);
            let bv = self.expr(b, None)?;
            if self.ty_of(bv) != Ty::Int {
                return err(line, "logical operator needs integer operands");
            }
            let z = self.zero();
            self.emit(Ins::Bin {
                op: AluOp::Sltu,
                dst: res,
                a: z,
                b: bv,
            });
            self.set_term(Term::Jump(end_bb));
            self.switch_to(end_bb);
            return Ok(res);
        }

        let va = self.expr(a, None)?;
        // Immediate forms: integer literal on the right (or left for
        // commutative ops, handled by the parser producing left-heavy
        // trees rarely enough that we only special-case the right).
        if self.ty_of(va) == Ty::Int {
            if let ExprKind::Int(v) = b.kind {
                if (IMM_MIN..=IMM_MAX).contains(&v) && !op.is_comparison() {
                    if let Ok(alu) = int_binop(op, line) {
                        if imm_form(alu) {
                            let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
                            self.emit(Ins::BinImm {
                                op: alu,
                                dst,
                                a: va,
                                imm: v as i32,
                            });
                            return Ok(dst);
                        }
                        if alu == AluOp::Sub && v > IMM_MIN {
                            let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
                            self.emit(Ins::BinImm {
                                op: AluOp::Add,
                                dst,
                                a: va,
                                imm: -v as i32,
                            });
                            return Ok(dst);
                        }
                    }
                }
            }
        }
        let vb = self.expr(b, None)?;
        let (ta, tb) = (self.ty_of(va), self.ty_of(vb));
        if ta != tb {
            return err(line, "operand types differ (insert an explicit cast)");
        }
        if op.is_comparison() {
            let dst = hint.unwrap_or_else(|| self.vreg(Ty::Int));
            match ta {
                Ty::Int => self.int_compare(op, dst, va, vb),
                Ty::Real => self.real_compare(op, dst, va, vb),
            }
            return Ok(dst);
        }
        let alu = match ta {
            Ty::Int => int_binop(op, line)?,
            Ty::Real => real_binop(op, line)?,
        };
        let dst = hint.unwrap_or_else(|| self.vreg(ta));
        self.emit(Ins::Bin {
            op: alu,
            dst,
            a: va,
            b: vb,
        });
        Ok(dst)
    }

    fn int_compare(&mut self, op: BinOp, dst: VReg, a: VReg, b: VReg) {
        match op {
            BinOp::Lt => self.emit(Ins::Bin {
                op: AluOp::Slt,
                dst,
                a,
                b,
            }),
            BinOp::Gt => self.emit(Ins::Bin {
                op: AluOp::Slt,
                dst,
                a: b,
                b: a,
            }),
            BinOp::Le => {
                self.emit(Ins::Bin {
                    op: AluOp::Slt,
                    dst,
                    a: b,
                    b: a,
                });
                self.emit(Ins::BinImm {
                    op: AluOp::Xor,
                    dst,
                    a: dst,
                    imm: 1,
                });
            }
            BinOp::Ge => {
                self.emit(Ins::Bin {
                    op: AluOp::Slt,
                    dst,
                    a,
                    b,
                });
                self.emit(Ins::BinImm {
                    op: AluOp::Xor,
                    dst,
                    a: dst,
                    imm: 1,
                });
            }
            BinOp::Eq => {
                self.emit(Ins::Bin {
                    op: AluOp::Xor,
                    dst,
                    a,
                    b,
                });
                self.emit(Ins::BinImm {
                    op: AluOp::Sltu,
                    dst,
                    a: dst,
                    imm: 1,
                });
            }
            BinOp::Ne => {
                self.emit(Ins::Bin {
                    op: AluOp::Xor,
                    dst,
                    a,
                    b,
                });
                let z = self.zero();
                self.emit(Ins::Bin {
                    op: AluOp::Sltu,
                    dst,
                    a: z,
                    b: dst,
                });
            }
            _ => unreachable!("not a comparison"),
        }
    }

    fn real_compare(&mut self, op: BinOp, dst: VReg, a: VReg, b: VReg) {
        match op {
            BinOp::Lt => self.emit(Ins::Bin {
                op: AluOp::Flt,
                dst,
                a,
                b,
            }),
            BinOp::Gt => self.emit(Ins::Bin {
                op: AluOp::Flt,
                dst,
                a: b,
                b: a,
            }),
            BinOp::Le => self.emit(Ins::Bin {
                op: AluOp::Fle,
                dst,
                a,
                b,
            }),
            BinOp::Ge => self.emit(Ins::Bin {
                op: AluOp::Fle,
                dst,
                a: b,
                b: a,
            }),
            BinOp::Eq => self.emit(Ins::Bin {
                op: AluOp::Feq,
                dst,
                a,
                b,
            }),
            BinOp::Ne => {
                self.emit(Ins::Bin {
                    op: AluOp::Feq,
                    dst,
                    a,
                    b,
                });
                self.emit(Ins::BinImm {
                    op: AluOp::Xor,
                    dst,
                    a: dst,
                    imm: 1,
                });
            }
            _ => unreachable!("not a comparison"),
        }
    }

    /// Computes the address of `base[idx]`, returning
    /// (addr vreg, byte offset, load op, element scalar type).
    fn element_addr(
        &mut self,
        base: &Expr,
        idx: &Expr,
        line: usize,
    ) -> Result<(VReg, i32, LoadOp, Ty), LowerError> {
        // Element type: known for named arrays, 8-byte int otherwise.
        let elem = match &base.kind {
            ExprKind::Var(name) => match self.lookup(name) {
                Some(Binding::LocalArray { elem, .. })
                | Some(Binding::GlobalArray { elem, .. }) => *elem,
                Some(Binding::Scalar(_, Ty::Int)) => ElemTy::Int,
                Some(Binding::Scalar(_, Ty::Real)) => {
                    return err(line, "cannot index a real scalar")
                }
                Some(Binding::GlobalScalar { .. }) => ElemTy::Int,
                None => return err(line, format!("undefined variable `{name}`")),
            },
            _ => ElemTy::Int,
        };
        let baddr = self.expr(base, None)?;
        if self.ty_of(baddr) != Ty::Int {
            return err(line, "array base must be an integer address");
        }
        let (lop, ty) = load_of(elem);
        // Constant index folds into the offset field.
        if let ExprKind::Int(c) = idx.kind {
            let byte = c * elem.size() as i64;
            if (IMM_MIN..=IMM_MAX).contains(&byte) {
                return Ok((baddr, byte as i32, lop, ty));
            }
        }
        let iv = self.expr(idx, None)?;
        if self.ty_of(iv) != Ty::Int {
            return err(line, "array index must be an integer");
        }
        let scaled = if elem.size() == 8 {
            let s = self.vreg(Ty::Int);
            self.emit(Ins::BinImm {
                op: AluOp::Sll,
                dst: s,
                a: iv,
                imm: 3,
            });
            s
        } else {
            iv
        };
        let addr = self.vreg(Ty::Int);
        self.emit(Ins::Bin {
            op: AluOp::Add,
            dst: addr,
            a: baddr,
            b: scaled,
        });
        Ok((addr, 0, lop, ty))
    }

    /// Lowers a condition in branch context with short-circuiting.
    fn cond_branch(&mut self, e: &Expr, then_: BlockId, else_: BlockId) -> Result<(), LowerError> {
        match &e.kind {
            ExprKind::Bin(BinOp::LAnd, a, b) => {
                let mid = self.f.new_block();
                self.cond_branch(a, mid, else_)?;
                self.switch_to(mid);
                self.cond_branch(b, then_, else_)
            }
            ExprKind::Bin(BinOp::LOr, a, b) => {
                let mid = self.f.new_block();
                self.cond_branch(a, then_, mid)?;
                self.switch_to(mid);
                self.cond_branch(b, then_, else_)
            }
            ExprKind::Un(UnOp::Not, inner) => self.cond_branch(inner, else_, then_),
            ExprKind::Bin(op, a, b) if op.is_comparison() => {
                let va = self.expr(a, None)?;
                let vb = self.expr(b, None)?;
                let (ta, tb) = (self.ty_of(va), self.ty_of(vb));
                if ta != tb {
                    return err(e.line, "operand types differ (insert an explicit cast)");
                }
                if ta == Ty::Real {
                    let t = self.vreg(Ty::Int);
                    self.real_compare(*op, t, va, vb);
                    let z = self.zero();
                    self.set_term(Term::CondBr {
                        cond: BrCond::Ne,
                        a: t,
                        b: z,
                        then_,
                        else_,
                    });
                    return Ok(());
                }
                // Normalise Le/Gt by swapping operands.
                let (cond, x, y) = match op {
                    BinOp::Le => (BrCond::Ge, vb, va),
                    BinOp::Gt => (BrCond::Lt, vb, va),
                    other => (br_cond_of(*other).expect("comparison"), va, vb),
                };
                self.set_term(Term::CondBr {
                    cond,
                    a: x,
                    b: y,
                    then_,
                    else_,
                });
                Ok(())
            }
            _ => {
                let v = self.expr(e, None)?;
                if self.ty_of(v) != Ty::Int {
                    return err(e.line, "condition must be an integer");
                }
                let z = self.zero();
                self.set_term(Term::CondBr {
                    cond: BrCond::Ne,
                    a: v,
                    b: z,
                    then_,
                    else_,
                });
                Ok(())
            }
        }
    }

    fn stmt(&mut self, s: &Stmt, line_hint: usize) -> Result<(), LowerError> {
        match s {
            Stmt::VarDecl { name, ty, init } => {
                let v = self.vreg(*ty);
                if let Some(e) = init {
                    self.expr(e, Some(v))?;
                } else {
                    // Deterministic zero value.
                    match ty {
                        Ty::Int => self.emit(Ins::Const { dst: v, val: 0 }),
                        Ty::Real => self.emit(Ins::FConst { dst: v, val: 0.0 }),
                    }
                }
                self.bind(name, Binding::Scalar(v, *ty));
                Ok(())
            }
            Stmt::ArrDecl { name, elem, len } => {
                let bytes = elem.size() * len;
                let slot = self.f.frame_slots.len();
                self.f.frame_slots.push(bytes);
                self.bind(name, Binding::LocalArray { slot, elem: *elem });
                Ok(())
            }
            Stmt::Assign(lv, e) => match lv {
                LValue::Var(name) => {
                    let binding = match self.lookup(name) {
                        Some(b) => b.clone(),
                        None => return err(e.line, format!("undefined variable `{name}`")),
                    };
                    match binding {
                        Binding::Scalar(v, _) => {
                            self.expr(e, Some(v))?;
                            Ok(())
                        }
                        Binding::GlobalScalar { id, elem } => {
                            let val = self.expr(e, None)?;
                            if self.ty_of(val) != elem.scalar() {
                                return err(e.line, "type mismatch in assignment");
                            }
                            let addr = self.vreg(Ty::Int);
                            self.emit(Ins::GlobalAddr { dst: addr, id });
                            self.emit(Ins::Store {
                                op: store_of(elem),
                                val,
                                addr,
                                off: 0,
                            });
                            Ok(())
                        }
                        _ => err(e.line, format!("cannot assign to array `{name}`")),
                    }
                }
                LValue::Index(base, idx) => {
                    let (addr, off, lop, ty) = self.element_addr(base, idx, e.line)?;
                    let val = self.expr(e, None)?;
                    if self.ty_of(val) != ty {
                        return err(e.line, "type mismatch in array store");
                    }
                    let sop = match lop {
                        LoadOp::Lbu => StoreOp::Sb,
                        _ => StoreOp::Sd,
                    };
                    self.emit(Ins::Store {
                        op: sop,
                        val,
                        addr,
                        off,
                    });
                    Ok(())
                }
            },
            Stmt::If(cond, then_b, else_b) => {
                let then_bb = self.f.new_block();
                let end_bb = self.f.new_block();
                let else_bb = if else_b.is_empty() {
                    end_bb
                } else {
                    self.f.new_block()
                };
                self.cond_branch(cond, then_bb, else_bb)?;
                self.switch_to(then_bb);
                self.scopes.push(HashMap::new());
                for st in then_b {
                    self.stmt(st, line_hint)?;
                }
                self.scopes.pop();
                self.set_term(Term::Jump(end_bb));
                if !else_b.is_empty() {
                    self.switch_to(else_bb);
                    self.scopes.push(HashMap::new());
                    for st in else_b {
                        self.stmt(st, line_hint)?;
                    }
                    self.scopes.pop();
                    self.set_term(Term::Jump(end_bb));
                }
                self.switch_to(end_bb);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let head = self.f.new_block();
                let body_bb = self.f.new_block();
                let end_bb = self.f.new_block();
                self.set_term(Term::Jump(head));
                self.switch_to(head);
                self.cond_branch(cond, body_bb, end_bb)?;
                self.switch_to(body_bb);
                self.loops.push((head, end_bb));
                self.scopes.push(HashMap::new());
                for st in body {
                    self.stmt(st, line_hint)?;
                }
                self.scopes.pop();
                self.loops.pop();
                self.set_term(Term::Jump(head));
                self.switch_to(end_bb);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                self.stmt(init, line_hint)?;
                let head = self.f.new_block();
                let body_bb = self.f.new_block();
                let step_bb = self.f.new_block();
                let end_bb = self.f.new_block();
                self.set_term(Term::Jump(head));
                self.switch_to(head);
                self.cond_branch(cond, body_bb, end_bb)?;
                self.switch_to(body_bb);
                self.loops.push((step_bb, end_bb));
                self.scopes.push(HashMap::new());
                for st in body {
                    self.stmt(st, line_hint)?;
                }
                self.scopes.pop();
                self.loops.pop();
                self.set_term(Term::Jump(step_bb));
                self.switch_to(step_bb);
                self.stmt(step, line_hint)?;
                self.set_term(Term::Jump(head));
                self.scopes.pop();
                self.switch_to(end_bb);
                Ok(())
            }
            Stmt::Return(e) => {
                let want = self.f.ret;
                match (e, want) {
                    (Some(e), Some(ty)) => {
                        let v = self.expr(e, None)?;
                        if self.ty_of(v) != ty {
                            return err(e.line, "return type mismatch");
                        }
                        self.set_term(Term::Ret(Some(v)));
                    }
                    (None, None) => self.set_term(Term::Ret(None)),
                    (Some(e), None) => return err(e.line, "void function returns a value"),
                    (None, Some(_)) => return err(line_hint, "function must return a value"),
                }
                // Code after a return in the same block is unreachable;
                // park it in a fresh dead block.
                let dead = self.f.new_block();
                self.switch_to(dead);
                Ok(())
            }
            Stmt::Break => match self.loops.last() {
                Some(&(_, brk)) => {
                    self.set_term(Term::Jump(brk));
                    let dead = self.f.new_block();
                    self.switch_to(dead);
                    Ok(())
                }
                None => err(line_hint, "`break` outside a loop"),
            },
            Stmt::Continue => match self.loops.last() {
                Some(&(cont, _)) => {
                    self.set_term(Term::Jump(cont));
                    let dead = self.f.new_block();
                    self.switch_to(dead);
                    Ok(())
                }
                None => err(line_hint, "`continue` outside a loop"),
            },
            Stmt::ExprStmt(e) => {
                // Calls to void functions are legal statements.
                if let ExprKind::Call(name, args) = &e.kind {
                    let sig = match self.sigs.get(name) {
                        Some(s) => s,
                        None => return err(e.line, format!("undefined function `{name}`")),
                    };
                    if sig.ret.is_none() {
                        if sig.params.len() != args.len() {
                            return err(e.line, "argument count mismatch");
                        }
                        let callee = sig.index;
                        let param_tys = sig.params.clone();
                        let mut argv = Vec::new();
                        for (a, want) in args.iter().zip(&param_tys) {
                            let v = self.expr(a, None)?;
                            if self.ty_of(v) != *want {
                                return err(a.line, "argument type mismatch");
                            }
                            argv.push(v);
                        }
                        self.emit(Ins::Call {
                            dst: None,
                            callee,
                            args: argv,
                        });
                        return Ok(());
                    }
                }
                self.expr(e, None)?;
                Ok(())
            }
        }
    }
}

fn load_of(elem: ElemTy) -> (LoadOp, Ty) {
    match elem {
        ElemTy::Int => (LoadOp::Ld, Ty::Int),
        ElemTy::Real => (LoadOp::Ld, Ty::Real),
        ElemTy::Byte => (LoadOp::Lbu, Ty::Int),
    }
}

fn store_of(elem: ElemTy) -> StoreOp {
    match elem {
        ElemTy::Int | ElemTy::Real => StoreOp::Sd,
        ElemTy::Byte => StoreOp::Sb,
    }
}

/// Lowers a parsed unit to IR.
///
/// # Errors
///
/// Returns [`LowerError`] for type errors, undefined names, missing
/// `main`, and malformed control flow.
///
/// # Examples
///
/// ```
/// use ch_compiler::{lower::lower, parser::parse};
///
/// let unit = parse("fn main() -> int { return 1 + 2; }")?;
/// let module = lower(&unit)?;
/// assert_eq!(module.funcs.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower(unit: &Unit) -> Result<Module, LowerError> {
    // Lay out globals.
    let mut globals = Vec::new();
    let mut global_bindings: HashMap<String, Binding> = HashMap::new();
    let mut addr = GLOBAL_BASE;
    for g in &unit.globals {
        let size = g.elem.size() * g.len;
        let id = globals.len();
        globals.push(GlobalInfo {
            name: g.name.clone(),
            addr,
            size,
        });
        let binding = if g.scalar {
            Binding::GlobalScalar { id, elem: g.elem }
        } else {
            Binding::GlobalArray { id, elem: g.elem }
        };
        if global_bindings.insert(g.name.clone(), binding).is_some() {
            return err(1, format!("duplicate global `{}`", g.name));
        }
        addr += size.div_ceil(8) * 8;
    }

    // Collect signatures.
    let mut sigs: HashMap<String, FnSig> = HashMap::new();
    for (i, f) in unit.funcs.iter().enumerate() {
        let sig = FnSig {
            index: i,
            params: f.params.iter().map(|p| p.ty).collect(),
            ret: f.ret,
        };
        if sigs.insert(f.name.clone(), sig).is_some() {
            return err(f.line, format!("duplicate function `{}`", f.name));
        }
    }
    if !sigs.contains_key("main") {
        return err(1, "program has no `main` function");
    }

    let mut module = Module {
        funcs: Vec::new(),
        globals,
    };
    for fd in &unit.funcs {
        let mut func = Function::new(&fd.name, fd.ret);
        let mut param_regs = Vec::new();
        for p in &fd.params {
            param_regs.push(func.new_vreg(p.ty));
        }
        func.params = param_regs.clone();
        let mut ctx = Ctx {
            f: func,
            cur: 0,
            scopes: vec![global_bindings.clone(), HashMap::new()],
            loops: Vec::new(),
            sigs: &sigs,
            zero: None,
            terminated: false,
        };
        for (p, vr) in fd.params.iter().zip(&param_regs) {
            ctx.bind(&p.name, Binding::Scalar(*vr, p.ty));
        }
        for s in &fd.body {
            ctx.stmt(s, fd.line)?;
        }
        // Implicit return at the end of a void function; missing return in
        // a value function is caught at runtime only if reached — close it
        // with a zero return for safety.
        if !ctx.terminated {
            match fd.ret {
                None => ctx.set_term(Term::Ret(None)),
                Some(Ty::Int) => {
                    let z = ctx.zero();
                    ctx.set_term(Term::Ret(Some(z)));
                }
                Some(Ty::Real) => {
                    let v = ctx.vreg(Ty::Real);
                    ctx.emit(Ins::FConst { dst: v, val: 0.0 });
                    ctx.set_term(Term::Ret(Some(v)));
                }
            }
        }
        module.funcs.push(ctx.f);
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> Module {
        lower(&parse(src).expect("parses")).expect("lowers")
    }

    #[test]
    fn simple_function() {
        let m = lower_src("fn main() -> int { return 1 + 2; }");
        assert_eq!(m.funcs.len(), 1);
        assert!(matches!(m.funcs[0].blocks[0].term, Term::Ret(Some(_))));
    }

    #[test]
    fn loop_structure() {
        let m = lower_src(
            "fn main() -> int {
                 var s: int = 0;
                 for (var i: int = 0; i < 10; i += 1) { s += i; }
                 return s;
             }",
        );
        // entry + head + body + step + end (+ dead return block)
        assert!(m.funcs[0].blocks.len() >= 5);
    }

    #[test]
    fn immediate_folding() {
        let m = lower_src("fn main() -> int { var a: int = 5; return a + 3; }");
        let has_imm = m.funcs[0].blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Ins::BinImm {
                    op: AluOp::Add,
                    imm: 3,
                    ..
                }
            )
        });
        assert!(has_imm, "a + 3 should lower to addi");
    }

    #[test]
    fn constant_index_folds_into_offset() {
        let m = lower_src(
            "global a: int[10];
             fn main() -> int { return a[3]; }",
        );
        let has_off = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Ins::Load { off: 24, .. }));
        assert!(has_off, "a[3] should use offset 24");
    }

    #[test]
    fn byte_arrays_scale_by_one() {
        let m = lower_src(
            "global b: byte[10];
             fn main() -> int { var i: int = 2; return b[i]; }",
        );
        let shifts = m.funcs[0]
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Ins::BinImm { op: AluOp::Sll, .. }))
            .count();
        assert_eq!(shifts, 0, "byte indexing must not scale");
    }

    #[test]
    fn type_errors_reported() {
        let r = lower(&parse("fn main() -> int { return 1.5; }").unwrap());
        assert!(r.is_err());
        let r = lower(&parse("fn main() -> int { var x: real = 0.0; return x + 1; }").unwrap());
        assert!(r.is_err());
        let r = lower(&parse("fn f() {} ").unwrap());
        assert!(r.is_err(), "missing main");
        let r = lower(&parse("fn main() -> int { break; return 0; }").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn globals_are_laid_out_contiguously() {
        let m = lower_src(
            "global a: int[4];
             global b: byte[3];
             global c: int;
             fn main() -> int { return 0; }",
        );
        assert_eq!(m.globals[0].addr, GLOBAL_BASE);
        assert_eq!(m.globals[1].addr, GLOBAL_BASE + 32);
        // byte[3] rounds up to 8.
        assert_eq!(m.globals[2].addr, GLOBAL_BASE + 40);
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let m = lower_src(
            "fn main() -> int {
                 var a: int = 1;
                 if (a > 0 && a < 10) { return 1; }
                 return 0;
             }",
        );
        assert!(m.funcs[0].blocks.len() >= 4);
    }

    #[test]
    fn value_context_logical_or() {
        let m = lower_src("fn main() -> int { var a: int = 0; return a || 7; }");
        assert!(m.funcs[0].blocks.len() >= 4);
    }
}
