//! The Kern intermediate representation.
//!
//! A function is a control-flow graph of basic blocks over an unlimited
//! set of *virtual registers*. The IR is deliberately **not** SSA:
//! a mutable Kern variable maps to one virtual register that is assigned
//! many times. The distance-based backends (STRAIGHT, Clockhands)
//! reconcile multiple definitions with their edge-relay schemes, which is
//! exactly the role φ-functions would play.

use crate::ast::Ty;
use ch_common::exec::{AluOp, BrCond, LoadOp, StoreOp};

/// A virtual register.
pub type VReg = u32;

/// A basic-block id (index into [`Function::blocks`]).
pub type BlockId = usize;

/// Base address where globals are laid out.
pub const GLOBAL_BASE: u64 = 0x20_0000;

/// One (non-terminator) IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Ins {
    /// Integer constant.
    Const {
        /// Destination.
        dst: VReg,
        /// Value.
        val: i64,
    },
    /// Real constant (stored as bits).
    FConst {
        /// Destination.
        dst: VReg,
        /// Value.
        val: f64,
    },
    /// Address of a global.
    GlobalAddr {
        /// Destination.
        dst: VReg,
        /// Index into [`Module::globals`].
        id: usize,
    },
    /// Address of a stack-frame slot (a local array).
    FrameAddr {
        /// Destination.
        dst: VReg,
        /// Index into [`Function::frame_slots`].
        slot: usize,
    },
    /// Two-register operation.
    Bin {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
    },
    /// Register-immediate operation.
    BinImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        a: VReg,
        /// Immediate.
        imm: i32,
    },
    /// Memory load.
    Load {
        /// Width/extension.
        op: LoadOp,
        /// Destination.
        dst: VReg,
        /// Address register.
        addr: VReg,
        /// Byte offset.
        off: i32,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Value register.
        val: VReg,
        /// Address register.
        addr: VReg,
        /// Byte offset.
        off: i32,
    },
    /// Function call.
    Call {
        /// Result register, if the callee returns a value.
        dst: Option<VReg>,
        /// Index into [`Module::funcs`].
        callee: usize,
        /// Argument registers.
        args: Vec<VReg>,
    },
    /// Register copy (introduced by lowering of `&&`/`||` and by passes).
    Copy {
        /// Destination.
        dst: VReg,
        /// Source.
        src: VReg,
    },
}

impl Ins {
    /// Destination register, if any.
    pub fn dst(&self) -> Option<VReg> {
        match *self {
            Ins::Const { dst, .. }
            | Ins::FConst { dst, .. }
            | Ins::GlobalAddr { dst, .. }
            | Ins::FrameAddr { dst, .. }
            | Ins::Bin { dst, .. }
            | Ins::BinImm { dst, .. }
            | Ins::Load { dst, .. }
            | Ins::Copy { dst, .. } => Some(dst),
            Ins::Store { .. } => None,
            Ins::Call { dst, .. } => dst,
        }
    }

    /// Source registers in operand order.
    pub fn srcs(&self) -> Vec<VReg> {
        match self {
            Ins::Const { .. }
            | Ins::FConst { .. }
            | Ins::GlobalAddr { .. }
            | Ins::FrameAddr { .. } => vec![],
            Ins::Bin { a, b, .. } => vec![*a, *b],
            Ins::BinImm { a, .. } => vec![*a],
            Ins::Load { addr, .. } => vec![*addr],
            Ins::Store { val, addr, .. } => vec![*val, *addr],
            Ins::Call { args, .. } => args.clone(),
            Ins::Copy { src, .. } => vec![*src],
        }
    }

    /// Whether the instruction has side effects (must not be removed).
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Ins::Store { .. } | Ins::Call { .. })
    }
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch.
    CondBr {
        /// Comparison.
        cond: BrCond,
        /// Left operand.
        a: VReg,
        /// Right operand.
        b: VReg,
        /// Target when the comparison holds.
        then_: BlockId,
        /// Target otherwise.
        else_: BlockId,
    },
    /// Function return.
    Ret(Option<VReg>),
}

impl Term {
    /// Successor blocks.
    pub fn succs(&self) -> Vec<BlockId> {
        match *self {
            Term::Jump(b) => vec![b],
            Term::CondBr { then_, else_, .. } => vec![then_, else_],
            Term::Ret(_) => vec![],
        }
    }

    /// Source registers read by the terminator.
    pub fn srcs(&self) -> Vec<VReg> {
        match *self {
            Term::Jump(_) => vec![],
            Term::CondBr { a, b, .. } => vec![a, b],
            Term::Ret(Some(v)) => vec![v],
            Term::Ret(None) => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Ins>,
    /// Terminator.
    pub term: Term,
}

/// An IR function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Virtual registers holding the parameters on entry.
    pub params: Vec<VReg>,
    /// Whether the function returns a value, and its type.
    pub ret: Option<Ty>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Type of each virtual register.
    pub vreg_ty: Vec<Ty>,
    /// Stack-frame slot sizes in bytes (local arrays).
    pub frame_slots: Vec<u64>,
}

impl Function {
    /// Creates an empty function with one (empty) entry block.
    pub fn new(name: impl Into<String>, ret: Option<Ty>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret,
            blocks: vec![Block {
                insts: Vec::new(),
                term: Term::Ret(None),
            }],
            vreg_ty: Vec::new(),
            frame_slots: Vec::new(),
        }
    }

    /// Allocates a fresh virtual register of type `ty`.
    pub fn new_vreg(&mut self, ty: Ty) -> VReg {
        let v = self.vreg_ty.len() as VReg;
        self.vreg_ty.push(ty);
        v
    }

    /// Adds an empty block, returning its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            insts: Vec::new(),
            term: Term::Ret(None),
        });
        self.blocks.len() - 1
    }

    /// Number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.vreg_ty.len()
    }

    /// Predecessor lists for every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for s in blk.term.succs() {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// A global variable's layout.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalInfo {
    /// Name.
    pub name: String,
    /// Absolute byte address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
}

/// A compiled translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Functions; entry is the one named `main`.
    pub funcs: Vec<Function>,
    /// Global layout.
    pub globals: Vec<GlobalInfo>,
}

impl Module {
    /// The index of `main`.
    ///
    /// # Panics
    ///
    /// Panics if the module has no `main` (lowering rejects that earlier).
    pub fn main_index(&self) -> usize {
        self.funcs
            .iter()
            .position(|f| f.name == "main")
            .expect("module has a main function")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vreg_and_block_allocation() {
        let mut f = Function::new("f", Some(Ty::Int));
        let a = f.new_vreg(Ty::Int);
        let b = f.new_vreg(Ty::Real);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(f.vreg_ty[1], Ty::Real);
        let blk = f.new_block();
        assert_eq!(blk, 1);
    }

    #[test]
    fn predecessors() {
        let mut f = Function::new("f", None);
        let b1 = f.new_block();
        let b2 = f.new_block();
        let c = f.new_vreg(Ty::Int);
        f.blocks[0].term = Term::CondBr {
            cond: BrCond::Eq,
            a: c,
            b: c,
            then_: b1,
            else_: b2,
        };
        f.blocks[b1].term = Term::Jump(b2);
        let preds = f.predecessors();
        assert_eq!(preds[b1], vec![0]);
        assert_eq!(preds[b2], vec![0, b1]);
    }

    #[test]
    fn ins_accessors() {
        let st = Ins::Store {
            op: StoreOp::Sd,
            val: 1,
            addr: 2,
            off: 0,
        };
        assert_eq!(st.dst(), None);
        assert_eq!(st.srcs(), vec![1, 2]);
        assert!(st.has_side_effects());
        let add = Ins::Bin {
            op: AluOp::Add,
            dst: 0,
            a: 1,
            b: 2,
        };
        assert_eq!(add.dst(), Some(0));
        assert!(!add.has_side_effects());
    }
}
