//! Abstract syntax tree for Kern.

/// Scalar value types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit signed integer (also used for addresses).
    Int,
    /// 64-bit IEEE double.
    Real,
}

/// Element type of an array declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    /// 8-byte signed integers.
    Int,
    /// 8-byte doubles.
    Real,
    /// 1-byte unsigned integers.
    Byte,
}

impl ElemTy {
    /// Element size in bytes.
    pub fn size(self) -> u64 {
        match self {
            ElemTy::Int | ElemTy::Real => 8,
            ElemTy::Byte => 1,
        }
    }

    /// The scalar type an element loads as.
    pub fn scalar(self) -> Ty {
        match self {
            ElemTy::Real => Ty::Real,
            ElemTy::Int | ElemTy::Byte => Ty::Int,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

impl BinOp {
    /// Whether the operator yields a boolean (0/1) integer.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`): 0 → 1, nonzero → 0.
    Not,
    /// Bitwise not (`~`).
    BitNot,
}

/// An expression, tagged with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Expression node.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: usize,
}

/// Expression node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Variable reference (also yields the base address of an array).
    Var(String),
    /// Array element: `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Conversion `int(e)` or `real(e)`.
    Cast(Ty, Box<Expr>),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element.
    Index(Expr, Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local scalar declaration with optional initialiser.
    VarDecl {
        /// Variable name.
        name: String,
        /// Scalar type.
        ty: Ty,
        /// Initial value.
        init: Option<Expr>,
    },
    /// Local array declaration (stack allocated).
    ArrDecl {
        /// Array name.
        name: String,
        /// Element type.
        elem: ElemTy,
        /// Element count.
        len: u64,
    },
    /// Assignment.
    Assign(LValue, Expr),
    /// `if (c) { .. } else { .. }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) { .. }`.
    While(Expr, Vec<Stmt>),
    /// `for (init; cond; step) { .. }` (init/step are statements).
    For(Box<Stmt>, Expr, Box<Stmt>, Vec<Stmt>),
    /// `return e;` / `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Expression evaluated for side effects (calls).
    ExprStmt(Expr),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Scalar type.
    pub ty: Ty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Return type (`None` = void).
    pub ret: Option<Ty>,
    /// Body.
    pub body: Vec<Stmt>,
    /// 1-based source line of the definition.
    pub line: usize,
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    /// Name.
    pub name: String,
    /// Element type.
    pub elem: ElemTy,
    /// Element count (1 for scalars).
    pub len: u64,
    /// Whether it was declared as a scalar.
    pub scalar: bool,
}

/// A whole Kern translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Unit {
    /// Globals in declaration order.
    pub globals: Vec<GlobalDef>,
    /// Functions in declaration order.
    pub funcs: Vec<FnDef>,
}
