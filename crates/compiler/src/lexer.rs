//! Lexer for Kern, the C-like kernel language compiled to all three ISAs.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real (floating-point) literal.
    Real(f64),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    /// `fn`
    Fn,
    /// `var`
    Var,
    /// `global`
    Global,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `int`
    Int,
    /// `real`
    Real,
    /// `byte`
    Byte,
    /// `void`
    Void,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "fn" => Kw::Fn,
        "var" => Kw::Var,
        "global" => Kw::Global,
        "if" => Kw::If,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "return" => Kw::Return,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        "int" => Kw::Int,
        "real" => Kw::Real,
        "byte" => Kw::Byte,
        "void" => Kw::Void,
        _ => return None,
    })
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises Kern source.
///
/// # Errors
///
/// Returns [`LexError`] on malformed numbers or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match keyword(word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_real = false;
                if c == '0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&src[start + 2..i], 16).map_err(|_| LexError {
                        line,
                        message: format!("bad hex literal `{}`", &src[start..i]),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        line,
                    });
                    continue;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes
                        .get(i + 1)
                        .map(|b| (*b as char).is_ascii_digit())
                        .unwrap_or(false)
                {
                    is_real = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    is_real = true;
                    i += 1;
                    if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                        i += 1;
                    }
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let tok = if is_real {
                    Tok::Real(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad real literal `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| LexError {
                        line,
                        message: format!("bad integer literal `{text}`"),
                    })?)
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                // Longest-match punctuation.
                const PUNCTS: [&str; 33] = [
                    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=", "-=", "*=",
                    "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", "=", "<",
                    ">", "+", "-", "!", ":",
                ];
                const SINGLES: [&str; 7] = ["*", "/", "%", "&", "|", "^", "~"];
                let rest = &src[i..];
                let mut matched = None;
                for p in PUNCTS.iter().chain(SINGLES.iter()) {
                    if rest.starts_with(p) {
                        matched = Some(*p);
                        break;
                    }
                }
                match matched {
                    Some(p) => {
                        out.push(Spanned {
                            tok: Tok::Punct(p),
                            line,
                        });
                        i += p.len();
                    }
                    None => {
                        return Err(LexError {
                            line,
                            message: format!("unexpected character `{c}`"),
                        })
                    }
                }
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn foo"),
            vec![Tok::Kw(Kw::Fn), Tok::Ident("foo".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("0x1f"), vec![Tok::Int(31), Tok::Eof]);
        assert_eq!(toks("1.5"), vec![Tok::Real(1.5), Tok::Eof]);
        assert_eq!(toks("2e3"), vec![Tok::Real(2000.0), Tok::Eof]);
    }

    #[test]
    fn bare_dot_is_an_error() {
        // A dot only appears inside a real literal (digit on both sides).
        assert!(lex("1 . 2").is_err());
    }

    #[test]
    fn multi_char_operators() {
        assert_eq!(
            toks("a <= b << 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("<="),
                Tok::Ident("b".into()),
                Tok::Punct("<<"),
                Tok::Int(2),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let ts = lex("a // comment\nb").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn unknown_char_is_error() {
        assert!(lex("a @ b").is_err());
    }
}
