#![deny(missing_docs)]

//! # ch-serve — a persistent, deduplicating sweep service
//!
//! The experiment suite's unit of work is one `(workload, isa, width,
//! scale, engine)` simulation, and the same configurations come up over
//! and over: Fig. 13 and Fig. 14 share all 75 of them, CI re-runs what
//! a developer just ran locally, and a parameter sweep differs from the
//! previous one in a handful of points. `ch-serve` keeps one process
//! resident so that work is computed **once** and every later request —
//! from any client, in any order, at any concurrency — is a cache read.
//!
//! The layers, bottom-up:
//!
//! * [`key`] — the canonical [`ConfigKey`] every request is normalized
//!   to, so spelling variants (`ch` vs `clockhands`, `8f` vs `w8`)
//!   dedupe to one job;
//! * [`service`] — the [`Service`]: a bounded job queue, a worker pool,
//!   and a per-key job registry generalizing `ch-bench`'s
//!   [`KeyedOnce`](ch_bench::cache::KeyedOnce) design with explicit
//!   states (queued → running → done/failed), so in-flight work is
//!   joined, finished work is served from memory, panics are memoized
//!   as structured errors, and a full queue rejects with a retry hint;
//! * [`server`] — the [`Server`]: a `TcpListener` speaking the JSONL
//!   protocol of [`ch_bench::remote`] (normative spec:
//!   `docs/PROTOCOL.md`), one thread per connection, streaming sweep
//!   results in completion order.
//!
//! The `ch-serve` binary wraps this in `serve` / `submit` / `sweep` /
//! `stats` / `bench` subcommands; `figures --server ADDR` makes the
//! whole figure pipeline a client.

pub mod key;
pub mod server;
pub mod service;

pub use key::{ConfigKey, Engine};
pub use server::Server;
pub use service::{Service, ServiceConfig, SubmitError, SubmitOutcome};
