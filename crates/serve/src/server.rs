//! The TCP front end: JSONL over `std::net`, one thread per connection.
//!
//! Each accepted connection reads newline-delimited requests
//! ([`ch_bench::remote::Request`]) and answers with newline-delimited
//! responses; `docs/PROTOCOL.md` is the normative spec. Responses to a
//! `sweep` stream in **completion order** — a config is written the
//! moment its job finishes, not when the whole sweep does — so a client
//! driving plots sees results as they land, and a slow config never
//! holds up the ones behind it.
//!
//! Malformed lines get a `bad-request` error and the connection stays
//! open; an unparsable *stream* (client gone, broken pipe) just ends
//! the connection thread. Nothing a connection does can take down the
//! listener.

use crate::key::{expand_sweep, ConfigKey};
use crate::service::{Service, SubmitError, SubmitOutcome};
use ch_bench::remote::{ErrorRecord, Request, Response, ResultRecord, SimRequest, SweepRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// A listening sweep server. Binding and accepting are separate so the
/// CLI (and tests) can report the ephemeral port before serving.
pub struct Server {
    listener: TcpListener,
    service: Service,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port `0` picks an ephemeral
    /// one) in front of `service`.
    pub fn bind(addr: &str, service: Service) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections forever, one handler thread each. Accept
    /// errors (transient, per-connection) are logged and skipped.
    pub fn run(self) {
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let service = self.service.clone();
                    std::thread::Builder::new()
                        .name("ch-serve-conn".into())
                        .spawn(move || handle_connection(stream, &service))
                        .expect("spawn connection handler");
                }
                Err(e) => eprintln!("ch-serve: accept failed: {e}"),
            }
        }
    }

    /// Spawns [`Server::run`] on a background thread and returns the
    /// bound address — the embedded-server entry point used by
    /// `ch-serve bench` and the e2e tests.
    pub fn spawn(self) -> std::io::Result<std::net::SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::Builder::new()
            .name("ch-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawn accept loop");
        Ok(addr)
    }
}

fn write_line(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut line = resp.to_line();
    line.push('\n');
    stream.write_all(line.as_bytes())
}

fn handle_connection(stream: TcpStream, service: &Service) {
    stream.set_nodelay(true).ok();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return, // client gone
        };
        if line.trim().is_empty() {
            continue;
        }
        service.count_request();
        let response_err = match Request::parse(&line) {
            Ok(Request::Ping { id }) => write_line(&mut writer, &Response::Pong { id }),
            Ok(Request::Stats { id }) => write_line(
                &mut writer,
                &Response::Stats {
                    id,
                    stats: service.stats(),
                },
            ),
            Ok(Request::Sim(req)) => handle_sim(&mut writer, service, &req),
            Ok(Request::Sweep(req)) => handle_sweep(&mut writer, service, &req),
            Err(msg) => write_line(&mut writer, &Response::Error(bad_request(0, msg))),
        };
        if response_err.is_err() {
            return; // write side closed
        }
    }
}

fn bad_request(id: u64, message: String) -> ErrorRecord {
    ErrorRecord {
        id,
        key: None,
        code: "bad-request".into(),
        message,
        retry_after_ms: None,
    }
}

fn submit_error(id: u64, key: &ConfigKey, e: SubmitError) -> ErrorRecord {
    match e {
        SubmitError::Overloaded { retry_after_ms } => ErrorRecord {
            id,
            key: Some(key.canonical()),
            code: "overloaded".into(),
            message: "pending queue full".into(),
            retry_after_ms: Some(retry_after_ms),
        },
        SubmitError::Poisoned(message) => ErrorRecord {
            id,
            key: Some(key.canonical()),
            code: "poisoned".into(),
            message,
            retry_after_ms: None,
        },
        SubmitError::Timeout => ErrorRecord {
            id,
            key: Some(key.canonical()),
            code: "timeout".into(),
            message: "wait budget expired; the computation continues — resubmit to collect it"
                .into(),
            retry_after_ms: None,
        },
    }
}

fn result_record(id: u64, key: &ConfigKey, out: &SubmitOutcome, wait: Duration) -> ResultRecord {
    ResultRecord {
        id,
        key: key.canonical(),
        cached: out.was_cached(),
        wait_ms: wait.as_secs_f64() * 1e3,
        counters: out.counters().clone(),
    }
}

fn timeout_of(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

fn handle_sim(writer: &mut TcpStream, service: &Service, req: &SimRequest) -> std::io::Result<()> {
    let key = match ConfigKey::parse(
        &req.workload,
        &req.isa,
        &req.width,
        &req.scale,
        &req.encoding,
        &req.engine,
    ) {
        Ok(k) => k,
        Err(msg) => return write_line(writer, &Response::Error(bad_request(req.id, msg))),
    };
    let start = Instant::now();
    let resp = match service.submit(key, timeout_of(req.timeout_ms)) {
        Ok(out) => Response::Result(Box::new(result_record(req.id, &key, &out, start.elapsed()))),
        Err(e) => Response::Error(submit_error(req.id, &key, e)),
    };
    write_line(writer, &resp)
}

fn handle_sweep(
    writer: &mut TcpStream,
    service: &Service,
    req: &SweepRequest,
) -> std::io::Result<()> {
    let keys = match expand_sweep(
        &req.workloads,
        &req.isas,
        &req.widths,
        &req.scale,
        &req.encoding,
        &req.engine,
    ) {
        Ok(keys) => keys,
        Err(msg) => return write_line(writer, &Response::Error(bad_request(req.id, msg))),
    };
    // A sweep is its configs submitted concurrently: each gets its own
    // submitter thread (the dedup registry makes that cheap — at most
    // one computation per distinct key exists regardless), and records
    // stream back the moment each config resolves. A channel serializes
    // the streaming writes onto this connection thread.
    let start = Instant::now();
    let (results, errors) = std::thread::scope(|scope| {
        let (tx, rx) = std::sync::mpsc::channel::<Response>();
        let timeout = timeout_of(req.timeout_ms);
        let id = req.id;
        for key in keys {
            let tx = tx.clone();
            let service = service.clone();
            scope.spawn(move || {
                let resp = match service.submit(key, timeout) {
                    Ok(out) => {
                        Response::Result(Box::new(result_record(id, &key, &out, start.elapsed())))
                    }
                    Err(e) => Response::Error(submit_error(id, &key, e)),
                };
                // The receiver only drops on connection death; nothing
                // to do with the result then.
                let _ = tx.send(resp);
            });
        }
        drop(tx);
        let mut results = 0u64;
        let mut errors = 0u64;
        for resp in rx {
            match resp {
                Response::Result(_) => results += 1,
                _ => errors += 1,
            }
            if write_line(writer, &resp).is_err() {
                // Client went away mid-stream; drain remaining sends
                // (submitter threads still finish via the scope).
                break;
            }
        }
        (results, errors)
    });
    write_line(
        writer,
        &Response::Done {
            id: req.id,
            results,
            errors,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use ch_bench::remote::Client;
    use ch_common::stats::Counters;

    fn spawn_test_server() -> std::net::SocketAddr {
        let service = Service::with_runner(
            ServiceConfig {
                workers: 2,
                queue_cap: 64,
                default_timeout: Duration::from_secs(30),
            },
            Box::new(|k| {
                let mut c = Counters::new();
                c.cycles = k.width.width() as u64 * 100;
                c.committed = 42;
                c
            }),
        );
        Server::bind("127.0.0.1:0", service)
            .expect("bind")
            .spawn()
            .expect("spawn")
    }

    #[test]
    fn ping_sim_stats_roundtrip() {
        let addr = spawn_test_server().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        client.ping().expect("ping");
        let r = client
            .sim(SimRequest {
                id: 0,
                workload: "xz".into(),
                isa: "ch".into(),
                width: "w8".into(),
                scale: "test".into(),
                encoding: "fixed".into(),
                engine: "fast".into(),
                timeout_ms: 0,
            })
            .expect("sim");
        assert_eq!(r.key, "xz/clockhands/8f/test/fixed/fast");
        assert_eq!(r.counters.cycles, 800);
        assert!(!r.cached, "first request computes");
        let r2 = client
            .sim(SimRequest {
                id: 0,
                workload: "XZ".into(),
                isa: "clockhands".into(),
                width: "8f".into(),
                scale: "test".into(),
                encoding: "Fixed".into(),
                engine: "fast".into(),
                timeout_ms: 0,
            })
            .expect("sim");
        assert!(r2.cached, "alias spelling hits the same cache entry");
        assert_eq!(r.counters, r2.counters);
        let stats = client.stats().expect("stats");
        assert_eq!(stats.sim_requests, 2);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn bad_requests_keep_the_connection_alive() {
        let addr = spawn_test_server().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        let err = client
            .sim(SimRequest {
                id: 0,
                workload: "quake".into(),
                isa: "ch".into(),
                width: "8f".into(),
                scale: "test".into(),
                encoding: "fixed".into(),
                engine: "fast".into(),
                timeout_ms: 0,
            })
            .expect_err("unknown workload");
        match err {
            ch_bench::remote::ClientError::Server(e) => {
                assert_eq!(e.code, "bad-request");
                assert!(e.message.contains("quake"), "{}", e.message);
            }
            other => panic!("expected server error, got {other:?}"),
        }
        // Same connection still works.
        client.ping().expect("ping after error");
    }

    #[test]
    fn sweep_streams_and_tallies() {
        let addr = spawn_test_server().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        let mut seen = Vec::new();
        let (results, errors) = client
            .sweep(
                SweepRequest {
                    id: 0,
                    workloads: vec!["xz".into()],
                    isas: vec!["ch".into(), "rv".into()],
                    widths: vec!["4f".into(), "8f".into()],
                    scale: "test".into(),
                    encoding: "compressed".into(),
                    engine: "fast".into(),
                    timeout_ms: 0,
                },
                |rec| seen.push(rec.expect("no errors expected").key),
            )
            .expect("sweep");
        assert_eq!((results, errors), (4, 0));
        seen.sort();
        assert_eq!(
            seen,
            vec![
                "xz/clockhands/4f/test/compressed/fast",
                "xz/clockhands/8f/test/compressed/fast",
                "xz/riscv/4f/test/compressed/fast",
                "xz/riscv/8f/test/compressed/fast",
            ]
        );
    }
}
