//! The `ch-serve` command line.
//!
//! ```text
//! ch-serve serve  [--addr A] [--workers N] [--queue N] [--timeout-ms MS]
//! ch-serve submit [--addr A] --workload W --isa I --width WID
//!                 [--scale S] [--encoding ENC] [--engine E] [--timeout-ms MS]
//! ch-serve sweep  [--addr A] [--workloads W,..] [--isas I,..]
//!                 [--widths WID,..] [--scale S] [--encoding ENC]
//!                 [--engine E] [--timeout-ms MS]
//! ch-serve stats  [--addr A]
//! ch-serve bench  [--scale S] [--workers N]
//! ```
//!
//! `serve` runs the server in the foreground (`--addr 127.0.0.1:0`
//! picks an ephemeral port; the bound address is printed first, on
//! stdout, as `listening on ADDR`). The client subcommands print the
//! server's raw JSONL records to stdout — one JSON object per line,
//! exactly as specified in `docs/PROTOCOL.md` — so they compose with
//! line-oriented tooling. `bench` needs no running server: it embeds
//! one on an ephemeral port, measures a cold full sweep against a warm
//! repeat, writes `BENCH_7.json`, and fails if the warm pass is not at
//! least 5x faster (skip the gate with `CH_BENCH_SKIP_CHECK=1`).

use ch_bench::remote::{Client, SimRequest, SweepRequest};
use ch_serve::{Server, Service, ServiceConfig};
use std::time::{Duration, Instant};

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn usage() -> ! {
    eprintln!(
        "ch-serve <serve|submit|sweep|stats|bench> [options]\n\
         \n\
         serve  [--addr A] [--workers N] [--queue N] [--timeout-ms MS]\n\
         submit [--addr A] --workload W --isa I --width WID [--scale S] [--encoding ENC] [--engine E] [--timeout-ms MS]\n\
         sweep  [--addr A] [--workloads W,..] [--isas I,..] [--widths WID,..] [--scale S] [--encoding ENC] [--engine E] [--timeout-ms MS]\n\
         stats  [--addr A]\n\
         bench  [--scale S] [--workers N]\n\
         \n\
         default --addr {DEFAULT_ADDR}; see docs/PROTOCOL.md for the wire format"
    );
    std::process::exit(2);
}

/// Flag parser for the tiny option vocabulary above: every option takes
/// exactly one value; unknown options abort with usage.
struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: impl Iterator<Item = String>) -> Opts {
        let mut args = args.peekable();
        let mut pairs = Vec::new();
        while let Some(a) = args.next() {
            let Some(name) = a.strip_prefix("--") else {
                eprintln!("unexpected argument `{a}`");
                usage();
            };
            let Some(value) = args.next() else {
                eprintln!("--{name} needs a value");
                usage();
            };
            pairs.push((name.to_string(), value));
        }
        Opts { pairs }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn addr(&self) -> String {
        self.get("addr").unwrap_or(DEFAULT_ADDR).to_string()
    }

    fn number(&self, name: &str, default: u64) -> u64 {
        match self.get(name).map(str::parse) {
            None => default,
            Some(Ok(n)) => n,
            Some(Err(_)) => {
                eprintln!("--{name} needs a non-negative integer");
                usage();
            }
        }
    }

    fn list(&self, name: &str) -> Vec<String> {
        self.get(name)
            .map(|v| v.split(',').map(str::to_string).collect())
            .unwrap_or_default()
    }

    fn require(&self, name: &str) -> String {
        match self.get(name) {
            Some(v) => v.to_string(),
            None => {
                eprintln!("--{name} is required");
                usage();
            }
        }
    }

    fn reject_unknown(&self, known: &[&str]) {
        for (n, _) in &self.pairs {
            if !known.contains(&n.as_str()) {
                eprintln!("unknown option --{n}");
                usage();
            }
        }
    }
}

fn connect(addr: &str) -> Client {
    Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot reach sweep server at {addr}: {e}");
        eprintln!("(start one with: ch-serve serve --addr {addr})");
        std::process::exit(1);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_default();
    let opts = Opts::parse(args);
    match cmd.as_str() {
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "sweep" => cmd_sweep(&opts),
        "stats" => cmd_stats(&opts),
        "bench" => cmd_bench(&opts),
        _ => usage(),
    }
}

fn cmd_serve(opts: &Opts) {
    opts.reject_unknown(&["addr", "workers", "queue", "timeout-ms"]);
    let cfg = ServiceConfig {
        workers: opts.number("workers", ServiceConfig::default().workers as u64) as usize,
        queue_cap: opts.number("queue", ServiceConfig::default().queue_cap as u64) as usize,
        default_timeout: Duration::from_millis(opts.number(
            "timeout-ms",
            ServiceConfig::default().default_timeout.as_millis() as u64,
        )),
    };
    let workers = cfg.workers;
    let server = Server::bind(&opts.addr(), Service::start(cfg)).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", opts.addr());
        std::process::exit(1);
    });
    let addr = server.local_addr().expect("bound address");
    println!("listening on {addr}");
    eprintln!("ch-serve: {workers} worker(s), protocol per docs/PROTOCOL.md");
    server.run();
}

fn cmd_submit(opts: &Opts) {
    opts.reject_unknown(&[
        "addr",
        "workload",
        "isa",
        "width",
        "scale",
        "encoding",
        "engine",
        "timeout-ms",
    ]);
    let mut client = connect(&opts.addr());
    let req = SimRequest {
        id: 0,
        workload: opts.require("workload"),
        isa: opts.require("isa"),
        width: opts.require("width"),
        scale: opts.get("scale").unwrap_or("test").to_string(),
        encoding: opts.get("encoding").unwrap_or("fixed").to_string(),
        engine: opts.get("engine").unwrap_or("fast").to_string(),
        timeout_ms: opts.number("timeout-ms", 0),
    };
    match client.sim(req) {
        Ok(r) => println!(
            "{}",
            ch_bench::remote::Response::Result(Box::new(r)).to_line()
        ),
        Err(ch_bench::remote::ClientError::Server(e)) => {
            println!("{}", ch_bench::remote::Response::Error(e).to_line());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn cmd_sweep(opts: &Opts) {
    opts.reject_unknown(&[
        "addr",
        "workloads",
        "isas",
        "widths",
        "scale",
        "encoding",
        "engine",
        "timeout-ms",
    ]);
    let mut client = connect(&opts.addr());
    let req = SweepRequest {
        id: 0,
        workloads: opts.list("workloads"),
        isas: opts.list("isas"),
        widths: opts.list("widths"),
        scale: opts.get("scale").unwrap_or("test").to_string(),
        encoding: opts.get("encoding").unwrap_or("fixed").to_string(),
        engine: opts.get("engine").unwrap_or("fast").to_string(),
        timeout_ms: opts.number("timeout-ms", 0),
    };
    let outcome = client.sweep(req, |rec| {
        let line = match rec {
            Ok(r) => ch_bench::remote::Response::Result(Box::new(r)).to_line(),
            Err(e) => ch_bench::remote::Response::Error(e).to_line(),
        };
        println!("{line}");
    });
    match outcome {
        Ok((results, errors)) => {
            println!(
                "{}",
                ch_bench::remote::Response::Done {
                    id: client.last_id(),
                    results,
                    errors
                }
                .to_line()
            );
            if errors > 0 {
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

fn cmd_stats(opts: &Opts) {
    opts.reject_unknown(&["addr"]);
    let mut client = connect(&opts.addr());
    match client.stats() {
        Ok(stats) => println!(
            "{}",
            ch_bench::remote::Response::Stats {
                id: client.last_id(),
                stats
            }
            .to_line()
        ),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}

/// The serving benchmark: cold full sweep vs warm repeat, one embedded
/// server, `BENCH_7.json` snapshot. PR 6's `BENCH_6.json` tracks the
/// engines; this file tracks the serving layer on top of them.
const BENCH_PR: u32 = 7;

/// Minimum cold-over-warm wall-time ratio the gate demands: a warm
/// repeat sweep is pure cache reads over TCP, so anything short of 5x
/// means the serving layer itself became the bottleneck.
const WARM_SPEEDUP_FLOOR: f64 = 5.0;

fn timed_sweep(addr: &str, scale: &str) -> (f64, u64) {
    let mut client = connect(addr);
    let t0 = Instant::now();
    let (results, errors) = client
        .sweep(
            SweepRequest {
                id: 0,
                workloads: vec![],
                isas: vec![],
                widths: vec![],
                scale: scale.to_string(),
                encoding: "fixed".to_string(),
                engine: "fast".to_string(),
                timeout_ms: 0,
            },
            |_| {},
        )
        .unwrap_or_else(|e| {
            eprintln!("bench sweep failed: {e}");
            std::process::exit(1);
        });
    assert_eq!(errors, 0, "bench sweep must be error-free");
    (t0.elapsed().as_secs_f64() * 1e3, results)
}

fn cmd_bench(opts: &Opts) {
    opts.reject_unknown(&["scale", "workers"]);
    let scale = opts.get("scale").unwrap_or("small").to_string();
    let cfg = ServiceConfig {
        workers: opts.number("workers", ServiceConfig::default().workers as u64) as usize,
        ..ServiceConfig::default()
    };
    let workers = cfg.workers;
    let addr = Server::bind("127.0.0.1:0", Service::start(cfg))
        .expect("bind ephemeral")
        .spawn()
        .expect("spawn server")
        .to_string();
    eprintln!("bench: embedded server at {addr}, {workers} worker(s), scale {scale}");

    let (cold_ms, configs) = timed_sweep(&addr, &scale);
    eprintln!("bench: cold sweep  {configs} configs in {cold_ms:.1} ms");
    let (warm_ms, warm_configs) = timed_sweep(&addr, &scale);
    eprintln!("bench: warm repeat {warm_configs} configs in {warm_ms:.1} ms");
    assert_eq!(configs, warm_configs);
    let stats = connect(&addr).stats().expect("stats");
    let speedup = cold_ms / warm_ms.max(0.001);

    let json = format!(
        "{{\n  \"pr\": {BENCH_PR},\n  \"scale\": \"{scale}\",\n  \"workers\": {workers},\n  \
         \"configs\": {configs},\n  \"sim_requests\": {},\n  \"computed\": {},\n  \
         \"dedup_ratio\": {:.4},\n  \"cold_wall_ms\": {cold_ms:.3},\n  \
         \"warm_wall_ms\": {warm_ms:.3},\n  \"warm_speedup\": {speedup:.3},\n  \
         \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3}\n}}\n",
        stats.sim_requests, stats.computed, stats.dedup_ratio, stats.p50_ms, stats.p99_ms,
    );
    let path = format!("BENCH_{BENCH_PR}.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("Serving benchmark snapshot ({path})");
    println!(
        "{configs} configs, {workers} workers: cold {:.1} ms, warm {:.1} ms ({speedup:.1}x), \
         dedup ratio {:.2}, p50 {:.1} ms, p99 {:.1} ms",
        cold_ms, warm_ms, stats.dedup_ratio, stats.p50_ms, stats.p99_ms
    );
    if std::env::var_os("CH_BENCH_SKIP_CHECK").is_none() && speedup < WARM_SPEEDUP_FLOOR {
        eprintln!(
            "warm repeat only {speedup:.1}x faster than cold (floor {WARM_SPEEDUP_FLOOR}x); \
             the serving layer is the bottleneck — set CH_BENCH_SKIP_CHECK=1 to snapshot anyway"
        );
        std::process::exit(1);
    }
}
