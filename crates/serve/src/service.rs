//! The deduplicating job engine behind the server.
//!
//! [`Service`] generalizes `ch-bench`'s
//! [`KeyedOnce`](ch_bench::cache::KeyedOnce) ("compute each key exactly
//! once, concurrent callers join the in-flight run") into a form a
//! network server needs:
//!
//! * jobs have **observable states** (queued → running → done/failed),
//!   so a connection thread can stream results in completion order and
//!   time out without cancelling the computation;
//! * the pending queue is **bounded** — a full queue rejects new keys
//!   with a retry hint instead of absorbing unbounded work;
//! * a **panic is a result**: workers run every job under
//!   `catch_unwind`, and a panicking configuration is memoized as
//!   `Failed`, so it answers every later request with the same
//!   structured error instead of being retried or taking the server
//!   down;
//! * hit/join/compute/reject accounting feeds the `/stats` endpoint.
//!
//! Lock order: a worker takes the registry lock, then (released) the
//! completion lock; a waiter takes the completion lock, then nests the
//! registry lock. Since no thread ever holds the registry lock while
//! acquiring the completion lock, the two orders cannot deadlock.

use crate::key::{ConfigKey, Engine};
use ch_common::stats::Counters;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a simulation runs: maps a key to its counters, or panics (the
/// service turns the panic into a memoized `Failed`). The default
/// runner dispatches on [`Engine`]; tests inject slow or failing ones.
pub type Runner = dyn Fn(&ConfigKey) -> Counters + Send + Sync;

/// Tunables for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads computing jobs.
    pub workers: usize,
    /// Maximum jobs queued (not yet running) before new keys are
    /// rejected `overloaded`.
    pub queue_cap: usize,
    /// Wait budget applied when a request carries `timeout_ms: 0`.
    pub default_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            queue_cap: 256,
            default_timeout: Duration::from_secs(600),
        }
    }
}

/// Why a submission did not produce counters.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The pending queue is full; retry after the given backoff.
    Overloaded {
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
    /// This configuration's computation panicked (now or on an earlier
    /// request — failures are memoized, so resubmission is idempotent).
    Poisoned(String),
    /// The wait budget expired. The computation keeps running; a later
    /// resubmission will find the finished result.
    Timeout,
}

/// What [`Service::submit`] found before any waiting happened.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Served from completed work — no waiting, no computation.
    Cached(Counters),
    /// Computed now, or joined in flight; the caller waited for it.
    Computed(Counters),
}

impl SubmitOutcome {
    /// The counters either way.
    pub fn counters(&self) -> &Counters {
        match self {
            SubmitOutcome::Cached(c) | SubmitOutcome::Computed(c) => c,
        }
    }

    /// Whether the result came from the completed-work cache.
    pub fn was_cached(&self) -> bool {
        matches!(self, SubmitOutcome::Cached(_))
    }
}

enum JobState {
    Queued,
    Running,
    // Boxed: counters dwarf the other states, and the registry holds
    // one entry per config ever requested.
    Done(Box<Counters>),
    Failed(String),
}

#[derive(Default)]
struct Registry {
    jobs: HashMap<ConfigKey, JobState>,
    queue: VecDeque<ConfigKey>,
    running: usize,
}

#[derive(Default)]
struct Tallies {
    requests: AtomicU64,
    sim_requests: AtomicU64,
    computed: AtomicU64,
    cache_hits: AtomicU64,
    inflight_joins: AtomicU64,
    rejected: AtomicU64,
    failed: AtomicU64,
    timeouts: AtomicU64,
}

/// Served-request wait times, newest-last, bounded window.
struct Latencies {
    window: VecDeque<f64>,
}

const LATENCY_WINDOW: usize = 4096;

impl Latencies {
    fn record(&mut self, ms: f64) {
        if self.window.len() == LATENCY_WINDOW {
            self.window.pop_front();
        }
        self.window.push_back(ms);
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }
}

struct Inner {
    cfg: ServiceConfig,
    registry: Mutex<Registry>,
    /// Wakes workers when the queue gains a job (or on shutdown).
    work_cv: Condvar,
    /// Completion generation: bumped by a worker after every finished
    /// job; waiters sleep on it instead of polling.
    done_gen: Mutex<u64>,
    done_cv: Condvar,
    tallies: Tallies,
    latencies: Mutex<Latencies>,
    started: Instant,
    runner: Box<Runner>,
    shutdown: AtomicBool,
}

/// The deduplicating sweep engine: a job registry, a bounded queue, and
/// a worker pool. Cheap to clone (`Arc` inside); dropped clones don't
/// stop the workers — call [`Service::shutdown`] for that.
pub struct Service {
    inner: Arc<Inner>,
}

impl Clone for Service {
    fn clone(&self) -> Service {
        Service {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Runs one configuration on the engine it names, through `ch-bench`'s
/// process-wide caches (so all widths of one `(workload, isa, scale)`
/// share a single trace, SoA conversion, and predictor replay).
///
/// Fixed-encoding fast jobs run on the abstract-PC path — byte-identical
/// to the byte-accurate one by the `ch-bench` differential suite, and
/// cache-shared with every figure — while compressed jobs go through the
/// relocated-layout path ([`ch_bench::simulate_encoded`]).
pub fn engine_runner(key: &ConfigKey) -> Counters {
    use ch_common::EncodingVariant;
    match (key.engine, key.encoding) {
        (Engine::Fast, EncodingVariant::Fixed) => {
            ch_bench::simulate(key.workload, key.isa, key.width, key.scale)
        }
        (Engine::Fast, variant) => {
            ch_bench::simulate_encoded(key.workload, key.isa, key.width, key.scale, variant)
        }
        (Engine::Reference, _) => {
            // ConfigKey::validate pins reference jobs to the fixed layout.
            ch_bench::simulate_reference(key.workload, key.isa, key.width, key.scale)
        }
        (Engine::Poison, _) => panic!("poison engine requested for {key}"),
    }
}

impl Service {
    /// Starts the worker pool with the default engine-dispatching
    /// runner.
    pub fn start(cfg: ServiceConfig) -> Service {
        Service::with_runner(cfg, Box::new(engine_runner))
    }

    /// Starts the worker pool with a custom runner (tests inject slow
    /// or panicking ones).
    pub fn with_runner(cfg: ServiceConfig, runner: Box<Runner>) -> Service {
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            registry: Mutex::new(Registry::default()),
            work_cv: Condvar::new(),
            done_gen: Mutex::new(0),
            done_cv: Condvar::new(),
            tallies: Tallies::default(),
            latencies: Mutex::new(Latencies {
                window: VecDeque::with_capacity(LATENCY_WINDOW),
            }),
            started: Instant::now(),
            runner,
            shutdown: AtomicBool::new(false),
        });
        for i in 0..workers {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name(format!("ch-serve-worker-{i}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn worker");
        }
        Service { inner }
    }

    /// The configured tunables.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.cfg
    }

    /// Asks the workers to exit once the queue drains of running work.
    /// Queued-but-unstarted jobs are abandoned in `Queued` state.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
    }

    /// Submits one configuration and waits (up to `timeout`, `None` =
    /// the service default) for its result.
    ///
    /// This is the whole dedup contract in one call: a finished key
    /// returns [`SubmitOutcome::Cached`] immediately; a queued or
    /// running key is joined, never recomputed; a new key is enqueued
    /// unless the queue is full ([`SubmitError::Overloaded`]); a key
    /// whose computation panicked — whenever — returns the memoized
    /// [`SubmitError::Poisoned`]. On [`SubmitError::Timeout`] the
    /// computation continues, so resubmitting the same key later is
    /// idempotent and will find the result.
    pub fn submit(
        &self,
        key: ConfigKey,
        timeout: Option<Duration>,
    ) -> Result<SubmitOutcome, SubmitError> {
        let t = &self.inner.tallies;
        t.sim_requests.fetch_add(1, Ordering::Relaxed);
        let wait_start = Instant::now();
        let enqueue = {
            let mut reg = self.inner.registry.lock().expect("registry lock");
            match reg.jobs.get(&key) {
                Some(JobState::Done(c)) => {
                    t.cache_hits.fetch_add(1, Ordering::Relaxed);
                    self.record_latency(wait_start);
                    return Ok(SubmitOutcome::Cached(c.as_ref().clone()));
                }
                Some(JobState::Failed(msg)) => {
                    t.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Poisoned(msg.clone()));
                }
                Some(JobState::Queued) | Some(JobState::Running) => {
                    t.inflight_joins.fetch_add(1, Ordering::Relaxed);
                    false
                }
                None => {
                    if reg.queue.len() >= self.inner.cfg.queue_cap {
                        t.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(SubmitError::Overloaded {
                            retry_after_ms: self.retry_hint(&reg),
                        });
                    }
                    reg.jobs.insert(key, JobState::Queued);
                    reg.queue.push_back(key);
                    true
                }
            }
        };
        if enqueue {
            self.inner.work_cv.notify_one();
        }
        let budget = timeout.unwrap_or(self.inner.cfg.default_timeout);
        let deadline = wait_start + budget;
        let out = self.wait_for(key, deadline);
        if out.is_ok() {
            self.record_latency(wait_start);
        }
        out
    }

    /// Blocks until `key` reaches a terminal state or `deadline`.
    fn wait_for(&self, key: ConfigKey, deadline: Instant) -> Result<SubmitOutcome, SubmitError> {
        let mut done_gen = self.inner.done_gen.lock().expect("done lock");
        loop {
            {
                let reg = self.inner.registry.lock().expect("registry lock");
                match reg.jobs.get(&key) {
                    Some(JobState::Done(c)) => {
                        return Ok(SubmitOutcome::Computed(c.as_ref().clone()));
                    }
                    Some(JobState::Failed(msg)) => {
                        return Err(SubmitError::Poisoned(msg.clone()));
                    }
                    _ => {}
                }
            }
            let now = Instant::now();
            if now >= deadline {
                self.inner.tallies.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Timeout);
            }
            let (g, _) = self
                .inner
                .done_cv
                .wait_timeout(done_gen, deadline - now)
                .expect("done cv");
            done_gen = g;
        }
    }

    /// A queue-depth-proportional backoff hint for `overloaded`
    /// rejections: deeper backlog, longer suggested retry.
    fn retry_hint(&self, reg: &Registry) -> u64 {
        let backlog = reg.queue.len() + reg.running;
        (25 * backlog as u64 / self.inner.cfg.workers.max(1) as u64).clamp(25, 5_000)
    }

    fn record_latency(&self, since: Instant) {
        let ms = since.elapsed().as_secs_f64() * 1e3;
        self.inner
            .latencies
            .lock()
            .expect("latency lock")
            .record(ms);
    }

    /// Notes one protocol record received (any type) for `/stats`.
    pub fn count_request(&self) {
        self.inner.tallies.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time statistics snapshot in the wire format's shape.
    pub fn stats(&self) -> ch_bench::remote::ServerStats {
        let t = &self.inner.tallies;
        let (queue_depth, running) = {
            let reg = self.inner.registry.lock().expect("registry lock");
            (reg.queue.len() as u64, reg.running as u64)
        };
        let (p50_ms, p99_ms) = {
            let lat = self.inner.latencies.lock().expect("latency lock");
            (lat.percentile(0.50), lat.percentile(0.99))
        };
        let sim_requests = t.sim_requests.load(Ordering::Relaxed);
        let computed = t.computed.load(Ordering::Relaxed);
        let dedup_ratio = if sim_requests == 0 {
            0.0
        } else {
            (1.0 - computed as f64 / sim_requests as f64).max(0.0)
        };
        ch_bench::remote::ServerStats {
            uptime_ms: self.inner.started.elapsed().as_millis() as u64,
            workers: self.inner.cfg.workers as u64,
            requests: t.requests.load(Ordering::Relaxed),
            sim_requests,
            computed,
            cache_hits: t.cache_hits.load(Ordering::Relaxed),
            inflight_joins: t.inflight_joins.load(Ordering::Relaxed),
            rejected: t.rejected.load(Ordering::Relaxed),
            failed: t.failed.load(Ordering::Relaxed),
            timeouts: t.timeouts.load(Ordering::Relaxed),
            queue_depth,
            running,
            p50_ms,
            p99_ms,
            dedup_ratio,
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let key = {
            let mut reg = inner.registry.lock().expect("registry lock");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(key) = reg.queue.pop_front() {
                    reg.jobs.insert(key, JobState::Running);
                    reg.running += 1;
                    break key;
                }
                reg = inner.work_cv.wait(reg).expect("work cv");
            }
        };
        // The runner executes with no service lock held, isolated so a
        // panicking configuration poisons only its own registry entry.
        let result = catch_unwind(AssertUnwindSafe(|| (inner.runner)(&key)));
        inner.tallies.computed.fetch_add(1, Ordering::Relaxed);
        {
            let mut reg = inner.registry.lock().expect("registry lock");
            reg.running -= 1;
            match result {
                Ok(counters) => {
                    reg.jobs.insert(key, JobState::Done(Box::new(counters)));
                }
                Err(panic) => {
                    inner.tallies.failed.fetch_add(1, Ordering::Relaxed);
                    let msg = panic
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| panic.downcast_ref::<&str>().copied())
                        .unwrap_or("computation panicked");
                    reg.jobs
                        .insert(key, JobState::Failed(format!("{key}: {msg}")));
                }
            }
        }
        let mut done_gen = inner.done_gen.lock().expect("done lock");
        *done_gen += 1;
        inner.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::expand_sweep;

    fn counters_with(cycles: u64) -> Counters {
        let mut c = Counters::new();
        c.cycles = cycles;
        c
    }

    fn test_service(workers: usize, queue_cap: usize, runner: Box<Runner>) -> Service {
        Service::with_runner(
            ServiceConfig {
                workers,
                queue_cap,
                default_timeout: Duration::from_secs(30),
            },
            runner,
        )
    }

    fn key(width: &str) -> ConfigKey {
        ConfigKey::parse("xz", "ch", width, "test", "fixed", "fast").unwrap()
    }

    #[test]
    fn dedup_computes_each_key_once() {
        let calls = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&calls);
        let svc = test_service(
            4,
            64,
            Box::new(move |k| {
                c2.fetch_add(1, Ordering::SeqCst);
                counters_with(k.width.width() as u64)
            }),
        );
        let keys = expand_sweep(&[], &[], &[], "test", "fixed", "fast").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let svc = svc.clone();
                let keys = keys.clone();
                s.spawn(move || {
                    for k in keys {
                        let out = svc.submit(k, None).unwrap();
                        assert_eq!(out.counters().cycles, k.width.width() as u64);
                    }
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 75, "one compute per config");
        let stats = svc.stats();
        assert_eq!(stats.sim_requests, 300);
        assert_eq!(stats.computed, 75);
        assert_eq!(stats.cache_hits + stats.inflight_joins, 225);
        assert!(stats.dedup_ratio > 0.74 && stats.dedup_ratio < 0.76);
        svc.shutdown();
    }

    #[test]
    fn panic_is_memoized_not_fatal() {
        let svc = test_service(
            2,
            64,
            Box::new(|k| {
                if k.engine == Engine::Poison {
                    panic!("injected failure");
                }
                counters_with(1)
            }),
        );
        let poisoned = ConfigKey::parse("xz", "ch", "8f", "test", "fixed", "poison").unwrap();
        let e1 = svc.submit(poisoned, None).unwrap_err();
        match &e1 {
            SubmitError::Poisoned(msg) => {
                assert!(msg.contains("injected failure"), "{msg}");
                assert!(msg.contains("xz/clockhands/8f/test/fixed/poison"), "{msg}");
            }
            other => panic!("expected poisoned, got {other:?}"),
        }
        // Idempotent: the second submission gets the same memoized error
        // without re-running anything.
        let e2 = svc.submit(poisoned, None).unwrap_err();
        assert_eq!(e1, e2);
        // And the pool still serves other work.
        let ok = svc.submit(key("4f"), None).unwrap();
        assert_eq!(ok.counters().cycles, 1);
        let stats = svc.stats();
        assert_eq!((stats.failed, stats.computed), (1, 2));
        svc.shutdown();
    }

    #[test]
    fn timeout_leaves_computation_running() {
        let svc = test_service(
            1,
            64,
            Box::new(|_| {
                std::thread::sleep(Duration::from_millis(300));
                counters_with(7)
            }),
        );
        let k = key("8f");
        let e = svc.submit(k, Some(Duration::from_millis(30))).unwrap_err();
        assert_eq!(e, SubmitError::Timeout);
        // Resubmission with budget joins the still-running job and gets
        // the result the first caller never waited for.
        let out = svc.submit(k, Some(Duration::from_secs(10))).unwrap();
        assert_eq!(out.counters().cycles, 7);
        assert_eq!(svc.stats().timeouts, 1);
        assert_eq!(svc.stats().computed, 1, "timeout did not re-run the job");
        svc.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_retry_hint() {
        let svc = test_service(
            1,
            1,
            Box::new(|_| {
                std::thread::sleep(Duration::from_millis(200));
                counters_with(1)
            }),
        );
        // First key occupies the worker, second fills the queue; the
        // third distinct key must be rejected.
        let (k1, k2, k3) = (key("4f"), key("6f"), key("8f"));
        std::thread::scope(|s| {
            let a = svc.clone();
            s.spawn(move || a.submit(k1, None).unwrap());
            // Let the worker adopt k1 before saturating the queue.
            std::thread::sleep(Duration::from_millis(50));
            let b = svc.clone();
            s.spawn(move || b.submit(k2, None).unwrap());
            std::thread::sleep(Duration::from_millis(50));
            match svc.submit(k3, None) {
                Err(SubmitError::Overloaded { retry_after_ms }) => {
                    assert!(retry_after_ms >= 25);
                }
                other => panic!("expected overloaded, got {other:?}"),
            }
            // Joining the queued key is still allowed when full.
            let joined = svc.submit(k2, None).unwrap();
            assert_eq!(joined.counters().cycles, 1);
        });
        assert_eq!(svc.stats().rejected, 1);
        svc.shutdown();
    }
}
