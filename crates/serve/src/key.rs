//! Canonical configuration keys.
//!
//! Every request names its configuration in whatever spelling the
//! client likes (`ch` or `clockhands`, `8f` or `w8` or `8`); the server
//! normalizes to one [`ConfigKey`] before touching the job registry, so
//! all spellings of the same configuration dedupe to one job. The
//! canonical rendering is `workload/isa/width/scale/encoding/engine`,
//! e.g. `xz/clockhands/8f/test/fixed/fast` — this exact string travels
//! in every `result` and `error` record.

use ch_common::config::WidthClass;
use ch_common::{EncodingVariant, IsaKind};
use ch_workloads::{Scale, Workload};

/// Which engine computes the configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Engine {
    /// The fast-path engine (`ch_sim::FastEngine`), via the shared
    /// trace/profile caches — the default.
    Fast,
    /// The reference interpretive simulator (`ch_sim::Simulator`) —
    /// slower, used as ground truth.
    Reference,
    /// A diagnostic engine that always panics. It exists to exercise
    /// the server's panic isolation end-to-end: a poisoned config must
    /// come back as a structured `poisoned` error while the server
    /// keeps serving everything else.
    Poison,
}

impl Engine {
    /// The canonical engine name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Fast => "fast",
            Engine::Reference => "reference",
            Engine::Poison => "poison",
        }
    }

    /// Parses an engine name (`fast`, `reference`/`ref`, `poison`).
    pub fn from_name(s: &str) -> Option<Engine> {
        match s.to_ascii_lowercase().as_str() {
            "fast" => Some(Engine::Fast),
            "reference" | "ref" => Some(Engine::Reference),
            "poison" => Some(Engine::Poison),
            _ => None,
        }
    }
}

/// One fully-normalized simulation configuration — the dedup unit of
/// the whole service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConfigKey {
    /// The workload kernel.
    pub workload: Workload,
    /// The instruction set.
    pub isa: IsaKind,
    /// The Table 2 machine width.
    pub width: WidthClass,
    /// The problem size.
    pub scale: Scale,
    /// The binary encoding variant the code is laid out under.
    pub encoding: EncodingVariant,
    /// The engine that computes it.
    pub engine: Engine,
}

impl ConfigKey {
    /// Normalizes raw request strings into a key, or explains which
    /// field is unknown (the message becomes a `bad-request` error).
    pub fn parse(
        workload: &str,
        isa: &str,
        width: &str,
        scale: &str,
        encoding: &str,
        engine: &str,
    ) -> Result<ConfigKey, String> {
        let key = ConfigKey {
            workload: Workload::from_name(workload).ok_or_else(|| {
                format!("unknown workload `{workload}` (coremark|bzip2|mcf|lbm|xz)")
            })?,
            isa: IsaKind::from_name(isa)
                .ok_or_else(|| format!("unknown isa `{isa}` (riscv|straight|clockhands)"))?,
            width: WidthClass::from_label(width)
                .ok_or_else(|| format!("unknown width `{width}` (4f|6f|8f|12f|16f)"))?,
            scale: Scale::from_name(scale)
                .ok_or_else(|| format!("unknown scale `{scale}` (test|small|full)"))?,
            encoding: EncodingVariant::from_name(encoding)
                .ok_or_else(|| format!("unknown encoding `{encoding}` (fixed|compressed)"))?,
            engine: Engine::from_name(engine)
                .ok_or_else(|| format!("unknown engine `{engine}` (fast|reference|poison)"))?,
        };
        key.validate()?;
        Ok(key)
    }

    /// Rejects combinations no engine computes: the reference simulator
    /// is ground truth for the abstract fixed-width model only.
    fn validate(&self) -> Result<(), String> {
        if self.engine == Engine::Reference && self.encoding != EncodingVariant::Fixed {
            return Err(format!(
                "engine `reference` only supports encoding `fixed`, not `{}`",
                self.encoding
            ));
        }
        Ok(())
    }

    /// The canonical `workload/isa/width/scale/encoding/engine`
    /// rendering.
    pub fn canonical(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}",
            self.workload.name(),
            self.isa.name(),
            self.width.label(),
            self.scale.name(),
            self.encoding.name(),
            self.engine.name()
        )
    }
}

impl std::fmt::Display for ConfigKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// Expands a sweep request's (possibly empty = "all") name lists into
/// the configuration cross product, already normalized and in the
/// cache-friendly order: workload-major, then ISA, then width.
///
/// The order is the batching strategy: all widths of one `(workload,
/// isa)` are adjacent in the queue, so the workers that pick them up
/// share one committed trace, one SoA conversion, and one
/// branch-predictor replay through `ch-bench`'s process-wide caches —
/// only the width-dependent pipeline model runs per job.
pub fn expand_sweep(
    workloads: &[String],
    isas: &[String],
    widths: &[String],
    scale: &str,
    encoding: &str,
    engine: &str,
) -> Result<Vec<ConfigKey>, String> {
    let scale = Scale::from_name(scale)
        .ok_or_else(|| format!("unknown scale `{scale}` (test|small|full)"))?;
    let encoding = EncodingVariant::from_name(encoding)
        .ok_or_else(|| format!("unknown encoding `{encoding}` (fixed|compressed)"))?;
    let engine = Engine::from_name(engine)
        .ok_or_else(|| format!("unknown engine `{engine}` (fast|reference|poison)"))?;
    let workloads: Vec<Workload> = if workloads.is_empty() {
        Workload::ALL.to_vec()
    } else {
        workloads
            .iter()
            .map(|n| Workload::from_name(n).ok_or_else(|| format!("unknown workload `{n}`")))
            .collect::<Result<_, _>>()?
    };
    let isas: Vec<IsaKind> = if isas.is_empty() {
        IsaKind::ALL.to_vec()
    } else {
        isas.iter()
            .map(|n| IsaKind::from_name(n).ok_or_else(|| format!("unknown isa `{n}`")))
            .collect::<Result<_, _>>()?
    };
    let widths: Vec<WidthClass> = if widths.is_empty() {
        WidthClass::ALL.to_vec()
    } else {
        widths
            .iter()
            .map(|n| WidthClass::from_label(n).ok_or_else(|| format!("unknown width `{n}`")))
            .collect::<Result<_, _>>()?
    };
    let mut keys = Vec::with_capacity(workloads.len() * isas.len() * widths.len());
    for &workload in &workloads {
        for &isa in &isas {
            for &width in &widths {
                let key = ConfigKey {
                    workload,
                    isa,
                    width,
                    scale,
                    encoding,
                    engine,
                };
                key.validate()?;
                keys.push(key);
            }
        }
    }
    Ok(keys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aliases_normalize_to_one_key() {
        let a = ConfigKey::parse("xz", "clockhands", "8f", "test", "fixed", "fast").unwrap();
        let b = ConfigKey::parse("XZ", "ch", "w8", "Test", "Fixed", "FAST").unwrap();
        let c = ConfigKey::parse("xz", "c", "8", "test", "fixed", "fast").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.canonical(), "xz/clockhands/8f/test/fixed/fast");
        let z = ConfigKey::parse("xz", "ch", "8f", "test", "compressed", "fast").unwrap();
        assert_ne!(a, z, "encoding is part of the dedup key");
        assert_eq!(z.canonical(), "xz/clockhands/8f/test/compressed/fast");
    }

    #[test]
    fn unknown_fields_name_themselves() {
        let e = ConfigKey::parse("quake", "ch", "8f", "test", "fixed", "fast").unwrap_err();
        assert!(e.contains("quake"), "{e}");
        let e = ConfigKey::parse("xz", "ch", "9f", "test", "fixed", "fast").unwrap_err();
        assert!(e.contains("9f"), "{e}");
        let e = ConfigKey::parse("xz", "ch", "8f", "test", "huffman", "fast").unwrap_err();
        assert!(e.contains("huffman"), "{e}");
        let e = ConfigKey::parse("xz", "ch", "8f", "test", "fixed", "warp").unwrap_err();
        assert!(e.contains("warp"), "{e}");
    }

    #[test]
    fn reference_engine_rejects_compressed_encoding() {
        let e = ConfigKey::parse("xz", "ch", "8f", "test", "compressed", "reference").unwrap_err();
        assert!(e.contains("reference"), "{e}");
        assert!(expand_sweep(&[], &[], &[], "test", "compressed", "reference").is_err());
        // Fixed-width reference remains valid.
        assert!(ConfigKey::parse("xz", "ch", "8f", "test", "fixed", "reference").is_ok());
    }

    #[test]
    fn sweep_expansion_is_width_minor() {
        let keys = expand_sweep(&[], &[], &[], "test", "fixed", "fast").unwrap();
        assert_eq!(keys.len(), 75);
        // All widths of one (workload, isa) are adjacent.
        assert_eq!(keys[0].workload, keys[4].workload);
        assert_eq!(keys[0].isa, keys[4].isa);
        assert_ne!(keys[0].width, keys[1].width);
        assert_ne!(keys[4].isa, keys[5].isa);
        let filtered = expand_sweep(
            &["xz".into(), "mcf".into()],
            &["ch".into()],
            &["4f".into(), "16f".into()],
            "small",
            "fixed",
            "reference",
        )
        .unwrap();
        assert_eq!(filtered.len(), 4);
        assert_eq!(
            filtered[0].canonical(),
            "xz/clockhands/4f/small/fixed/reference"
        );
    }

    #[test]
    fn sweep_expansion_rejects_unknown_names() {
        assert!(expand_sweep(&["nope".into()], &[], &[], "test", "fixed", "fast").is_err());
        assert!(expand_sweep(&[], &[], &[], "huge", "fixed", "fast").is_err());
        assert!(expand_sweep(&[], &[], &[], "test", "huffman", "fast").is_err());
        assert!(expand_sweep(&[], &[], &[], "test", "fixed", "warp").is_err());
    }
}
