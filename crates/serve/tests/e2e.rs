//! End-to-end service tests over real TCP connections and the real
//! simulation engines — the acceptance suite for the sweep service:
//!
//! * a duplicated sweep from concurrent clients returns byte-identical
//!   results and computes each configuration exactly once;
//! * an injected per-config panic (the `poison` engine) comes back as a
//!   structured, memoized error while other in-flight work — and the
//!   server itself — is unaffected;
//! * a client-side timeout abandons the wait, not the computation, and
//!   does not disturb other in-flight requests;
//! * `figures --server ADDR` output is byte-identical to the in-process
//!   run (subprocess test over the simulation-driven experiments).

use ch_bench::remote::{Client, SimRequest, SweepRequest};
use ch_serve::{ConfigKey, Server, Service, ServiceConfig};
use std::collections::BTreeMap;
use std::time::Duration;

fn spawn_engine_server(workers: usize) -> String {
    let service = Service::start(ServiceConfig {
        workers,
        queue_cap: 256,
        default_timeout: Duration::from_secs(300),
    });
    Server::bind("127.0.0.1:0", service)
        .expect("bind ephemeral")
        .spawn()
        .expect("spawn server")
        .to_string()
}

/// The paper-sweep dedup contract, over the wire: two clients submit
/// the same sweep concurrently; every configuration is computed once,
/// and both clients receive byte-identical counters.
#[test]
fn concurrent_duplicate_sweeps_dedupe_and_match() {
    let addr = spawn_engine_server(4);
    let run_sweep = |addr: String| -> BTreeMap<String, String> {
        let mut client = Client::connect(&addr).expect("connect");
        let mut results = BTreeMap::new();
        let (n, errors) = client
            .sweep(
                SweepRequest {
                    id: 0,
                    workloads: vec!["xz".into()],
                    isas: vec![],
                    widths: vec!["4f".into(), "8f".into()],
                    scale: "test".into(),
                    encoding: "fixed".into(),
                    engine: "fast".into(),
                    timeout_ms: 0,
                },
                |rec| {
                    let r = rec.expect("sweep must not error");
                    results.insert(r.key.clone(), r.counters.to_json());
                },
            )
            .expect("sweep");
        assert_eq!((n, errors), (6, 0), "xz x 3 ISAs x 2 widths");
        results
    };
    let (a, b) = std::thread::scope(|s| {
        let ha = s.spawn(|| run_sweep(addr.clone()));
        let hb = s.spawn(|| run_sweep(addr.clone()));
        (ha.join().expect("client a"), hb.join().expect("client b"))
    });
    assert_eq!(a.len(), 6);
    assert_eq!(a, b, "both clients must see byte-identical counters");

    let stats = Client::connect(&addr)
        .expect("connect")
        .stats()
        .expect("stats");
    assert_eq!(stats.sim_requests, 12, "6 configs from each client");
    assert_eq!(stats.computed, 6, "each config computed exactly once");
    assert_eq!(
        stats.cache_hits + stats.inflight_joins,
        6,
        "the duplicate half was served without computing"
    );
    assert!(
        (stats.dedup_ratio - 0.5).abs() < 1e-9,
        "dedup ratio was {}",
        stats.dedup_ratio
    );
}

/// Panic isolation: a poisoned configuration answers with a structured
/// error — the same one every time, without recomputing — while the
/// worker pool keeps serving, including requests in flight while the
/// panic happens.
#[test]
fn poisoned_config_is_isolated_and_idempotent() {
    let addr = spawn_engine_server(2);
    let poison = |client: &mut Client| {
        client.sim(SimRequest {
            id: 0,
            workload: "xz".into(),
            isa: "ch".into(),
            width: "8f".into(),
            scale: "test".into(),
            encoding: "fixed".into(),
            engine: "poison".into(),
            timeout_ms: 0,
        })
    };
    // Submit the poison and a healthy config concurrently: the healthy
    // one must succeed while the poison panics next to it.
    let healthy = std::thread::spawn({
        let addr = addr.clone();
        move || {
            Client::connect(&addr).expect("connect").sim(SimRequest {
                id: 0,
                workload: "coremark".into(),
                isa: "rv".into(),
                width: "4f".into(),
                scale: "test".into(),
                encoding: "fixed".into(),
                engine: "fast".into(),
                timeout_ms: 0,
            })
        }
    });
    let mut client = Client::connect(&addr).expect("connect");
    let e1 = match poison(&mut client) {
        Err(ch_bench::remote::ClientError::Server(e)) => e,
        other => panic!("expected poisoned error, got {other:?}"),
    };
    assert_eq!(e1.code, "poisoned");
    assert_eq!(
        e1.key.as_deref(),
        Some("xz/clockhands/8f/test/fixed/poison")
    );
    assert!(e1.message.contains("poison engine"), "{}", e1.message);
    let healthy = healthy.join().expect("healthy thread");
    assert!(healthy.is_ok(), "in-flight request survived the panic");

    // Idempotent resubmission: the memoized failure, not a re-run.
    let e2 = match poison(&mut client) {
        Err(ch_bench::remote::ClientError::Server(e)) => e,
        other => panic!("expected poisoned error, got {other:?}"),
    };
    assert_eq!((e2.code.as_str(), &e2.message), ("poisoned", &e1.message));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.failed, 1, "the poison ran exactly once");
    // The same connection — and the server — are still fully alive.
    client.ping().expect("ping after poison");
}

/// A client-side timeout returns a structured `timeout` error without
/// cancelling the computation or disturbing other in-flight requests;
/// resubmission collects the finished result.
#[test]
fn timeout_abandons_wait_not_computation() {
    // Injected runner: one width is slow, everything else instant.
    let service = Service::with_runner(
        ServiceConfig {
            workers: 2,
            queue_cap: 64,
            default_timeout: Duration::from_secs(30),
        },
        Box::new(|k: &ConfigKey| {
            if k.width.label() == "4f" {
                std::thread::sleep(Duration::from_millis(400));
            }
            let mut c = ch_sim::Counters::new();
            c.cycles = k.width.width() as u64;
            c
        }),
    );
    let addr = Server::bind("127.0.0.1:0", service)
        .expect("bind")
        .spawn()
        .expect("spawn")
        .to_string();
    let slow = SimRequest {
        id: 0,
        workload: "xz".into(),
        isa: "ch".into(),
        width: "4f".into(),
        scale: "test".into(),
        encoding: "fixed".into(),
        engine: "fast".into(),
        timeout_ms: 40,
    };
    // A fast request rides alongside the doomed slow one.
    let other = std::thread::spawn({
        let addr = addr.clone();
        move || {
            Client::connect(&addr).expect("connect").sim(SimRequest {
                id: 0,
                workload: "xz".into(),
                isa: "ch".into(),
                width: "16f".into(),
                scale: "test".into(),
                encoding: "fixed".into(),
                engine: "fast".into(),
                timeout_ms: 0,
            })
        }
    });
    let mut client = Client::connect(&addr).expect("connect");
    let e = match client.sim(slow.clone()) {
        Err(ch_bench::remote::ClientError::Server(e)) => e,
        other => panic!("expected timeout, got {other:?}"),
    };
    assert_eq!(e.code, "timeout");
    assert_eq!(e.key.as_deref(), Some("xz/clockhands/4f/test/fixed/fast"));
    let other = other.join().expect("thread").expect("fast request");
    assert_eq!(other.counters.cycles, 16, "in-flight request unaffected");

    // The computation kept running; a patient resubmission collects it.
    let r = client
        .sim(SimRequest {
            timeout_ms: 10_000,
            ..slow
        })
        .expect("resubmission");
    assert_eq!(r.counters.cycles, 4);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.computed, 2, "slow config ran once, not twice");
}

/// Locates (building if necessary) the `figures` binary next to the
/// `ch-serve` one, matching this test's profile.
fn figures_binary() -> std::path::PathBuf {
    let serve_bin = std::path::PathBuf::from(env!("CARGO_BIN_EXE_ch-serve"));
    let figures = serve_bin.with_file_name("figures");
    let repo_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf();
    let mut build = std::process::Command::new(env!("CARGO"));
    build.args(["build", "-p", "ch-bench", "--bin", "figures"]);
    if serve_bin
        .parent()
        .and_then(|d| d.file_name())
        .is_some_and(|p| p == "release")
    {
        build.arg("--release");
    }
    let status = build
        .current_dir(&repo_root)
        .status()
        .expect("run cargo build");
    assert!(status.success(), "building figures failed");
    assert!(figures.exists(), "no figures binary at {figures:?}");
    figures
}

/// `figures --server` must render byte-identical output to the
/// in-process run. Covers the simulation-driven experiments (fig13,
/// fig14, stalls exercise all 75 sweep configurations); the full-suite
/// release-build comparison runs in CI via `just serve-bench`.
#[test]
fn figures_against_server_is_byte_identical() {
    let figures = figures_binary();
    let addr = spawn_engine_server(4);
    let run = |extra: &[&str]| -> Vec<u8> {
        let out = std::process::Command::new(&figures)
            .args(["--scale", "test", "--jobs", "2"])
            .args(extra)
            .args(["fig13", "fig14", "stalls"])
            .output()
            .expect("run figures");
        assert!(
            out.status.success(),
            "figures {extra:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let local = run(&[]);
    let served = run(&["--server", &addr]);
    assert!(!local.is_empty());
    assert_eq!(
        local, served,
        "figures --server output diverged from the in-process run"
    );
    // And the server really carried the simulations: 75 sweep configs
    // computed there, not in the client process.
    let stats = Client::connect(&addr)
        .expect("connect")
        .stats()
        .expect("stats");
    assert_eq!(stats.computed, 75, "server computed the full sweep");
    assert!(stats.sim_requests >= 75);
}
