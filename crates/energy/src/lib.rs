#![warn(missing_docs)]

//! # ch-energy — McPAT-style per-event energy model (Fig. 14)
//!
//! Multiplies the simulator's event counts ([`ch_common::stats::Counters`])
//! by per-event energies to produce the per-component stacks of the
//! paper's Fig. 14. Absolute joules are not the point (the paper used
//! McPAT's 22 nm models); what matters — and what this model encodes — is
//! the *scaling structure*:
//!
//! * The **renamer** (RISC only) reads/writes a multi-ported RMT whose
//!   per-access energy grows with the port count (∝ 3·width, since the
//!   area of a multi-port RAM grows with the square of its ports), plus
//!   dependency-check comparisons that the simulator already counts
//!   quadratically in width, plus ~570-bit checkpoints per branch.
//! * The rename-free ISAs instead pay a tiny register-pointer update
//!   (a prefix-sum tree, O(log width) per slot) and 36/70-bit
//!   checkpoints (Table 1).
//! * Everything else (fetch, decode, scheduler, execution, caches) is
//!   identical hardware across the three ISAs, so their energy scales
//!   with the *instruction counts* — which is how STRAIGHT's extra
//!   relay instructions turn into extra energy.

use ch_common::config::MachineConfig;
use ch_common::stats::Counters;
use ch_common::IsaKind;

/// Component labels in the Fig. 14 legend order (bottom to top).
pub const COMPONENTS: [&str; 11] = [
    "BrPred",
    "I$+ITLB",
    "Fetcher",
    "Decoder",
    "Renamer",
    "Scheduler",
    "ExUnit+RF",
    "LSQ",
    "ROB",
    "D$+DTLB",
    "L2$",
];

/// Energy per component, in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyBreakdown {
    /// (component, pJ) in [`COMPONENTS`] order.
    pub components: Vec<(&'static str, f64)>,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total(&self) -> f64 {
        self.components.iter().map(|(_, e)| e).sum()
    }

    /// Energy of one component.
    pub fn component(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, e)| *e)
            .unwrap_or(0.0)
    }
}

/// Computes the energy breakdown for one simulated run.
///
/// # Examples
///
/// ```
/// use ch_common::config::{MachineConfig, WidthClass};
/// use ch_common::stats::Counters;
/// use ch_common::IsaKind;
/// use ch_energy::energy;
///
/// let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Riscv);
/// let mut c = Counters::new();
/// c.cycles = 1000;
/// c.committed = 2000;
/// c.rmt_reads = 4000;
/// let e = energy(&cfg, &c);
/// assert!(e.component("Renamer") > 0.0);
/// ```
pub fn energy(cfg: &MachineConfig, c: &Counters) -> EnergyBreakdown {
    let w = cfg.front_width as f64;
    let cyc = c.cycles as f64;

    // --- Branch prediction ---
    let brpred = 4.0 * c.branch_preds as f64 + 1.2 * c.fetch_groups as f64 + 0.8 * cyc;

    // --- Instruction cache (wider fetch reads more bits per access) ---
    let icache =
        (12.0 + 1.6 * w) * c.fetch_groups as f64 + 60.0 * c.icache_misses as f64 + 1.0 * cyc;

    // --- Fetch / decode (per instruction through the front end) ---
    let fetcher = 1.5 * c.fetched as f64 + 0.5 * cyc;
    let decoder = 2.0 * c.decoded as f64 + 0.5 * cyc;

    // --- Physical-register allocation stage ---
    let renamer = match cfg.isa {
        IsaKind::Riscv => {
            // RMT: per-access energy grows with port count (3 per slot).
            let ports = 3.0 * w;
            let rmt = 0.105 * ports * (c.rmt_reads + c.rmt_writes) as f64;
            let dcl = 0.085 * c.dcl_comparisons as f64;
            let freelist = 0.19 * c.freelist_ops as f64;
            // Checkpoints: ~570 bits copied per branch.
            let ckpt = 0.0066 * c.checkpoint_bits as f64 * c.checkpoints as f64;
            let leak = (0.38 + 0.17 * w) * cyc;
            rmt + dcl + freelist + ckpt + leak
        }
        IsaKind::Straight | IsaKind::Clockhands => {
            // RP calculation: prefix-sum tree, O(log W) per slot.
            let rp = (0.3 + 0.1 * w.log2()) * c.rp_updates as f64;
            let ckpt = 0.0066 * c.checkpoint_bits as f64 * c.checkpoints as f64;
            let leak = 0.2 * cyc;
            rp + ckpt + leak
        }
    };

    // --- Scheduler (dispatch writes, wakeup broadcasts, selects) ---
    let scheduler = 4.0 * c.dispatched as f64
        + 1.4 * c.sched_wakeups as f64
        + 2.5 * c.issued as f64
        + 1.2 * cyc;

    // --- Execution units + register file ---
    let exunit = 5.5 * c.int_ops as f64
        + 13.0 * c.fp_ops as f64
        + 1.6 * (c.regfile_reads + c.regfile_writes) as f64
        + 2.0 * cyc;

    // --- Load-store queue ---
    let lsq = 7.0 * c.lsq_searches as f64
        + 2.0 * (c.loads + c.stores) as f64
        + 3.0 * c.stl_forwards as f64
        + 0.8 * cyc;

    // --- Reorder buffer ---
    let rob = 2.2 * c.rob_writes as f64 + 1.4 * c.rob_reads as f64 + 1.0 * cyc;

    // --- Data cache + L2 ---
    let dcache = 18.0 * c.dcache_accesses as f64 + 30.0 * c.dcache_misses as f64 + 1.5 * cyc;
    let l2 = 45.0 * (c.l2_accesses + c.prefetches) as f64 + 180.0 * c.l2_misses as f64 + 2.5 * cyc;

    EnergyBreakdown {
        components: vec![
            ("BrPred", brpred),
            ("I$+ITLB", icache),
            ("Fetcher", fetcher),
            ("Decoder", decoder),
            ("Renamer", renamer),
            ("Scheduler", scheduler),
            ("ExUnit+RF", exunit),
            ("LSQ", lsq),
            ("ROB", rob),
            ("D$+DTLB", dcache),
            ("L2$", l2),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_common::config::WidthClass;

    fn fake_counters(insts: u64, isa: IsaKind, width: f64) -> Counters {
        let mut c = Counters::new();
        c.cycles = insts / 2;
        c.committed = insts;
        c.fetched = insts;
        c.fetch_groups = insts / width as u64;
        c.decoded = insts;
        c.allocated = insts;
        c.dispatched = insts;
        c.issued = insts;
        c.sched_wakeups = insts;
        c.regfile_reads = insts * 2;
        c.regfile_writes = insts * 3 / 4;
        c.int_ops = insts;
        c.rob_writes = insts;
        c.rob_reads = insts;
        c.branch_preds = insts / 6;
        c.checkpoints = insts / 5;
        match isa {
            IsaKind::Riscv => {
                c.rmt_reads = insts * 2;
                c.rmt_writes = insts * 3 / 4;
                c.dcl_comparisons = insts * (width as u64 - 1) * 3 / 2;
                c.freelist_ops = insts * 3 / 4;
                c.checkpoint_bits = 630;
            }
            IsaKind::Straight => {
                c.rp_updates = insts;
                c.checkpoint_bits = 75;
            }
            IsaKind::Clockhands => {
                c.rp_updates = insts * 3 / 4;
                c.checkpoint_bits = 44;
            }
        }
        c
    }

    #[test]
    fn renamer_dominates_growth_with_width() {
        // The renamer share of RISC energy must grow with width.
        let share = |w: WidthClass| {
            let cfg = MachineConfig::preset(w, IsaKind::Riscv);
            let c = fake_counters(1_000_000, IsaKind::Riscv, cfg.front_width as f64);
            let e = energy(&cfg, &c);
            e.component("Renamer") / e.total()
        };
        let s4 = share(WidthClass::W4);
        let s8 = share(WidthClass::W8);
        let s16 = share(WidthClass::W16);
        assert!(
            s4 < s8 && s8 < s16,
            "renamer share must grow: {s4:.3} {s8:.3} {s16:.3}"
        );
        assert!(
            s16 > 0.15,
            "at 16-fetch the renamer should be significant ({s16:.3})"
        );
    }

    #[test]
    fn rename_free_isa_pays_far_less_for_allocation() {
        let cfg_r = MachineConfig::preset(WidthClass::W8, IsaKind::Riscv);
        let cfg_c = MachineConfig::preset(WidthClass::W8, IsaKind::Clockhands);
        let cr = fake_counters(1_000_000, IsaKind::Riscv, 8.0);
        let cc = fake_counters(1_000_000, IsaKind::Clockhands, 8.0);
        let er = energy(&cfg_r, &cr);
        let ec = energy(&cfg_c, &cc);
        assert!(
            er.component("Renamer") > 8.0 * ec.component("Renamer"),
            "renamer {} vs RP-calc {}",
            er.component("Renamer"),
            ec.component("Renamer")
        );
    }

    #[test]
    fn more_instructions_cost_more_energy() {
        // STRAIGHT's instruction inflation shows up in total energy.
        let cfg = MachineConfig::preset(WidthClass::W8, IsaKind::Straight);
        let small = energy(&cfg, &fake_counters(1_000_000, IsaKind::Straight, 8.0));
        let big = energy(&cfg, &fake_counters(1_400_000, IsaKind::Straight, 8.0));
        assert!(big.total() > 1.2 * small.total());
    }

    #[test]
    fn component_order_matches_figure() {
        let cfg = MachineConfig::preset(WidthClass::W4, IsaKind::Riscv);
        let e = energy(&cfg, &Counters::new());
        let names: Vec<&str> = e.components.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, COMPONENTS.to_vec());
    }
}
