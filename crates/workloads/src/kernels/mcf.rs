//! 605.mcf_s analogue: repeated arc relaxation over a sparse network
//! stored as index-linked adjacency chains — pointer chasing with
//! irregular access, and (like mcf) helper functions called from the hot
//! loop, exercising the s-hand argument traffic the paper highlights in
//! Fig. 16.

use super::{fill, lcg};
use crate::Scale;

/// (nodes, arcs, passes)
fn params(scale: Scale) -> (i64, i64, i64) {
    match scale {
        Scale::Test => (128, 512, 6),
        Scale::Small => (1_024, 4_096, 20),
        Scale::Full => (4_096, 16_384, 60),
    }
}

const TEMPLATE: &str = r#"
global firstarc: int[@NODES];
global nextarc: int[@ARCS];
global archead: int[@ARCS];
global arccost: int[@ARCS];
global dist: int[@NODES];
global pot: int[@NODES];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) & 0x7fffffff;
}

fn reduced_cost(a: int, d: int) -> int {
    return d + arccost[a] - pot[archead[a]];
}

fn relax(node: int) -> int {
    var improved: int = 0;
    var d: int = dist[node];
    var a: int = firstarc[node];
    while (a >= 0) {
        var h: int = archead[a];
        var nd: int = reduced_cost(a, d);
        if (nd < dist[h]) {
            dist[h] = nd;
            improved += 1;
        }
        a = nextarc[a];
    }
    return improved;
}

fn main() -> int {
    var x: int = 99;
    for (var i: int = 0; i < @NODES; i += 1) {
        firstarc[i] = 0 - 1;
        dist[i] = 0xfffff;
        x = lcg(x);
        pot[i] = x & 31;
    }
    dist[0] = 0;
    for (var a: int = 0; a < @ARCS; a += 1) {
        x = lcg(x);
        var tail: int = x % @NODES;
        x = lcg(x);
        archead[a] = x % @NODES;
        x = lcg(x);
        arccost[a] = 1 + (x & 63);
        nextarc[a] = firstarc[tail];
        firstarc[tail] = a;
    }
    var total: int = 0;
    for (var p: int = 0; p < @PASSES; p += 1) {
        var improved: int = 0;
        for (var node: int = 0; node < @NODES; node += 1) {
            improved += relax(node);
        }
        total = (total * 7 + improved) & 0xffffff;
        if (improved == 0) { break; }
    }
    var csum: int = 0;
    for (var i: int = 0; i < @NODES; i += 1) {
        csum = (csum + dist[i]) & 0xffffff;
    }
    return (total * 4096 + (csum & 0xfff)) & 0x3fffffff;
}
"#;

/// Kern source at the given scale.
pub fn source(scale: Scale) -> String {
    let (nodes, arcs, passes) = params(scale);
    fill(
        TEMPLATE,
        &[("NODES", nodes), ("ARCS", arcs), ("PASSES", passes)],
    )
}

/// Bit-exact reference checksum.
pub fn reference(scale: Scale) -> u64 {
    let (nodes, arcs, passes) = params(scale);
    let (nodes_u, arcs_u) = (nodes as usize, arcs as usize);
    let mut firstarc = vec![-1i64; nodes_u];
    let mut nextarc = vec![0i64; arcs_u];
    let mut archead = vec![0i64; arcs_u];
    let mut arccost = vec![0i64; arcs_u];
    let mut dist = vec![0xfffffi64; nodes_u];
    let mut pot = vec![0i64; nodes_u];
    let mut x: i64 = 99;
    for p in pot.iter_mut() {
        x = lcg(x);
        *p = x & 31;
    }
    dist[0] = 0;
    for a in 0..arcs_u {
        x = lcg(x);
        let tail = (x % nodes) as usize;
        x = lcg(x);
        archead[a] = x % nodes;
        x = lcg(x);
        arccost[a] = 1 + (x & 63);
        nextarc[a] = firstarc[tail];
        firstarc[tail] = a as i64;
    }
    let mut total: i64 = 0;
    for _ in 0..passes {
        let mut improved: i64 = 0;
        for node in 0..nodes_u {
            let d = dist[node];
            let mut a = firstarc[node];
            while a >= 0 {
                let h = archead[a as usize] as usize;
                let nd = d + arccost[a as usize] - pot[h];
                if nd < dist[h] {
                    dist[h] = nd;
                    improved += 1;
                }
                a = nextarc[a as usize];
            }
        }
        total = (total * 7 + improved) & 0xffffff;
        if improved == 0 {
            break;
        }
    }
    let mut csum: i64 = 0;
    for &d in &dist {
        csum = (csum + d) & 0xffffff;
    }
    ((total * 4096 + (csum & 0xfff)) & 0x3fff_ffff) as u64
}
