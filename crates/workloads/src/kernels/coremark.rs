//! CoreMark analogue: linked-list traversal + integer matrix multiply +
//! a state machine, all folded into a CRC-style checksum through helper
//! calls (CoreMark's own structure).

use super::{fill, lcg};
use crate::Scale;

/// (list nodes, matrix dim, iterations)
fn params(scale: Scale) -> (i64, i64, i64) {
    match scale {
        Scale::Test => (64, 8, 4),
        Scale::Small => (256, 12, 60),
        Scale::Full => (512, 16, 400),
    }
}

const TEMPLATE: &str = r#"
global listnext: int[@N];
global listval: int[@N];
global mata: int[@MM];
global matb: int[@MM];
global matc: int[@MM];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) & 0x7fffffff;
}

fn crc16(v: int, crc: int) -> int {
    var x: int = v & 0xffff;
    var c: int = crc;
    for (var i: int = 0; i < 16; i += 1) {
        var bit: int = (x ^ c) & 1;
        c = c >> 1;
        if (bit != 0) { c = c ^ 0xa001; }
        x = x >> 1;
    }
    return c;
}

fn list_run(start: int, hops: int) -> int {
    var p: int = start;
    var acc: int = 0;
    for (var i: int = 0; i < hops; i += 1) {
        acc = (acc + listval[p]) & 0xffffff;
        p = listnext[p];
    }
    return acc + p;
}

fn matmul() -> int {
    var acc: int = 0;
    for (var i: int = 0; i < @M; i += 1) {
        for (var j: int = 0; j < @M; j += 1) {
            var s: int = 0;
            for (var k: int = 0; k < @M; k += 1) {
                s += mata[i * @M + k] * matb[k * @M + j];
            }
            matc[i * @M + j] = s;
            acc = (acc + s) & 0xffffff;
        }
    }
    return acc;
}

fn state_machine(seed: int, steps: int) -> int {
    var x: int = seed;
    var state: int = 0;
    var counts: int = 0;
    for (var i: int = 0; i < steps; i += 1) {
        x = lcg(x);
        var sym: int = (x >> 7) & 7;
        if (state == 0) {
            if (sym < 2) { state = 1; } else { state = 2; }
        } else if (state == 1) {
            if (sym == 3) { state = 3; } else if (sym > 5) { state = 0; }
        } else if (state == 2) {
            if ((sym & 1) == 1) { state = 3; } else { state = 1; }
        } else {
            counts += sym;
            state = 0;
        }
        counts = (counts + state) & 0xffffff;
    }
    return counts;
}

fn main() -> int {
    var x: int = 12345;
    for (var i: int = 0; i < @N; i += 1) {
        listnext[i] = (i + 17) % @N;
        x = lcg(x);
        listval[i] = x & 0xff;
    }
    for (var i: int = 0; i < @MM; i += 1) {
        x = lcg(x);
        mata[i] = x & 15;
        x = lcg(x);
        matb[i] = x & 15;
    }
    var crc: int = 0xffff;
    for (var it: int = 0; it < @ITER; it += 1) {
        var a: int = list_run(it % @N, @N);
        var b: int = matmul();
        var c: int = state_machine(it + 7, @N);
        crc = crc16(a, crc);
        crc = crc16(b, crc);
        crc = crc16(c, crc);
    }
    return crc;
}
"#;

/// Kern source at the given scale.
pub fn source(scale: Scale) -> String {
    let (n, m, iter) = params(scale);
    fill(
        TEMPLATE,
        &[("N", n), ("MM", m * m), ("M", m), ("ITER", iter)],
    )
}

/// Bit-exact reference checksum.
pub fn reference(scale: Scale) -> u64 {
    let (n, m, iter) = params(scale);
    let (n, m, iter) = (n as usize, m as usize, iter as usize);
    let mut listnext = vec![0i64; n];
    let mut listval = vec![0i64; n];
    let mut mata = vec![0i64; m * m];
    let mut matb = vec![0i64; m * m];
    let mut matc = vec![0i64; m * m];
    let mut x: i64 = 12345;
    for i in 0..n {
        listnext[i] = ((i + 17) % n) as i64;
        x = lcg(x);
        listval[i] = x & 0xff;
    }
    for i in 0..m * m {
        x = lcg(x);
        mata[i] = x & 15;
        x = lcg(x);
        matb[i] = x & 15;
    }
    fn crc16(v: i64, crc: i64) -> i64 {
        let mut x = v & 0xffff;
        let mut c = crc;
        for _ in 0..16 {
            let bit = (x ^ c) & 1;
            c >>= 1;
            if bit != 0 {
                c ^= 0xa001;
            }
            x >>= 1;
        }
        c
    }
    let mut crc: i64 = 0xffff;
    for it in 0..iter {
        // list_run
        let mut p = (it % n) as i64;
        let mut a: i64 = 0;
        for _ in 0..n {
            a = (a + listval[p as usize]) & 0xffffff;
            p = listnext[p as usize];
        }
        let a = a + p;
        // matmul
        let mut b: i64 = 0;
        for i in 0..m {
            for j in 0..m {
                let mut s: i64 = 0;
                for k in 0..m {
                    s += mata[i * m + k] * matb[k * m + j];
                }
                matc[i * m + j] = s;
                b = (b + s) & 0xffffff;
            }
        }
        // state machine
        let mut sx = it as i64 + 7;
        let mut state: i64 = 0;
        let mut c: i64 = 0;
        for _ in 0..n {
            sx = lcg(sx);
            let sym = (sx >> 7) & 7;
            if state == 0 {
                state = if sym < 2 { 1 } else { 2 };
            } else if state == 1 {
                if sym == 3 {
                    state = 3;
                } else if sym > 5 {
                    state = 0;
                }
            } else if state == 2 {
                if sym & 1 == 1 {
                    state = 3;
                } else {
                    state = 1;
                }
            } else {
                c += sym;
                state = 0;
            }
            c = (c + state) & 0xffffff;
        }
        crc = crc16(a, crc);
        crc = crc16(b, crc);
        crc = crc16(c, crc);
    }
    let _ = matc;
    crc as u64
}
