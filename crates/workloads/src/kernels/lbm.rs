//! 619.lbm_s analogue: a D1Q3 lattice-Boltzmann stream-and-collide kernel
//! — the long-lived floating-point state (relaxation rate, lattice
//! weights, whole distribution arrays) that made lbm STRAIGHT's worst
//! case and Clockhands' showcase (Section 7.2(5)).

use super::fill;
use crate::Scale;

/// (cells, time steps)
fn params(scale: Scale) -> (i64, i64) {
    match scale {
        Scale::Test => (128, 24),
        Scale::Small => (512, 120),
        Scale::Full => (2_048, 400),
    }
}

const TEMPLATE: &str = r#"
global f0: real[@N];
global f1: real[@N];
global f2: real[@N];
global g1: real[@N];
global g2: real[@N];

fn main() -> int {
    // Lattice weights for D1Q3: 2/3 rest, 1/6 each direction.
    var w0: real = 0.666666666666;
    var w1: real = 0.166666666667;
    var omega: real = 1.7;
    // Initial condition: a smooth density bump, zero velocity.
    for (var i: int = 0; i < @N; i += 1) {
        var frac: real = real(i) / real(@N);
        var rho: real = 1.0 + 0.1 * frac * (1.0 - frac) * 4.0;
        f0[i] = w0 * rho;
        f1[i] = w1 * rho;
        f2[i] = w1 * rho;
    }
    for (var t: int = 0; t < @T; t += 1) {
        // Collide.
        for (var i: int = 0; i < @N; i += 1) {
            var a: real = f0[i];
            var b: real = f1[i];
            var c: real = f2[i];
            var rho: real = a + b + c;
            var u: real = (b - c) / rho;
            var usq: real = u * u;
            var eq0: real = w0 * rho * (1.0 - 1.5 * usq);
            var eq1: real = w1 * rho * (1.0 + 3.0 * u + 4.5 * usq - 1.5 * usq);
            var eq2: real = w1 * rho * (1.0 - 3.0 * u + 4.5 * usq - 1.5 * usq);
            f0[i] = a + omega * (eq0 - a);
            g1[i] = b + omega * (eq1 - b);
            g2[i] = c + omega * (eq2 - c);
        }
        // Stream with periodic boundaries: f1 moves right, f2 moves left.
        for (var i: int = 0; i < @N; i += 1) {
            var r: int = i + 1;
            if (r == @N) { r = 0; }
            f1[r] = g1[i];
            f2[i] = g2[r];
        }
    }
    // Checksum: quantised total density and momentum.
    var rhosum: real = 0.0;
    var msum: real = 0.0;
    for (var i: int = 0; i < @N; i += 1) {
        rhosum = rhosum + f0[i] + f1[i] + f2[i];
        msum = msum + (f1[i] - f2[i]);
    }
    var a: int = int(rhosum * 1000.0) & 0xfffff;
    var b: int = int(msum * 1000000.0) & 0xfff;
    return a * 4096 + b;
}
"#;

/// Kern source at the given scale.
pub fn source(scale: Scale) -> String {
    let (n, t) = params(scale);
    fill(TEMPLATE, &[("N", n), ("T", t)])
}

/// Bit-exact reference checksum (same operation order as the kernel).
pub fn reference(scale: Scale) -> u64 {
    let (n, t) = params(scale);
    let n = n as usize;
    let w0 = 0.666666666666f64;
    let w1 = 0.166666666667f64;
    let omega = 1.7f64;
    let mut f0 = vec![0f64; n];
    let mut f1 = vec![0f64; n];
    let mut f2 = vec![0f64; n];
    let mut g1 = vec![0f64; n];
    let mut g2 = vec![0f64; n];
    for i in 0..n {
        let frac = i as f64 / n as f64;
        let rho = 1.0 + 0.1 * frac * (1.0 - frac) * 4.0;
        f0[i] = w0 * rho;
        f1[i] = w1 * rho;
        f2[i] = w1 * rho;
    }
    for _ in 0..t {
        for i in 0..n {
            let a = f0[i];
            let b = f1[i];
            let c = f2[i];
            let rho = a + b + c;
            let u = (b - c) / rho;
            let usq = u * u;
            let eq0 = w0 * rho * (1.0 - 1.5 * usq);
            let eq1 = w1 * rho * (1.0 + 3.0 * u + 4.5 * usq - 1.5 * usq);
            let eq2 = w1 * rho * (1.0 - 3.0 * u + 4.5 * usq - 1.5 * usq);
            f0[i] = a + omega * (eq0 - a);
            g1[i] = b + omega * (eq1 - b);
            g2[i] = c + omega * (eq2 - c);
        }
        for i in 0..n {
            let r = if i + 1 == n { 0 } else { i + 1 };
            f1[r] = g1[i];
            f2[i] = g2[r];
        }
    }
    let mut rhosum = 0f64;
    let mut msum = 0f64;
    for i in 0..n {
        rhosum = rhosum + f0[i] + f1[i] + f2[i];
        msum += f1[i] - f2[i];
    }
    let a = ((rhosum * 1000.0) as i64) & 0xfffff;
    let b = ((msum * 1_000_000.0) as i64) & 0xfff;
    (a * 4096 + b) as u64
}
