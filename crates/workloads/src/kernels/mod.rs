//! The five benchmark kernels, one module each.
//!
//! Each module exposes `source(scale) -> String` (the Kern program) and
//! `reference(scale) -> u64` (a bit-exact Rust mirror of the checksum).
//! Kernels generate their own inputs with a 31-bit LCG so no external
//! data files are required.

pub mod bzip2;
pub mod coremark;
pub mod lbm;
pub mod mcf;
pub mod xz;

/// The LCG every kernel uses: `x' = (x * 1103515245 + 12345) & 0x7fffffff`.
pub(crate) fn lcg(x: i64) -> i64 {
    (x.wrapping_mul(1_103_515_245).wrapping_add(12_345)) & 0x7fff_ffff
}

/// Substitutes `@NAME` placeholders in a kernel template.
pub(crate) fn fill(template: &str, subs: &[(&str, i64)]) -> String {
    let mut s = template.to_string();
    for (k, v) in subs {
        s = s.replace(&format!("@{k}"), &v.to_string());
    }
    assert!(!s.contains('@'), "unsubstituted placeholder in kernel");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_31_bit() {
        let mut x = 42;
        for _ in 0..1000 {
            x = lcg(x);
            assert!((0..=0x7fff_ffff).contains(&x));
        }
    }

    #[test]
    fn fill_substitutes() {
        assert_eq!(fill("a @N b @N @M", &[("N", 3), ("M", 7)]), "a 3 b 3 7");
    }

    #[test]
    #[should_panic(expected = "unsubstituted")]
    fn fill_catches_typos() {
        let _ = fill("@OOPS", &[("N", 1)]);
    }
}
