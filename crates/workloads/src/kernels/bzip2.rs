//! 401.bzip2 analogue: run-length coding + move-to-front transform +
//! symbol frequency counting over pseudo-random byte data — the branchy,
//! byte-granular integer work that dominates bzip2 compression.

use super::{fill, lcg};
use crate::Scale;

/// (input bytes, passes)
fn params(scale: Scale) -> (i64, i64) {
    match scale {
        Scale::Test => (2_048, 2),
        Scale::Small => (16_384, 8),
        Scale::Full => (65_536, 24),
    }
}

const TEMPLATE: &str = r#"
global src: byte[@N];
global out: byte[@N2];
global mtf: int[64];
global freq: int[64];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) & 0x7fffffff;
}

// Run-length encode src into out as (len, sym) byte pairs; returns the
// number of output bytes.
fn rle() -> int {
    var o: int = 0;
    var i: int = 0;
    while (i < @N) {
        var sym: int = src[i];
        var len: int = 1;
        while (i + len < @N && len < 255) {
            if (src[i + len] != sym) { break; }
            len += 1;
        }
        out[o] = len;
        out[o + 1] = sym;
        o += 2;
        i += len;
    }
    return o;
}

// Move-to-front over the RLE output; counts ranks in freq.
fn mtf_pass(olen: int) -> int {
    for (var i: int = 0; i < 64; i += 1) { mtf[i] = i; }
    var acc: int = 0;
    for (var i: int = 0; i < olen; i += 1) {
        var sym: int = out[i] & 63;
        var r: int = 0;
        while (mtf[r] != sym) { r += 1; }
        // shift [0, r) up by one, put sym in front
        for (var j: int = r; j > 0; j -= 1) { mtf[j] = mtf[j - 1]; }
        mtf[0] = sym;
        freq[r] += 1;
        acc = (acc * 31 + r) & 0xffffff;
    }
    return acc;
}

fn main() -> int {
    var x: int = 777;
    var i: int = 0;
    while (i < @N) {
        x = lcg(x);
        var sym: int = (x >> 5) & 15;
        var run: int = 1 + (x & 7);
        var j: int = 0;
        while (j < run && i < @N) {
            src[i] = sym;
            i += 1;
            j += 1;
        }
    }
    var check: int = 0;
    for (var p: int = 0; p < @PASSES; p += 1) {
        var olen: int = rle();
        var acc: int = mtf_pass(olen);
        check = (check * 17 + acc + olen) & 0xffffff;
        // perturb the buffer for the next pass
        src[(check % @N)] = check & 15;
    }
    var fsum: int = 0;
    for (var r: int = 0; r < 64; r += 1) { fsum = (fsum + freq[r] * (r + 1)) & 0xffffff; }
    return (check * 4096 + fsum) & 0x3fffffff;
}
"#;

/// Kern source at the given scale.
pub fn source(scale: Scale) -> String {
    let (n, passes) = params(scale);
    fill(TEMPLATE, &[("N2", 2 * n), ("N", n), ("PASSES", passes)])
}

/// Bit-exact reference checksum.
pub fn reference(scale: Scale) -> u64 {
    let (n, passes) = params(scale);
    let n = n as usize;
    let mut src = vec![0u8; n];
    let mut out = vec![0u8; 2 * n];
    let mut freq = [0i64; 64];
    let mut x: i64 = 777;
    let mut i = 0usize;
    while i < n {
        x = lcg(x);
        let sym = ((x >> 5) & 15) as u8;
        let run = (1 + (x & 7)) as usize;
        let mut j = 0;
        while j < run && i < n {
            src[i] = sym;
            i += 1;
            j += 1;
        }
    }
    let mut check: i64 = 0;
    for _ in 0..passes {
        // rle
        let mut o = 0usize;
        let mut i = 0usize;
        while i < n {
            let sym = src[i];
            let mut len = 1usize;
            while i + len < n && len < 255 {
                if src[i + len] != sym {
                    break;
                }
                len += 1;
            }
            out[o] = len as u8;
            out[o + 1] = sym;
            o += 2;
            i += len;
        }
        let olen = o;
        // mtf
        let mut mtf: Vec<i64> = (0..64).collect();
        let mut acc: i64 = 0;
        for &b in &out[..olen] {
            let sym = (b & 63) as i64;
            let mut r = 0usize;
            while mtf[r] != sym {
                r += 1;
            }
            for j in (1..=r).rev() {
                mtf[j] = mtf[j - 1];
            }
            mtf[0] = sym;
            freq[r] += 1;
            acc = (acc * 31 + r as i64) & 0xffffff;
        }
        check = (check * 17 + acc + olen as i64) & 0xffffff;
        src[(check % n as i64) as usize] = (check & 15) as u8;
    }
    let mut fsum: i64 = 0;
    for (r, &f) in freq.iter().enumerate() {
        fsum = (fsum + f * (r as i64 + 1)) & 0xffffff;
    }
    ((check * 4096 + fsum) & 0x3fff_ffff) as u64
}
