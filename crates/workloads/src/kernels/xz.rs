//! 657.xz_s analogue: an LZ77 hash-chain match finder. Saturates the
//! integer ALUs with hashing and match-length extension, with heavily
//! data-dependent branches — the paper notes xz is the benchmark where
//! instruction ordering matters most because the integer units are the
//! bottleneck.

use super::{fill, lcg};
use crate::Scale;

/// (input bytes, chain depth)
fn params(scale: Scale) -> (i64, i64) {
    match scale {
        Scale::Test => (2_048, 8),
        Scale::Small => (16_384, 16),
        Scale::Full => (65_536, 32),
    }
}

const HASH_SIZE: i64 = 1 << 12;

const TEMPLATE: &str = r#"
global buf: byte[@N];
global head: int[@HS];
global prev: int[@N];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) & 0x7fffffff;
}

fn hash3(i: int) -> int {
    var h: int = buf[i] * 506832829 + buf[i + 1] * 65599 + buf[i + 2];
    return (h ^ (h >> 9)) & (@HS - 1);
}

fn match_len(i: int, j: int, limit: int) -> int {
    var l: int = 0;
    while (l < limit) {
        if (buf[i + l] != buf[j + l]) { break; }
        l += 1;
    }
    return l;
}

fn main() -> int {
    // Compressible input: short pseudo-random phrases with repetitions.
    var x: int = 4242;
    var i: int = 0;
    while (i < @N) {
        x = lcg(x);
        if ((x & 3) == 0 && i > 64) {
            // copy an earlier phrase
            var back: int = 1 + ((x >> 4) & 63);
            var len: int = 4 + ((x >> 10) & 15);
            var j: int = 0;
            while (j < len && i < @N) {
                buf[i] = buf[i - back];
                i += 1;
                j += 1;
            }
        } else {
            buf[i] = (x >> 8) & 255;
            i += 1;
        }
    }
    for (var h: int = 0; h < @HS; h += 1) { head[h] = 0 - 1; }
    var matched: int = 0;
    var literals: int = 0;
    var best_total: int = 0;
    var pos: int = 0;
    while (pos + 4 < @N) {
        var h: int = hash3(pos);
        var cand: int = head[h];
        var best: int = 0;
        var depth: int = 0;
        var limit: int = @N - pos - 1;
        if (limit > 128) { limit = 128; }
        while (cand >= 0 && depth < @DEPTH) {
            var l: int = match_len(pos, cand, limit);
            if (l > best) { best = l; }
            cand = prev[cand];
            depth += 1;
        }
        prev[pos] = head[h];
        head[h] = pos;
        if (best >= 4) {
            matched += 1;
            best_total = (best_total + best) & 0xffffff;
            pos += best;
        } else {
            literals += 1;
            pos += 1;
        }
    }
    return ((matched & 0xfff) * 262144 + (literals & 0x3f) * 4096
            + (best_total & 0xfff)) & 0x3fffffff;
}
"#;

/// Kern source at the given scale.
pub fn source(scale: Scale) -> String {
    let (n, depth) = params(scale);
    fill(TEMPLATE, &[("N", n), ("HS", HASH_SIZE), ("DEPTH", depth)])
}

/// Bit-exact reference checksum.
pub fn reference(scale: Scale) -> u64 {
    let (n, depth) = params(scale);
    let n_us = n as usize;
    let hs = HASH_SIZE;
    let mut buf = vec![0u8; n_us];
    let mut head = vec![-1i64; hs as usize];
    let mut prev = vec![0i64; n_us];
    let mut x: i64 = 4242;
    let mut i = 0usize;
    while i < n_us {
        x = lcg(x);
        if (x & 3) == 0 && i > 64 {
            let back = (1 + ((x >> 4) & 63)) as usize;
            let len = (4 + ((x >> 10) & 15)) as usize;
            let mut j = 0;
            while j < len && i < n_us {
                buf[i] = buf[i - back];
                i += 1;
                j += 1;
            }
        } else {
            buf[i] = ((x >> 8) & 255) as u8;
            i += 1;
        }
    }
    let hash3 = |buf: &[u8], i: usize| -> i64 {
        let h = buf[i] as i64 * 506_832_829 + buf[i + 1] as i64 * 65599 + buf[i + 2] as i64;
        (h ^ (h >> 9)) & (hs - 1)
    };
    let mut matched: i64 = 0;
    let mut literals: i64 = 0;
    let mut best_total: i64 = 0;
    let mut pos: i64 = 0;
    while pos + 4 < n {
        let h = hash3(&buf, pos as usize) as usize;
        let mut cand = head[h];
        let mut best: i64 = 0;
        let mut d = 0;
        let mut limit = n - pos - 1;
        if limit > 128 {
            limit = 128;
        }
        while cand >= 0 && d < depth {
            let mut l: i64 = 0;
            while l < limit {
                if buf[(pos + l) as usize] != buf[(cand + l) as usize] {
                    break;
                }
                l += 1;
            }
            if l > best {
                best = l;
            }
            cand = prev[cand as usize];
            d += 1;
        }
        prev[pos as usize] = head[h];
        head[h] = pos;
        if best >= 4 {
            matched += 1;
            best_total = (best_total + best) & 0xffffff;
            pos += best;
        } else {
            literals += 1;
            pos += 1;
        }
    }
    (((matched & 0xfff) * 262_144 + (literals & 0x3f) * 4096 + (best_total & 0xfff)) & 0x3fff_ffff)
        as u64
}
