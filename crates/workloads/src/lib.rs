#![warn(missing_docs)]

//! Benchmark kernels for the Clockhands reproduction.
//!
//! The paper evaluates CoreMark plus four SPEC CPU benchmarks (401.bzip2,
//! 605.mcf_s, 619.lbm_s, 657.xz_s). SPEC sources and inputs are licensed,
//! so this crate provides Kern kernels that reproduce each benchmark's
//! *dominant behaviour* (see DESIGN.md for the substitution argument):
//!
//! * [`Workload::Coremark`] — linked-list traversal, a small integer
//!   matrix multiply, and a state machine with CRC accumulation.
//! * [`Workload::Bzip2`] — run-length + move-to-front coding with
//!   frequency counting over pseudo-random bytes (branchy byte work).
//! * [`Workload::Mcf`] — arc-relaxation over a sparse graph with helper
//!   functions called inside the hot loop (pointer chasing + calls).
//! * [`Workload::Lbm`] — a floating-point stencil streaming over a grid
//!   (long-lived FP values).
//! * [`Workload::Xz`] — an LZ77-style hash-chain match finder that
//!   saturates the integer units.
//!
//! Every kernel generates its input with an in-kernel LCG, returns a
//! checksum, and has a bit-exact Rust [`reference`](Workload::reference)
//! used to validate all three compiled ISAs.

mod kernels;

use ch_common::error::{HarnessError, Stage};
use ch_common::inst::DynInst;
use ch_common::IsaKind;
use ch_compiler::{compile, compile_verified, CompileError, CompiledSet};
use std::sync::atomic::{AtomicBool, Ordering};

/// Whether [`Workload::compile`] statically verifies the emitted
/// programs (`ch-verify`). On by default — verification has caught real
/// backend distance bugs and costs little at these program sizes.
static VERIFY: AtomicBool = AtomicBool::new(true);

/// Enables or disables post-compile static verification process-wide
/// (the `--no-verify` escape hatch of the experiment drivers).
pub fn set_verify(on: bool) {
    VERIFY.store(on, Ordering::Relaxed);
}

/// Whether post-compile static verification is currently enabled.
pub fn verify_enabled() -> bool {
    VERIFY.load(Ordering::Relaxed)
}

/// Benchmark selection (paper naming in [`Workload::paper_name`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// CoreMark analogue.
    Coremark,
    /// 401.bzip2 analogue.
    Bzip2,
    /// 605.mcf_s analogue.
    Mcf,
    /// 619.lbm_s analogue.
    Lbm,
    /// 657.xz_s analogue.
    Xz,
}

/// Problem size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scale {
    /// Tiny: suitable for unit tests (≈10⁴–10⁵ instructions).
    Test,
    /// Small: for quick simulations (≈10⁶ instructions).
    Small,
    /// Full: for the headline figures (≈10⁷ instructions).
    Full,
}

impl Scale {
    /// Short identifier (used in error context and file names).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }

    /// The inverse of [`name`](Self::name), case-insensitively (used by
    /// the sweep service and CLIs to parse scale identifiers).
    pub fn from_name(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "test" => Some(Scale::Test),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Architectural outcome of functionally executing a workload:
/// the checksum it halted with and how many instructions committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// The checksum the kernel halted with (already validated against
    /// [`Workload::reference`] by the APIs that return this).
    pub exit_value: u64,
    /// Dynamic instruction count.
    pub committed: u64,
}

impl Workload {
    /// All workloads in the paper's figure order.
    pub const ALL: [Workload; 5] = [
        Workload::Coremark,
        Workload::Bzip2,
        Workload::Mcf,
        Workload::Lbm,
        Workload::Xz,
    ];

    /// Short identifier (used in file names and tables).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Coremark => "coremark",
            Workload::Bzip2 => "bzip2",
            Workload::Mcf => "mcf",
            Workload::Lbm => "lbm",
            Workload::Xz => "xz",
        }
    }

    /// The inverse of [`name`](Self::name), case-insensitively (used by
    /// the sweep service and CLIs to parse workload identifiers).
    pub fn from_name(s: &str) -> Option<Workload> {
        let t = s.to_ascii_lowercase();
        Workload::ALL.into_iter().find(|w| w.name() == t)
    }

    /// The benchmark name used in the paper's figures.
    pub fn paper_name(self) -> &'static str {
        match self {
            Workload::Coremark => "CoreMark",
            Workload::Bzip2 => "401.bzip2",
            Workload::Mcf => "605.mcf_s",
            Workload::Lbm => "619.lbm_s",
            Workload::Xz => "657.xz_s",
        }
    }

    /// The Kern source of the kernel at the given scale.
    pub fn source(self, scale: Scale) -> String {
        match self {
            Workload::Coremark => kernels::coremark::source(scale),
            Workload::Bzip2 => kernels::bzip2::source(scale),
            Workload::Mcf => kernels::mcf::source(scale),
            Workload::Lbm => kernels::lbm::source(scale),
            Workload::Xz => kernels::xz::source(scale),
        }
    }

    /// Bit-exact Rust reference checksum for validation.
    pub fn reference(self, scale: Scale) -> u64 {
        match self {
            Workload::Coremark => kernels::coremark::reference(scale),
            Workload::Bzip2 => kernels::bzip2::reference(scale),
            Workload::Mcf => kernels::mcf::reference(scale),
            Workload::Lbm => kernels::lbm::reference(scale),
            Workload::Xz => kernels::xz::reference(scale),
        }
    }

    /// Compiles the kernel for all three ISAs.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`CompileError`] (a kernel that fails to
    /// compile is a bug in this crate).
    pub fn compile(self, scale: Scale) -> Result<CompiledSet, CompileError> {
        if verify_enabled() {
            compile_verified(&self.source(scale))
        } else {
            compile(&self.source(scale))
        }
    }

    /// `"coremark/test"`-style context string for error reporting.
    fn context(self, scale: Scale) -> String {
        format!("{}/{}", self.name(), scale.name())
    }

    /// Compiles the kernel, mapping failure to a [`HarnessError`] that
    /// names the workload and scale.
    pub fn compile_checked(self, scale: Scale) -> Result<CompiledSet, HarnessError> {
        self.compile(scale)
            .map_err(|e| HarnessError::new(self.context(scale), Stage::Compile, e.to_string()))
    }

    /// Functionally executes the kernel on `isa` and validates the
    /// checksum against [`Workload::reference`].
    ///
    /// # Errors
    ///
    /// A [`HarnessError`] naming the workload, scale, and ISA, at stage
    /// [`Stage::Compile`], [`Stage::Validate`] (bad program),
    /// [`Stage::Execute`] (interpreter error / limit), or
    /// [`Stage::Mismatch`] (wrong checksum).
    pub fn run_on(
        self,
        scale: Scale,
        isa: IsaKind,
        limit: u64,
    ) -> Result<RunOutcome, HarnessError> {
        self.trace_on(scale, isa, limit).map(|(_, r)| r)
    }

    /// As [`Workload::run_on`], but also returns the full committed
    /// [`DynInst`] trace (the stream the timing simulator consumes).
    pub fn trace_on(
        self,
        scale: Scale,
        isa: IsaKind,
        limit: u64,
    ) -> Result<(Vec<DynInst>, RunOutcome), HarnessError> {
        let isa_tag = match isa {
            IsaKind::Riscv => "riscv",
            IsaKind::Straight => "straight",
            IsaKind::Clockhands => "clockhands",
        };
        let ctx = self.context(scale);
        let fail = |stage, detail: String| {
            Err(HarnessError::new(ctx.clone(), stage, detail).on_isa(isa_tag))
        };
        let set = self.compile_checked(scale).map_err(|e| e.on_isa(isa_tag))?;
        let (trace, exit_value, committed) = match isa {
            IsaKind::Riscv => {
                let mut cpu = match ch_baselines::riscv::interp::Interpreter::new(set.riscv) {
                    Ok(cpu) => cpu,
                    Err(e) => return fail(Stage::Validate, e.to_string()),
                };
                match cpu.trace(limit) {
                    Ok((t, r)) => (t, r.exit_value, r.committed),
                    Err(e) => return fail(Stage::Execute, e.to_string()),
                }
            }
            IsaKind::Straight => {
                let mut cpu = match ch_baselines::straight::interp::Interpreter::new(set.straight) {
                    Ok(cpu) => cpu,
                    Err(e) => return fail(Stage::Validate, e.to_string()),
                };
                match cpu.trace(limit) {
                    Ok((t, r)) => (t, r.exit_value, r.committed),
                    Err(e) => return fail(Stage::Execute, e.to_string()),
                }
            }
            IsaKind::Clockhands => {
                let mut cpu = match clockhands::interp::Interpreter::new(set.clockhands) {
                    Ok(cpu) => cpu,
                    Err(e) => return fail(Stage::Validate, e.to_string()),
                };
                match cpu.trace(limit) {
                    Ok((t, r)) => (t, r.exit_value, r.committed),
                    Err(e) => return fail(Stage::Execute, e.to_string()),
                }
            }
        };
        let expect = self.reference(scale);
        if exit_value != expect {
            return fail(
                Stage::Mismatch,
                format!("checksum {exit_value:#x} != reference {expect:#x}"),
            );
        }
        Ok((
            trace,
            RunOutcome {
                exit_value,
                committed,
            },
        ))
    }

    /// Runs the kernel on all three ISAs, validating every checksum.
    ///
    /// # Errors
    ///
    /// The first failing ISA's [`HarnessError`] (ISAs are tried in
    /// paper order R, S, C).
    pub fn verify(self, scale: Scale, limit: u64) -> Result<[RunOutcome; 3], HarnessError> {
        let mut out = [RunOutcome {
            exit_value: 0,
            committed: 0,
        }; 3];
        for (slot, isa) in out.iter_mut().zip(IsaKind::ALL) {
            *slot = self.run_on(scale, isa, limit)?;
        }
        Ok(out)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Instruction budget generous enough for Test scale on every ISA.
    const LIMIT: u64 = 80_000_000;

    #[test]
    fn all_kernels_agree_across_isas_and_reference() {
        for w in Workload::ALL {
            // verify() checks every ISA's checksum against the reference
            // and names the failing workload/scale/ISA on error.
            let [rv, st, _ch] = w
                .verify(Scale::Test, LIMIT)
                .unwrap_or_else(|e| panic!("{e}"));

            // The paper's Fig. 15 ordering: STRAIGHT executes the most
            // instructions.
            assert!(
                st.committed > rv.committed,
                "{w}: STRAIGHT should execute more instructions ({} vs {})",
                st.committed,
                rv.committed
            );
        }
    }

    #[test]
    fn scales_are_ordered() {
        let w = Workload::Coremark;
        let t = w.run_on(Scale::Test, IsaKind::Riscv, LIMIT).unwrap();
        let s = w.run_on(Scale::Small, IsaKind::Riscv, LIMIT).unwrap();
        assert!(s.committed > t.committed);
    }

    #[test]
    fn harness_error_names_the_failing_run() {
        // An absurdly small step budget must surface as an Execute-stage
        // HarnessError naming the workload, scale, and ISA — not a panic.
        let e = Workload::Coremark
            .run_on(Scale::Test, IsaKind::Clockhands, 10)
            .unwrap_err();
        assert_eq!(e.stage, Stage::Execute);
        assert_eq!(
            e.to_string(),
            "coremark/test [clockhands] failed at execute: instruction limit reached before halt"
        );
    }

    #[test]
    fn paper_names() {
        assert_eq!(Workload::Mcf.paper_name(), "605.mcf_s");
        assert_eq!(Workload::Coremark.to_string(), "CoreMark");
    }
}
